//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable from the build environment, so this crate
//! implements the benchmark-facing subset the workspace uses —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`]
//! and [`black_box`] — over a simple wall-clock harness: per benchmark
//! it warms up, then takes `sample_size` timed samples and reports the
//! median, minimum and mean time per iteration.
//!
//! Running under `cargo test` (Cargo passes `--test` to bench targets)
//! executes every benchmark body exactly once as a smoke test, like
//! upstream criterion's test mode. A positional CLI argument filters
//! benchmarks by substring, so `cargo bench -p vedliot-bench --
//! executor` behaves as expected.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a tuning hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: batches of iterations share one timer.
    SmallInput,
    /// Large per-iteration state: fewer iterations per batch.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher<'c> {
    config: &'c Criterion,
    /// Measured nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly and records per-iteration cost.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let iters = calibrate(|| {
            black_box(routine());
        });
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.samples_ns.push(dt.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` on fresh state from `setup`, excluding setup time
    /// per sample (setup runs outside the timed region).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            self.samples_ns.push(dt.as_secs_f64() * 1e9);
        }
    }
}

/// Picks an iteration count so one sample takes roughly 5 ms.
fn calibrate(mut probe: impl FnMut()) -> u64 {
    let start = Instant::now();
    probe();
    let once = start.elapsed().max(Duration::from_nanos(50));
    let target = Duration::from_millis(5);
    ((target.as_secs_f64() / once.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000)
}

/// Benchmark registry and configuration (mirrors upstream `Criterion`).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            sample_size: 20,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark if it passes the CLI filter.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            config: self,
            samples_ns: Vec::new(),
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{id}: ok (test mode)");
            return self;
        }
        let mut ns = b.samples_ns;
        if ns.is_empty() {
            println!("{id}: no samples recorded");
            return self;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = ns[ns.len() / 2];
        let min = ns[0];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        println!(
            "{id}: median {} (min {}, mean {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
            ns.len()
        );
        self
    }
}

/// Formats nanoseconds with a human-scale unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, in either upstream form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group!(name = n; config = c; targets = t, ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_returns_positive() {
        assert!(
            calibrate(|| {
                std::hint::black_box(1 + 1);
            }) >= 1
        );
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
