//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker — no code path serializes anything yet,
//! and crates.io is unreachable from the build environment. These
//! derives therefore expand to nothing, which is a valid (if inert)
//! derive expansion. When real serialization lands, swap the vendored
//! `serde`/`serde_derive` back to the upstream crates.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
