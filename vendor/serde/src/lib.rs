//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable from the build environment, and the
//! workspace uses serde purely as `#[derive(Serialize, Deserialize)]`
//! markers on IR/config types (nothing serializes yet). This crate
//! provides the two trait names and re-exports the vendored no-op
//! derive macros so those annotations keep compiling unchanged. Swap
//! back to upstream serde when real wire formats are introduced.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
