//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable from the build environment, so this crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro with `pat in strategy` bindings and an
//! optional `#![proptest_config(..)]` header, range / `any::<T>()` /
//! tuple / `collection::vec` strategies, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * cases are drawn from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so failures are reproducible but
//!   there is no persisted regression file;
//! * there is no shrinking — the failing inputs are printed instead;
//! * `prop_assume!` skips the current case rather than re-drawing.

use std::fmt;

/// Deterministic per-test RNG (xoshiro-style, seeded by SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds an RNG whose stream depends only on `name`.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the string describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => f.write_str(msg),
            TestCaseError::Reject => f.write_str("inputs rejected by prop_assume!"),
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full-workspace suite
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

/// Strategy producing values from the whole domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Whole-domain strategy for `T` (upstream `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite values spanning a wide magnitude range.
        ((rng.unit_f64() * 2.0 - 1.0) * 1e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() * 2.0 - 1.0) * 1e12
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    /// Conversion into [`SizeRange`] (from ranges or a fixed size).
    pub trait IntoSizeRange {
        /// The `[lo, hi)` size window.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                lo: self.start,
                hi: self.end.max(self.start + 1),
            }
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                lo: *self.start(),
                hi: *self.end() + 1,
            }
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                lo: self,
                hi: self + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size` (upstream
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs
///     #[test]
///     fn property(x in 0usize..10, mut v in collection::vec(any::<u8>(), 1..32)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner ($cfg) $($rest)*);
    };
    (@inner ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    #[allow(unreachable_code)]
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}/{}: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@inner ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` returning a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` returning a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// `assert_ne!` returning a [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..4, any::<bool>())) {
            prop_assume!(pair.0 != 3);
            prop_assert!(pair.0 < 3);
        }

        #[test]
        fn arrays_fill(buf in any::<[u8; 32]>()) {
            prop_assert_eq!(buf.len(), 32);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_is_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
