//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, API-compatible subset of `rand`
//! 0.8: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] sampling methods (`gen`, `gen_range`, `gen_bool`, `fill`)
//! that the simulation crates actually call.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! well-studied, deterministic, portable PRNG. It is **not** the same
//! stream as upstream `StdRng` (ChaCha12), which is fine: every caller
//! in this workspace treats the stream as an arbitrary reproducible
//! noise source, never as a cross-crate fixture.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from raw generator output
/// (the role of `Standard`/`Uniform` distributions in upstream `rand`).
pub trait UniformSample: Sized {
    /// Draws one value covering the type's full "standard" range
    /// (`[0, 1)` for floats, the whole domain for integers and bool).
    fn sample_standard(rng: &mut dyn RngCore) -> Self;

    /// Draws one value uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `gen_range`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 24 explicit mantissa-width bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + Self::sample_standard(rng) * (hi - lo)
    }
}

impl UniformSample for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        lo + Self::sample_standard(rng) * (hi - lo)
    }
}

impl UniformSample for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn sample_range(_: &mut dyn RngCore, _: Self, _: Self) -> Self {
        panic!("bool has no uniform range")
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of the inferred type over its standard range.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformSample,
        R: RangeBounds<T>,
    {
        let (lo, hi) = range.into_bounds();
        T::sample_range(self, lo, hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Range forms accepted by [`Rng::gen_range`].
pub trait RangeBounds<T> {
    /// Converts the range into a half-open `[lo, hi)` pair.
    fn into_bounds(self) -> (T, T);
}

impl<T> RangeBounds<T> for core::ops::Range<T> {
    fn into_bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-8.0f64..8.0);
            assert!((-8.0..8.0).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
