//! The Automotive use case (paper §V-A): Pedestrian Automatic Emergency
//! Braking with dynamic car/edge inference offloading.
//!
//! The edge station is remote-attested before any raw sensor data leaves
//! the car; the controller then offloads frames whenever the network
//! carries them within the speed-dependent braking deadline, minimizing
//! on-car energy.
//!
//! Run with `cargo run --example paeb_offload`.

use vedliot::recs::net::NetworkTrace;
use vedliot::usecases::paeb::{attested_controller, run_drive, OffloadController, PaebConfig};

fn main() {
    let config = PaebConfig::from_models();
    println!("PAEB configuration (derived from the accelerator models):");
    println!(
        "  on-car (Xavier NX): {:.1} ms, {:.2} J / frame",
        config.car_latency_ms, config.car_energy_j
    );
    println!(
        "  edge  (GTX 1660) : {:.1} ms compute, {:.2} J / frame",
        config.edge_latency_ms, config.edge_energy_j
    );
    println!(
        "  radio cost per offloaded frame: {:.4} J",
        config.offload_car_energy_j()
    );

    let trace = NetworkTrace::generate(3_000, 2026);
    println!(
        "\nsimulated drive: {} frames over a bursty cellular trace",
        trace.len()
    );
    println!(
        "\n{:>6} {:>9} {:>9} {:>8} {:>12} {:>12}",
        "km/h", "local", "offload", "miss", "car energy", "total"
    );
    for speed in [30.0, 50.0, 80.0, 120.0, 180.0] {
        let attested = attested_controller(config);
        let report = run_drive(&attested, &trace, speed);
        println!(
            "{speed:>6} {:>9} {:>9} {:>8} {:>10.1} J {:>10.1} J",
            report.local_frames,
            report.offloaded_frames,
            report.deadline_misses,
            report.car_energy_j,
            report.total_energy_j
        );
    }

    // The counterfactuals at city speed.
    let local_only = OffloadController::new(config);
    let without = run_drive(&local_only, &trace, 50.0);
    let attested = attested_controller(config);
    let with = run_drive(&attested, &trace, 50.0);
    println!(
        "\nat 50 km/h: offloading cuts on-car energy {:.1} J -> {:.1} J ({:.0}% saved), \
         offload fraction {:.0}%",
        without.car_energy_j,
        with.car_energy_j,
        (1.0 - with.car_energy_j / without.car_energy_j) * 100.0,
        with.offload_fraction() * 100.0
    );
}
