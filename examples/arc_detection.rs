//! The Industrial IoT arc-detection use case (paper §V-B): sweep the
//! detector threshold over an ensemble of synthesized DC waveforms and
//! print the false-negative / false-positive / latency trade-off.
//!
//! Run with `cargo run --example arc_detection`.

use vedliot::usecases::arc::{sweep_threshold, synthesize_current, ArcDetector};

fn main() {
    // One concrete detection, start to finish.
    let waveform = synthesize_current(8_192, Some(4_000), 3, 42);
    let detector = ArcDetector::new(32, 0.4);
    let detection = detector.detect(&waveform);
    println!(
        "single event on feeder {}: tripped = {}, latency = {:.0} µs",
        waveform.feeder,
        detection.tripped,
        detection.latency_us.unwrap_or(f64::NAN)
    );

    // The operating-point sweep.
    let thresholds = [0.15, 0.25, 0.4, 0.7, 1.2, 2.0];
    let sweep = sweep_threshold(&thresholds, 40, 32, 7);
    println!(
        "\n{:>10} {:>8} {:>8} {:>12}",
        "threshold", "FN rate", "FP rate", "latency"
    );
    for point in &sweep {
        println!(
            "{:>10.2} {:>7.1}% {:>7.1}% {:>9.0} µs",
            point.threshold,
            point.stats.false_negative_rate() * 100.0,
            point.stats.false_positive_rate() * 100.0,
            point.mean_latency_us
        );
    }
    println!(
        "\nthe deployable point keeps the FN rate at zero with sub-millisecond \
         latency — the use case's 'ultra-low false-negative error rate' goal"
    );
}
