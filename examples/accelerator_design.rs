// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! The four DL-accelerator design approaches of paper §II-B, end to end:
//! (1) off-the-shelf selection, (2) a statically configured FPGA overlay,
//! (3) a dynamically (partially) reconfigurable region with
//! power/performance modes, and (4) the fully simultaneous co-design loop
//! that feeds back into the model.
//!
//! Run with `cargo run --release --example accelerator_design`.

use vedliot::accel::approaches::{
    co_design, select_off_the_shelf, FpgaFabric, ReconfigurableAccelerator, StaticAccelerator,
};
use vedliot::accel::catalog::catalog;
use vedliot::accel::perf::PerfModel;
use vedliot::nnir::cost::CostReport;
use vedliot::nnir::{zoo, DataType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::mobilenet_v3_large(1000)?;
    let cost = CostReport::of(&model)?;
    println!(
        "workload: {} ({} MMACs)\n",
        cost.model,
        cost.total_macs / 1_000_000
    );

    // (1) Off-the-shelf under a 10 W far-edge budget.
    let db = catalog();
    let (part, run) = select_off_the_shelf(&db, &model, 10.0)?.expect("sub-10W parts exist");
    println!("(1) off-the-shelf under 10 W: {}", part.name);
    println!(
        "    {:.1} ms / inference, {:.0} GOPS, {:.2} W\n",
        run.latency_ms, run.achieved_gops, run.avg_power_w
    );

    // (2) Statically configured overlay on the ZU15 fabric.
    let fabric = FpgaFabric::zu15();
    let static_acc = StaticAccelerator::synthesize(fabric, &cost, DataType::I8);
    let static_run = PerfModel::new(static_acc.to_spec("static-overlay")).run(&model)?;
    println!(
        "(2) static ZU15 overlay: {}x{} PE array, {:.0} peak GOPS, {:.1} W",
        static_acc.pe_rows,
        static_acc.pe_cols,
        static_acc.peak_gops(),
        static_acc.power_w()
    );
    println!("    {:.1} ms / inference\n", static_run.latency_ms);

    // (3) Reconfigurable region: full / half / low-power modes, adapted
    //     to a latency bound at run time.
    let modes = vec![
        static_acc.clone(),
        static_acc.derated(0.5),
        static_acc.derated(0.2),
    ];
    let mut region = ReconfigurableAccelerator::new(modes);
    println!(
        "(3) dynamically reconfigurable region ({} modes):",
        region.mode_count()
    );
    let relaxed = region
        .adapt_to_latency(&model, 1_000.0)?
        .expect("a mode fits");
    println!(
        "    relaxed 1000 ms bound -> mode {} ({:.1} W) after a {:.0} ms partial reconfig",
        relaxed.to,
        region.active_mode().power_w(),
        relaxed.latency_ms
    );
    let tight_bound = static_run.latency_ms * 1.2;
    let tight = region
        .adapt_to_latency(&model, tight_bound)?
        .expect("full mode fits");
    println!(
        "    tight {:.1} ms bound  -> mode {} ({:.1} W)\n",
        tight_bound,
        tight.to,
        region.active_mode().power_w()
    );

    // (4) Fully simultaneous co-design.
    let result = co_design(FpgaFabric::zu15(), &model, DataType::I8, 4)?;
    println!("(4) co-design loop (model feedback: channels rounded to PE geometry):");
    for step in &result.steps {
        println!(
            "    iter {}: {} PE rows, channel quantum {:>3}, array efficiency {:.3}",
            step.iteration, step.pe_rows, step.channel_quantum, step.efficiency
        );
    }
    println!(
        "    -> {:.2}x efficiency over the hardware-only baseline",
        result.improvement()
    );
    println!(
        "\nthe paper's conclusion holds: \"no single accelerator can provide a better \
         match to different models\" — rerun with ResNet-50 and the baseline efficiency changes"
    );
    Ok(())
}
