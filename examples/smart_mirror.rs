//! The Smart Home use case (paper §V-C): deploy the Smart Mirror's four
//! neural networks — gesture, face, object and speech — on a uRECS node,
//! entirely on-site, within the embedded power budget.
//!
//! Run with `cargo run --example smart_mirror`.

use vedliot::usecases::mirror::{deploy_mirror, is_fully_on_site, mirror_chassis, mirror_networks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chassis = mirror_chassis();
    println!(
        "chassis: {} ({} slots, {:.0} W budget)",
        chassis.kind(),
        chassis.slot_count(),
        chassis.power_budget_w()
    );
    for (slot, server) in chassis.populated() {
        println!(
            "  slot {slot}: {} ({:.1} W)",
            server.name,
            server.peak_power_w()
        );
    }

    // Privacy check: every network's data stays on the device.
    for workload in mirror_networks()? {
        assert!(is_fully_on_site(&workload.model));
    }
    println!("\nprivacy: all four networks process sensor data on-site");

    let report = deploy_mirror(&chassis)?;
    println!(
        "\n{:<10} {:>6} {:>12} {:>12} {:>8}",
        "network", "slot", "latency", "energy/inf", "load"
    );
    for a in &report.placement.assignments {
        println!(
            "{:<10} {:>6} {:>9.1} ms {:>10.4} J {:>7.1}%",
            a.workload,
            a.slot,
            a.latency_ms,
            a.energy_per_inference_j,
            a.load * 100.0
        );
    }
    println!(
        "\nworkload power {:.2} W of {:.0} W budget -> viable: {}",
        report.workload_power_w,
        report.budget_w,
        report.viable()
    );
    Ok(())
}
