// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Quickstart: the core VEDLIoT flow in one page.
//!
//! Builds one of the paper's evaluation networks, analyzes its cost,
//! selects an off-the-shelf accelerator under an embedded power budget,
//! optimizes the model for it, and prints the deployment report.
//!
//! Run with `cargo run --example quickstart`.

use vedliot::accel::approaches::select_off_the_shelf;
use vedliot::accel::catalog::catalog;
use vedliot::nnir::cost::CostReport;
use vedliot::nnir::{zoo, DataType};
use vedliot::toolchain::benchmark_deployment;
use vedliot::toolchain::passes::{FuseConvBn, PassManager, QuantizeInt8};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model from the paper's evaluation set.
    let model = zoo::mobilenet_v3_large(1000)?;
    let cost = CostReport::of(&model)?;
    println!("model: {}", cost.model);
    println!("  parameters : {:>12}", cost.total_params);
    println!("  MACs       : {:>12}", cost.total_macs);
    println!(
        "  weights    : {:>9.2} MiB (FP32) / {:.2} MiB (INT8)",
        cost.weight_bytes(DataType::F32) as f64 / (1 << 20) as f64,
        cost.weight_bytes(DataType::I8) as f64 / (1 << 20) as f64,
    );

    // 2. Off-the-shelf accelerator selection under a 15 W far-edge budget
    //    (the uRECS envelope).
    let db = catalog();
    let (platform, baseline) =
        select_off_the_shelf(&db, &model, 15.0)?.expect("the catalog has sub-15W parts");
    println!("\nselected platform: {platform}");
    println!(
        "  baseline: {:.1} ms / inference, {:.1} GOPS, {:.2} W",
        baseline.latency_ms, baseline.achieved_gops, baseline.avg_power_w
    );

    // 3. Optimize for the target: fuse batch norms, quantize to INT8.
    let mut pipeline = PassManager::new();
    pipeline.push(FuseConvBn::new());
    pipeline.push(QuantizeInt8::new());
    let report = benchmark_deployment(model, &pipeline, &platform, None)?;
    println!("\nafter optimization ({} passes):", report.pass_log.len());
    for log in &report.pass_log {
        println!("  [{}] {}", log.pass, log.detail);
    }
    println!(
        "  deployed: {:.1} ms / inference at {}, {:.3} J / inference",
        report.latency_ms, report.precision, report.energy_per_inference_j
    );
    println!(
        "  memory: {:.2} MiB weights, {:.2} MiB peak activations",
        report.weight_bytes as f64 / (1 << 20) as f64,
        report.activation_bytes as f64 / (1 << 20) as f64,
    );
    Ok(())
}
