//! End-to-end trust on an edge node (paper §IV-C): secure boot over a
//! hardware root of trust, remote attestation, the SQLite-style workload
//! inside an SGX enclave via the WASM runtime (the Twine experiment),
//! and PMP-confined user code on the simulated RISC-V SoC.
//!
//! Run with `cargo run --example trusted_edge`.

use vedliot::socsim::asm::assemble;
use vedliot::socsim::machine::Machine;
use vedliot::trust::attestation::{attest, BootOutcome, RootOfTrust, SecureBootChain, Verifier};
use vedliot::trust::enclave::EnclaveConfig;
use vedliot::trust::hash::to_hex;
use vedliot::trust::kvdb::{run_workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Secure boot ---
    let images: Vec<Vec<u8>> = vec![
        b"bl2-v1.2".to_vec(),
        b"trusted-os-v3".to_vec(),
        b"wasm-runtime-v7".to_vec(),
    ];
    let mut chain = SecureBootChain::new();
    for (name, image) in ["bl2", "trusted-os", "runtime"].iter().zip(&images) {
        chain.add_stage(*name, image);
    }
    let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
    let boot_measurement = match chain.boot(&refs) {
        BootOutcome::Trusted { boot_measurement } => boot_measurement,
        BootOutcome::Halted { stage } => panic!("secure boot halted at {stage}"),
    };
    println!(
        "secure boot OK, measurement {}",
        &to_hex(&boot_measurement)[..16]
    );

    // --- 2. Remote attestation ---
    let rot = RootOfTrust::provision(b"edge-node-7");
    let mut verifier = Verifier::new();
    verifier.enroll(&rot);
    verifier.expect_measurement(boot_measurement);
    let nonce = verifier.challenge();
    let report = attest(&rot, boot_measurement, nonce);
    println!("remote attestation verified: {}", verifier.verify(&report));

    // --- 3. Twine: the KV workload native / wasm / wasm-in-enclave ---
    let cmp = run_workload(&WorkloadConfig::default(), EnclaveConfig::default())?;
    println!("\nTwine-style runtime comparison (2000 inserts, 200 gets, 5 scans):");
    println!("  native          : {:>8.2} ms", cmp.native.seconds * 1e3);
    println!(
        "  wasm runtime    : {:>8.2} ms ({:.1}x native, {} VM instructions)",
        cmp.wasm.seconds * 1e3,
        cmp.wasm_overhead(),
        cmp.wasm.vm_instructions
    );
    println!(
        "  wasm in enclave : {:>8.2} ms (+{:.2} ms transitions/paging, {:.2}x the runtime)",
        cmp.wasm_enclave.seconds * 1e3,
        cmp.wasm_enclave.enclave_overhead_s * 1e3,
        cmp.enclave_overhead()
    );

    // --- 4. PMP-confined payload on the simulated RISC-V node ---
    let firmware = assemble(
        r#"
        la   t0, handler
        csrrw x0, mtvec, t0
        li   t0, 0x0FFF          # NAPOT 0..0x7FFF R+X
        csrrw x0, pmpaddr0, t0
        li   t0, 0x21FF          # NAPOT 0x8000..0x8FFF R+W
        csrrw x0, pmpaddr1, t0
        li   t0, 0x1B1D
        csrrw x0, pmpcfg0, t0
        csrrw x0, mstatus, x0
        la   t0, user
        csrrw x0, mepc, t0
        mret
    user:
        li   t1, 0x9000          # outside every granted region
        sw   t1, 0(t1)
        ebreak
    handler:
        csrrs a0, mcause, x0
        ebreak
    "#,
    )?;
    let mut machine = Machine::new(64 * 1024);
    machine.load_firmware(&firmware, 0)?;
    machine.run(10_000)?;
    println!(
        "\nPMP: user-mode store outside its region trapped with mcause = {} \
         (store access fault), after {} PMP checks",
        machine.cpu().reg(10),
        machine.cpu().pmp_checks
    );
    Ok(())
}
