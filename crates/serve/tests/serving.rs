// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Integration tests for the serving contract: backpressure, deadline
//! purge, drain-on-shutdown, the 100-request smoke test, and the
//! property that dynamic batching is bit-invisible to callers.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use vedliot_nnir::exec::{RunOptions, Runner};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};
use vedliot_serve::{BatchPolicy, ServeConfig, ServeError, Server, SubmitRequest};

fn demo_graph() -> Graph {
    zoo::tiny_cnn("serve-it", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
}

fn demo_input(seed: u64) -> Tensor {
    Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
}

/// A policy that holds requests in the queue: the batch never fills and
/// the linger window is far longer than any test body, so the queue
/// state is fully deterministic until shutdown forces the drain.
fn holding_policy() -> BatchPolicy {
    BatchPolicy {
        max_batch: 64,
        max_linger: Duration::from_secs(30),
    }
}

#[test]
fn queue_full_rejects_with_capacity() {
    let graph = demo_graph();
    let config = ServeConfig::builder()
        .queue_capacity(4)
        .workers(1)
        .batch(holding_policy())
        .build()
        .unwrap();
    let server = Server::start(&graph, config).unwrap();
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]))
                .unwrap()
        })
        .collect();
    // Fifth submission hits the bound — typed backpressure, not loss.
    let err = server
        .submit_request(SubmitRequest::new(vec![demo_input(99)]))
        .unwrap_err();
    assert_eq!(err, ServeError::Rejected { capacity: 4 });
    // Shutdown drains the four queued requests; all are served.
    let m = {
        let results: Vec<_> = {
            let s = server;
            let handle = std::thread::spawn(move || s.shutdown());
            let results = tickets
                .into_iter()
                .map(vedliot_serve::Ticket::wait)
                .collect();
            let m = handle.join().unwrap();
            assert!(m.accounted_for());
            assert_eq!(m.rejected, 1);
            results
        };
        assert!(results.iter().all(Result::is_ok));
        results.len()
    };
    assert_eq!(m, 4);
}

#[test]
fn expired_deadline_is_purged_with_typed_reply() {
    let graph = demo_graph();
    let config = ServeConfig::builder()
        .batch(holding_policy())
        .build()
        .unwrap();
    let server = Server::start(&graph, config).unwrap();
    // Already expired at submit time: the worker must purge it before
    // execution and answer with DeadlineExceeded — never drop it.
    let past = Instant::now() - Duration::from_millis(5);
    let late = server
        .submit_request(SubmitRequest::new(vec![demo_input(1)]).deadline(past))
        .unwrap();
    assert_eq!(late.wait(), Err(ServeError::DeadlineExceeded));
    // A generous deadline is untouched by the purge.
    let future = Instant::now() + Duration::from_secs(60);
    let fine = server
        .submit_request(SubmitRequest::new(vec![demo_input(2)]).deadline(future))
        .unwrap();
    let m = server.shutdown();
    assert!(fine.wait().is_ok());
    assert_eq!(m.timed_out, 1);
    assert_eq!(m.served, 1);
    assert!(m.accounted_for());
}

#[test]
fn shutdown_drains_in_flight_work() {
    let graph = demo_graph();
    let config = ServeConfig::builder()
        .queue_capacity(32)
        .batch(holding_policy())
        .build()
        .unwrap();
    let server = Server::start(&graph, config).unwrap();
    let tickets: Vec<_> = (0..10)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]))
                .unwrap()
        })
        .collect();
    let m = server.shutdown();
    assert_eq!(m.served, 10);
    assert!(m.accounted_for());
    for t in tickets {
        let out = t.wait().unwrap();
        assert_eq!(out[0].shape(), &Shape::nf(1, 3));
    }
}

#[test]
fn smoke_100_requests_zero_lost() {
    let graph = demo_graph();
    let config = ServeConfig::builder()
        .queue_capacity(128)
        .workers(2)
        .batch(BatchPolicy {
            max_batch: 8,
            max_linger: Duration::from_micros(200),
        })
        .build()
        .unwrap();
    let server = Server::start(&graph, config).unwrap();
    let tickets: Vec<_> = (0..100)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]))
                .unwrap()
        })
        .collect();
    for t in tickets {
        let out = t.wait().expect("every accepted request is served");
        assert_eq!(out[0].shape(), &Shape::nf(1, 3));
    }
    let m = server.shutdown();
    assert_eq!(m.served, 100);
    assert_eq!(m.submitted, 100);
    assert!(m.accounted_for());
    assert!(m.batches <= 100, "batching coalesced at least some pairs");
}

/// Direct single-sample forward pass through the one-door API.
fn solo_run(graph: &Graph, input: &Tensor) -> Vec<Tensor> {
    Runner::builder()
        .build(graph)
        .unwrap()
        .execute(std::slice::from_ref(input), RunOptions::default())
        .unwrap()
        .into_outputs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dynamic batching is invisible: whatever batch the server forms,
    /// every request receives bit-identical bytes to a solo run.
    #[test]
    fn served_outputs_match_solo_runs(
        seeds in proptest::collection::vec(0u64..1000, 1..6),
        max_batch in 1usize..6,
    ) {
        let graph = demo_graph();
        let config = ServeConfig::builder()
            .queue_capacity(16)
            .workers(1)
            .batch(BatchPolicy {
                max_batch,
                max_linger: Duration::from_millis(5),
            })
            .build()
            .unwrap();
        let server = Server::start(&graph, config).unwrap();
        let tickets: Vec<_> = seeds
            .iter()
            .map(|&s| {
                server
                    .submit_request(SubmitRequest::new(vec![demo_input(s)]))
                    .unwrap()
            })
            .collect();
        for (&seed, ticket) in seeds.iter().zip(tickets) {
            let served = ticket.wait().unwrap();
            let solo = solo_run(&graph, &demo_input(seed));
            prop_assert_eq!(&served, &solo, "seed {} diverged", seed);
        }
        let m = server.shutdown();
        prop_assert!(m.accounted_for());
    }
}
