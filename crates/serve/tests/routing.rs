// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Multi-tenant routing integration: a two-model zoo behind one
//! gateway, exercising hot load/unload with drain, per-model quotas,
//! priority-class shedding, per-model metrics/labels, and the key
//! isolation property — one tenant's poisoned chaos traffic cannot
//! degrade its neighbour's pool.

use std::time::Duration;
use vedliot_nnir::exec::{RunOptions, Runner};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};
use vedliot_serve::{
    BatchPolicy, FaultPlan, Health, ModelConfig, Priority, ServeConfig, ServeError, Server,
    SubmitRequest, DEFAULT_MODEL,
};

fn cnn_graph(name: &str) -> Graph {
    zoo::tiny_cnn(name, Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
}

fn cnn_input(seed: u64) -> Tensor {
    Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
}

fn lenet_input(seed: u64) -> Tensor {
    Tensor::random(Shape::nchw(1, 1, 28, 28), seed, 1.0)
}

/// Silences the panic hook for injected chaos panics (expected by the
/// dozen), delegating every real panic to the default hook untouched.
fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.starts_with("chaos:") {
                default_hook(info);
            }
        }));
    });
}

fn fast_batching() -> BatchPolicy {
    BatchPolicy {
        max_batch: 4,
        max_linger: Duration::from_micros(200),
    }
}

/// Requests routed by model key land on the right graph (the two models
/// have different class counts, so the output shape proves the route),
/// and each model's replies are bit-identical to a direct solo Runner
/// execution of that model — multi-tenancy does not perturb bytes.
#[test]
fn routed_outputs_are_bit_identical_to_solo_runs() {
    let cnn = cnn_graph("route-cnn");
    let lenet = zoo::lenet5(10).unwrap();
    let config = ServeConfig::builder()
        .queue_capacity(64)
        .batch(fast_batching())
        .build()
        .unwrap();
    let server = Server::start(&cnn, config).unwrap();
    server
        .load("lenet5", &lenet, ModelConfig::default())
        .unwrap();
    assert_eq!(
        server.models(),
        vec![DEFAULT_MODEL.to_string(), "lenet5".to_string()]
    );

    let cnn_tickets: Vec<_> = (0..8)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![cnn_input(i)]))
                .unwrap()
        })
        .collect();
    let lenet_tickets: Vec<_> = (0..8)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![lenet_input(i)]).model("lenet5"))
                .unwrap()
        })
        .collect();

    let mut cnn_solo = Runner::builder().build(&cnn).unwrap();
    for (i, t) in cnn_tickets.into_iter().enumerate() {
        let served = t.wait().unwrap();
        assert_eq!(served[0].shape(), &Shape::nf(1, 3));
        let solo = cnn_solo
            .execute(
                std::slice::from_ref(&cnn_input(i as u64)),
                RunOptions::default(),
            )
            .unwrap()
            .into_outputs();
        assert_eq!(served, solo, "cnn request {i} diverged from solo run");
    }
    let mut lenet_solo = Runner::builder().build(&lenet).unwrap();
    for (i, t) in lenet_tickets.into_iter().enumerate() {
        let served = t.wait().unwrap();
        assert_eq!(served[0].shape(), &Shape::nf(1, 10));
        let solo = lenet_solo
            .execute(
                std::slice::from_ref(&lenet_input(i as u64)),
                RunOptions::default(),
            )
            .unwrap()
            .into_outputs();
        assert_eq!(served, solo, "lenet request {i} diverged from solo run");
    }

    let cnn_m = server.model_metrics(DEFAULT_MODEL).unwrap();
    let lenet_m = server.model_metrics("lenet5").unwrap();
    assert_eq!(cnn_m.served, 8);
    assert_eq!(lenet_m.served, 8);
    let m = server.shutdown();
    assert_eq!(m.served, 16);
    assert!(m.accounted_for());
}

/// Hot unload drains in-flight work: tickets issued before the unload
/// are still answered, the retired model's snapshot is returned, the
/// gateway aggregate keeps the retired counters, and later submissions
/// to the gone key are a typed refusal.
#[test]
fn unload_drains_and_retires_the_tenant() {
    let config = ServeConfig::builder()
        .queue_capacity(64)
        .batch(fast_batching())
        .build()
        .unwrap();
    let server = Server::start(&cnn_graph("stay"), config).unwrap();
    server
        .load("doomed", &cnn_graph("doomed"), ModelConfig::default())
        .unwrap();
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![cnn_input(i)]).model("doomed"))
                .unwrap()
        })
        .collect();
    let retired = server.unload("doomed").unwrap();
    assert_eq!(retired.served, 6, "unload drained every queued request");
    assert!(retired.accounted_for());
    for t in tickets {
        assert!(t.wait().is_ok(), "in-flight ticket answered across unload");
    }
    assert_eq!(
        server
            .submit_request(SubmitRequest::new(vec![cnn_input(9)]).model("doomed"))
            .unwrap_err(),
        ServeError::UnknownModel {
            model: "doomed".into()
        }
    );
    assert_eq!(
        server.unload("doomed").unwrap_err(),
        ServeError::UnknownModel {
            model: "doomed".into()
        }
    );
    let m = server.shutdown();
    assert_eq!(m.served, 6, "retired counters stay in the aggregate");
    assert!(m.accounted_for());
}

/// Weighted quotas bound tenant queue share: with a holding batcher the
/// heavy tenant gets its weighted slots and the light tenant cannot
/// queue past its own share even though gateway capacity remains.
#[test]
fn quotas_bound_tenant_queue_share() {
    let holding = BatchPolicy {
        max_batch: 64,
        max_linger: Duration::from_secs(30),
    };
    let config = ServeConfig::builder()
        .queue_capacity(8)
        .batch(holding)
        .build()
        .unwrap();
    let server = Server::start(&cnn_graph("heavy"), config).unwrap();
    // weight 1 (default) vs weight 3 over capacity 8: light quota = 2.
    server
        .load(
            "light",
            &cnn_graph("light"),
            ModelConfig::default().weight(3).quota(2).batch(holding),
        )
        .unwrap();
    let t1 = server
        .submit_request(SubmitRequest::new(vec![cnn_input(1)]).model("light"))
        .unwrap();
    let t2 = server
        .submit_request(SubmitRequest::new(vec![cnn_input(2)]).model("light"))
        .unwrap();
    // Same class queued, quota exhausted: typed per-tenant refusal,
    // not gateway backpressure (the gateway still has 6 free slots).
    assert_eq!(
        server
            .submit_request(SubmitRequest::new(vec![cnn_input(3)]).model("light"))
            .unwrap_err(),
        ServeError::QuotaExceeded { quota: 2 }
    );
    // The default tenant is untouched by the light tenant's pressure.
    let t3 = server
        .submit_request(SubmitRequest::new(vec![cnn_input(4)]))
        .unwrap();
    let m = {
        let handle = std::thread::spawn(move || server.shutdown());
        for t in [t1, t2, t3] {
            assert!(t.wait().is_ok());
        }
        handle.join().unwrap()
    };
    assert!(m.accounted_for());
    assert_eq!((m.served, m.rejected), (3, 1));
}

/// Priority classes at one tenant's full quota: a High submission
/// displaces the youngest Batch request rather than being refused.
#[test]
fn high_priority_displaces_batch_work_at_quota() {
    let holding = BatchPolicy {
        max_batch: 64,
        max_linger: Duration::from_secs(30),
    };
    let config = ServeConfig::builder()
        .queue_capacity(8)
        .batch(holding)
        .build()
        .unwrap();
    let server = Server::start(&cnn_graph("prio"), config).unwrap();
    server
        .load(
            "tenant",
            &cnn_graph("tenant"),
            ModelConfig::default().quota(2).batch(holding),
        )
        .unwrap();
    let b1 = server
        .submit_request(
            SubmitRequest::new(vec![cnn_input(1)])
                .model("tenant")
                .priority(Priority::Batch),
        )
        .unwrap();
    let b2 = server
        .submit_request(
            SubmitRequest::new(vec![cnn_input(2)])
                .model("tenant")
                .priority(Priority::Batch),
        )
        .unwrap();
    let high = server
        .submit_request(
            SubmitRequest::new(vec![cnn_input(3)])
                .model("tenant")
                .priority(Priority::High),
        )
        .unwrap();
    // The youngest Batch request was evicted with the typed shed error.
    assert_eq!(b2.wait(), Err(ServeError::ShedLowPriority));
    let m = {
        let handle = std::thread::spawn(move || server.shutdown());
        assert!(b1.wait().is_ok(), "oldest batch request survives");
        assert!(high.wait().is_ok(), "high-priority request is served");
        handle.join().unwrap()
    };
    assert!(m.accounted_for());
    assert_eq!(m.shed_by_priority, [0, 0, 1]);
    assert_eq!(m.served_by_priority, [1, 0, 1]);
}

/// The isolation property under seeded chaos: a tenant whose traffic is
/// poisoned and panicking cannot degrade its neighbour — the quiet
/// tenant's pool reports no faults, serves everything, and stays
/// `Serving` even while the noisy pool degrades.
#[test]
fn noisy_tenant_cannot_degrade_its_neighbour() {
    silence_chaos_panics();
    let config = ServeConfig::builder()
        .queue_capacity(256)
        .batch(fast_batching())
        .build()
        .unwrap();
    let server = Server::start(&cnn_graph("quiet"), config).unwrap();
    server
        .load(
            "noisy",
            &cnn_graph("noisy"),
            ModelConfig::default()
                .batch(fast_batching())
                .chaos(FaultPlan {
                    seed: 0xD15EA5E,
                    panic_per_batch: 0.3,
                    kill_per_wakeup: 0.0,
                    poison_every: 5,
                    weight_bit_flips: 0,
                }),
        )
        .unwrap();
    let noisy_tickets: Vec<_> = (0..40)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![cnn_input(i)]).model("noisy"))
                .unwrap()
        })
        .collect();
    let quiet_tickets: Vec<_> = (0..40)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![cnn_input(100 + i)]))
                .unwrap()
        })
        .collect();
    for t in quiet_tickets {
        assert!(t.wait().is_ok(), "quiet tenant must serve everything");
    }
    for t in noisy_tickets {
        match t.wait() {
            // The noisy tenant may lose requests to quarantine or an
            // exhausted retry budget — its availability is not the
            // property under test here, its neighbour's isolation is.
            Ok(_) | Err(ServeError::Quarantined { .. }) | Err(ServeError::WorkerCrashed { .. }) => {
            }
            Err(other) => panic!("unexpected noisy-tenant error: {other}"),
        }
    }
    let quiet = server.model_metrics(DEFAULT_MODEL).unwrap();
    assert_eq!(quiet.served, 40);
    assert_eq!(
        (quiet.panics_absorbed, quiet.quarantined, quiet.retries),
        (0, 0, 0),
        "the neighbour's chaos leaked into the quiet pool: {quiet:?}"
    );
    let noisy = server.model_metrics("noisy").unwrap();
    assert!(
        noisy.quarantined > 0,
        "poison_every=5 over 40 requests quarantines: {noisy:?}"
    );
    assert_eq!(server.model_health(DEFAULT_MODEL).unwrap(), Health::Serving);
    let m = server.shutdown();
    assert!(m.accounted_for());
}

/// The deprecated positional `submit` still works, routing to the
/// default model at `Priority::Normal` — the migration shim contract.
#[test]
fn deprecated_submit_shim_routes_to_default_model() {
    let config = ServeConfig::builder()
        .batch(fast_batching())
        .build()
        .unwrap();
    let server = Server::start(&cnn_graph("compat"), config).unwrap();
    #[allow(deprecated)]
    let ticket = server.submit(vec![cnn_input(7)], None).unwrap();
    assert!(ticket.wait().is_ok());
    let m = server.shutdown();
    assert_eq!(m.submitted_by_priority, [0, 1, 0]);
    assert_eq!(m.served_by_priority, [0, 1, 0]);
}
