// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Deterministic-interleaving model check of the serving concurrency
//! protocol.
//!
//! The server's correctness argument rests on two properties that unit
//! tests only probe for *some* thread schedules:
//!
//! 1. **Ticket/accounting partition** — every submitted request gets
//!    exactly one reply, and `served + rejected == submitted` (the
//!    model has no deadlines or faults, so the other outcome counters
//!    stay zero).
//! 2. **Close/drain protocol** — once shutdown begins, no new request
//!    is accepted, every already-queued request is still drained and
//!    answered, and every worker terminates (no deadlock, no abandoned
//!    queue).
//!
//! This test checks the properties for **every** schedule, by modelling
//! the protocol as an explicit-state transition system and exhaustively
//! enumerating interleavings with memoized DFS. Each transition is one
//! lock-held critical section from `server.rs`:
//!
//! * `Submit(c)` — the body of `Server::submit`'s locked block:
//!   check `shutting_down`, check capacity, enqueue (all under the
//!   queue mutex, exactly as in the implementation).
//! * `Shutdown` — `begin_shutdown`: set the flag, notify.
//! * `Take(w)` — the worker's locked batch-take: enabled whenever the
//!   queue is non-empty, because the linger timeout can always have
//!   elapsed; drains `min(len, max_batch)`.
//! * `Finish(w)` — the out-of-lock batch execution: one `Ok` reply per
//!   request in the held batch.
//! * `Exit(w)` — the worker's exit path: queue empty **and**
//!   `shutting_down`.
//!
//! A worker with an empty queue and no shutdown is parked on the
//! condvar — its transition set is empty, which the enumeration treats
//! as "blocked", and the deadlock check requires that some other
//! transition is always enabled until the system reaches a terminal
//! state.
//!
//! A meta-test then seeds two protocol bugs (exit-while-queued and
//! submit-ignores-shutdown) and asserts the checker rejects both — the
//! checker has teeth.
//!
//! Set `INTERLEAVE_DEPTH=deep` (as `ci.sh --deep` does) to enlarge the
//! bounds.

use std::collections::HashSet;

/// Which deliberately-broken protocol variant to model, if any.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// Worker exit checks only `shutting_down`, not queue emptiness —
    /// the drain half of the close/drain protocol is missing.
    ExitWithQueuedWork,
    /// `submit` checks capacity but not `shutting_down` — requests can
    /// slip into the queue after the workers have begun (or finished)
    /// exiting.
    IgnoreShutdownOnSubmit,
}

#[derive(Clone, Copy)]
struct Spec {
    capacity: usize,
    max_batch: usize,
    clients: usize,
    workers: usize,
    bug: Option<Bug>,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Worker {
    /// At the top of `worker_loop`, about to take the lock.
    AtLoop,
    /// Holding a formed batch outside the lock.
    Executing(Vec<u8>),
    /// Returned.
    Exited,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    queue: Vec<u8>,
    shutting_down: bool,
    shutdown_fired: bool,
    /// Per-client: has this client's single submit run yet?
    submitted_by: Vec<bool>,
    workers: Vec<Worker>,
    /// Per-request reply count (must end at exactly 1).
    replies: Vec<u8>,
    submitted: u32,
    served: u32,
    rejected: u32,
}

impl State {
    fn initial(spec: &Spec) -> State {
        State {
            queue: Vec::new(),
            shutting_down: false,
            shutdown_fired: false,
            submitted_by: vec![false; spec.clients],
            workers: vec![Worker::AtLoop; spec.workers],
            replies: vec![0; spec.clients],
            submitted: 0,
            served: 0,
            rejected: 0,
        }
    }

    fn terminal(&self) -> bool {
        self.submitted_by.iter().all(|&s| s)
            && self.shutdown_fired
            && self.workers.iter().all(|w| *w == Worker::Exited)
    }
}

#[derive(Clone, Copy)]
enum Transition {
    Submit(usize),
    Shutdown,
    Take(usize),
    Finish(usize),
    Exit(usize),
}

fn enabled(spec: &Spec, s: &State) -> Vec<Transition> {
    let mut out = Vec::new();
    for (c, done) in s.submitted_by.iter().enumerate() {
        if !done {
            out.push(Transition::Submit(c));
        }
    }
    if !s.shutdown_fired {
        out.push(Transition::Shutdown);
    }
    for (w, worker) in s.workers.iter().enumerate() {
        match worker {
            Worker::AtLoop => {
                if !s.queue.is_empty() {
                    // The linger timeout may always have elapsed, so a
                    // non-empty queue always permits a (partial) take.
                    out.push(Transition::Take(w));
                }
                let exit_ok = if spec.bug == Some(Bug::ExitWithQueuedWork) {
                    s.shutting_down
                } else {
                    s.queue.is_empty() && s.shutting_down
                };
                if exit_ok {
                    out.push(Transition::Exit(w));
                }
                // Empty queue without shutdown: parked on the condvar,
                // no transition.
            }
            Worker::Executing(_) => out.push(Transition::Finish(w)),
            Worker::Exited => {}
        }
    }
    out
}

fn apply(spec: &Spec, s: &State, t: Transition) -> State {
    let mut n = s.clone();
    match t {
        Transition::Submit(c) => {
            n.submitted_by[c] = true;
            n.submitted += 1;
            let reject_for_shutdown =
                n.shutting_down && spec.bug != Some(Bug::IgnoreShutdownOnSubmit);
            if reject_for_shutdown || n.queue.len() >= spec.capacity {
                n.rejected += 1;
                n.replies[c] += 1;
            } else {
                n.queue.push(c as u8);
            }
        }
        Transition::Shutdown => {
            n.shutdown_fired = true;
            n.shutting_down = true;
        }
        Transition::Take(w) => {
            let take = n.queue.len().min(spec.max_batch);
            let batch: Vec<u8> = n.queue.drain(..take).collect();
            n.workers[w] = Worker::Executing(batch);
        }
        Transition::Finish(w) => {
            if let Worker::Executing(batch) = std::mem::replace(&mut n.workers[w], Worker::AtLoop) {
                for req in batch {
                    n.replies[req as usize] += 1;
                    n.served += 1;
                }
            }
        }
        Transition::Exit(w) => {
            n.workers[w] = Worker::Exited;
        }
    }
    n
}

/// Safety invariants that must hold in *every* reachable state.
fn check_state(spec: &Spec, s: &State) -> Result<(), String> {
    if s.queue.len() > spec.capacity {
        return Err(format!(
            "queue overflow: {} > capacity {}",
            s.queue.len(),
            spec.capacity
        ));
    }
    for (c, &count) in s.replies.iter().enumerate() {
        if count > 1 {
            return Err(format!("request {c} replied to {count} times"));
        }
    }
    Ok(())
}

/// Invariants of a terminal (fully quiesced) state.
fn check_terminal(s: &State) -> Result<(), String> {
    if !s.queue.is_empty() {
        return Err(format!(
            "shutdown abandoned {} queued request(s)",
            s.queue.len()
        ));
    }
    for (c, &count) in s.replies.iter().enumerate() {
        if count != 1 {
            return Err(format!("request {c} got {count} replies, want exactly 1"));
        }
    }
    if s.served + s.rejected != s.submitted {
        return Err(format!(
            "accounting leak: served {} + rejected {} != submitted {}",
            s.served, s.rejected, s.submitted
        ));
    }
    Ok(())
}

#[derive(Debug)]
struct Explored {
    states: usize,
    terminals: usize,
}

/// Exhaustive memoized DFS over every interleaving of the model.
fn explore(spec: &Spec) -> Result<Explored, String> {
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(spec)];
    let mut terminals = 0usize;
    while let Some(s) = stack.pop() {
        if visited.contains(&s) {
            continue;
        }
        check_state(spec, &s)?;
        let ts = enabled(spec, &s);
        if ts.is_empty() {
            if !s.terminal() {
                return Err(format!(
                    "deadlock: no transition enabled, queue={:?} workers alive={}",
                    s.queue,
                    s.workers.iter().filter(|w| **w != Worker::Exited).count()
                ));
            }
            check_terminal(&s)?;
            terminals += 1;
        } else {
            for t in ts {
                let n = apply(spec, &s, t);
                if !visited.contains(&n) {
                    stack.push(n);
                }
            }
        }
        visited.insert(s);
    }
    Ok(Explored {
        states: visited.len(),
        terminals,
    })
}

fn base_spec() -> Spec {
    let deep = std::env::var("INTERLEAVE_DEPTH").is_ok_and(|v| v == "deep");
    if deep {
        Spec {
            capacity: 2,
            max_batch: 2,
            clients: 5,
            workers: 3,
            bug: None,
        }
    } else {
        Spec {
            capacity: 2,
            max_batch: 2,
            clients: 3,
            workers: 2,
            bug: None,
        }
    }
}

#[test]
fn every_interleaving_preserves_ticket_accounting_and_drain() {
    let spec = base_spec();
    let explored = explore(&spec).unwrap_or_else(|violation| {
        panic!("model check failed: {violation}");
    });
    // The bound must actually generate schedule diversity, or the
    // check is vacuous.
    assert!(
        explored.states > 300,
        "suspiciously small state space: {}",
        explored.states
    );
    assert!(explored.terminals >= 1);
}

#[test]
fn single_worker_single_client_is_also_clean() {
    // The degenerate bound where the close/drain races are sharpest:
    // one worker must both drain and exit.
    let spec = Spec {
        capacity: 1,
        max_batch: 1,
        clients: 2,
        workers: 1,
        bug: None,
    };
    explore(&spec).expect("protocol holds at minimal bounds");
}

#[test]
fn checker_rejects_exit_with_queued_work() {
    let spec = Spec {
        bug: Some(Bug::ExitWithQueuedWork),
        ..base_spec()
    };
    let violation = explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("abandoned") || violation.contains("replies"),
        "unexpected violation message: {violation}"
    );
}

#[test]
fn checker_rejects_submit_that_ignores_shutdown() {
    let spec = Spec {
        bug: Some(Bug::IgnoreShutdownOnSubmit),
        ..base_spec()
    };
    let violation = explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("abandoned") || violation.contains("replies"),
        "unexpected violation message: {violation}"
    );
}

// ---------------------------------------------------------------------
// Routing model: the multi-tenant admission/priority/unload protocol.
// ---------------------------------------------------------------------
//
// A second transition system models the PR-7 gateway: two model pools
// behind one gateway capacity, per-pool quotas, three priority classes,
// priority-ordered eviction, and hot unload-with-drain. Checked in
// every reachable state:
//
// 1. **No cross-model batch mixing** — a formed batch holds requests of
//    exactly one model.
// 2. **Priority shed order** — a request is never shed in favour of
//    equal-or-lower-priority work, and never shed while strictly
//    lower-priority work remains queued in its pool.
// 3. **Unload drains** — unloading a model answers every queued and
//    in-flight request; nothing is abandoned.
// 4. The ticket/accounting partition from the base model still holds.
//
// Meta-tests seed three protocol bugs (batch steals across pools,
// eviction picks the wrong side of the priority order, unload drops its
// queue) and assert the checker rejects each.

/// Which deliberately-broken routing variant to model, if any.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RoutingBug {
    /// The batcher refills a short batch from the *other* pool's queue.
    MixesModels,
    /// Admission evicts strictly-higher-priority work to admit a
    /// lower-priority submission.
    EvictsAboveInsteadOfBelow,
    /// Unload clears the pool's queues without replying.
    UnloadDropsQueuedWork,
}

#[derive(Clone, Copy)]
struct RoutingSpec {
    /// Per-client (model, priority-class index 0=High 1=Normal 2=Batch).
    clients: [(usize, usize); 4],
    gateway_capacity: usize,
    /// Per-pool queue quota.
    quota: usize,
    max_batch: usize,
    bug: Option<RoutingBug>,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum PoolWorker {
    AtLoop,
    /// Holding a formed batch (client ids) outside the lock.
    Executing(Vec<u8>),
    Exited,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RoutingState {
    /// pool → class → FIFO of client ids.
    queues: [[Vec<u8>; 3]; 2],
    /// Pool B can be hot-unloaded; a draining pool refuses submissions.
    draining: [bool; 2],
    unload_fired: bool,
    shutdown_fired: bool,
    submitted_by: [bool; 4],
    workers: [PoolWorker; 2],
    replies: [u8; 4],
    served: u32,
    refused: u32,
}

impl RoutingState {
    fn initial() -> RoutingState {
        RoutingState {
            queues: Default::default(),
            draining: [false; 2],
            unload_fired: false,
            shutdown_fired: false,
            submitted_by: [false; 4],
            workers: [PoolWorker::AtLoop, PoolWorker::AtLoop],
            replies: [0; 4],
            served: 0,
            refused: 0,
        }
    }

    fn pool_depth(&self, pool: usize) -> usize {
        self.queues[pool].iter().map(Vec::len).sum()
    }

    fn total_queued(&self) -> usize {
        self.pool_depth(0) + self.pool_depth(1)
    }

    fn terminal(&self) -> bool {
        self.submitted_by.iter().all(|&s| s)
            && self.shutdown_fired
            && self.workers.iter().all(|w| *w == PoolWorker::Exited)
    }
}

#[derive(Clone, Copy)]
enum RoutingTransition {
    Submit(usize),
    /// Hot-unload pool B (begin its drain).
    Unload,
    Shutdown,
    Take(usize),
    Finish(usize),
    Exit(usize),
}

fn routing_enabled(s: &RoutingState) -> Vec<RoutingTransition> {
    let mut out = Vec::new();
    for (c, done) in s.submitted_by.iter().enumerate() {
        if !done {
            out.push(RoutingTransition::Submit(c));
        }
    }
    if !s.unload_fired {
        out.push(RoutingTransition::Unload);
    }
    if !s.shutdown_fired {
        out.push(RoutingTransition::Shutdown);
    }
    for (w, worker) in s.workers.iter().enumerate() {
        match worker {
            PoolWorker::AtLoop => {
                if s.pool_depth(w) > 0 {
                    out.push(RoutingTransition::Take(w));
                }
                if s.pool_depth(w) == 0 && s.draining[w] {
                    out.push(RoutingTransition::Exit(w));
                }
            }
            PoolWorker::Executing(_) => out.push(RoutingTransition::Finish(w)),
            PoolWorker::Exited => {}
        }
    }
    out
}

/// The admission critical section, mirroring `ModelPool::submit`.
/// Returns an error string on a priority-order violation.
fn routing_submit(spec: &RoutingSpec, n: &mut RoutingState, c: usize) -> Result<(), String> {
    let (pool, class) = spec.clients[c];
    n.submitted_by[c] = true;
    if n.draining[pool] {
        n.refused += 1;
        n.replies[c] += 1;
        return Ok(());
    }
    let over = n.pool_depth(pool) >= spec.quota || n.total_queued() >= spec.gateway_capacity;
    if over {
        // Eviction: youngest request of the lowest-priority nonempty
        // class strictly below the incoming one (the seeded bug scans
        // strictly *above* instead).
        let candidates: Vec<usize> = if spec.bug == Some(RoutingBug::EvictsAboveInsteadOfBelow) {
            (0..class).rev().collect()
        } else {
            (class + 1..3).rev().collect()
        };
        let victim = candidates
            .into_iter()
            .find(|&cls| !n.queues[pool][cls].is_empty());
        match victim {
            Some(cls) => {
                let evicted = n.queues[pool][cls].pop().unwrap();
                // Property 2, victim half: never shed in favour of
                // equal-or-lower-priority work.
                if cls <= class {
                    return Err(format!(
                        "priority inversion: class-{cls} request {evicted} shed \
                         to admit class-{class} request {c}"
                    ));
                }
                n.refused += 1;
                n.replies[evicted as usize] += 1;
            }
            None => {
                // Property 2, self half: never refused while strictly
                // lower-priority work sits queued in the same pool.
                if (class + 1..3).any(|cls| !n.queues[pool][cls].is_empty()) {
                    return Err(format!(
                        "class-{class} request {c} refused while lower-priority \
                         work is queued in pool {pool}"
                    ));
                }
                n.refused += 1;
                n.replies[c] += 1;
                return Ok(());
            }
        }
    }
    n.queues[pool][class].push(c as u8);
    Ok(())
}

fn routing_apply(
    spec: &RoutingSpec,
    s: &RoutingState,
    t: RoutingTransition,
) -> Result<RoutingState, String> {
    let mut n = s.clone();
    match t {
        RoutingTransition::Submit(c) => routing_submit(spec, &mut n, c)?,
        RoutingTransition::Unload => {
            n.unload_fired = true;
            n.draining[1] = true;
            if spec.bug == Some(RoutingBug::UnloadDropsQueuedWork) {
                n.queues[1] = Default::default();
            }
        }
        RoutingTransition::Shutdown => {
            n.shutdown_fired = true;
            n.draining = [true; 2];
        }
        RoutingTransition::Take(w) => {
            let mut batch = Vec::new();
            for cls in 0..3 {
                while batch.len() < spec.max_batch && !n.queues[w][cls].is_empty() {
                    batch.push(n.queues[w][cls].remove(0));
                }
            }
            if spec.bug == Some(RoutingBug::MixesModels) {
                let other = 1 - w;
                'steal: for cls in 0..3 {
                    while batch.len() < spec.max_batch {
                        if n.queues[other][cls].is_empty() {
                            continue 'steal;
                        }
                        batch.push(n.queues[other][cls].remove(0));
                    }
                }
            }
            n.workers[w] = PoolWorker::Executing(batch);
        }
        RoutingTransition::Finish(w) => {
            if let PoolWorker::Executing(batch) =
                std::mem::replace(&mut n.workers[w], PoolWorker::AtLoop)
            {
                for req in batch {
                    n.replies[req as usize] += 1;
                    n.served += 1;
                }
            }
        }
        RoutingTransition::Exit(w) => {
            n.workers[w] = PoolWorker::Exited;
        }
    }
    Ok(n)
}

/// Safety invariants of every reachable routing state.
fn routing_check_state(spec: &RoutingSpec, s: &RoutingState) -> Result<(), String> {
    if s.total_queued() > spec.gateway_capacity {
        return Err(format!(
            "gateway overflow: {} queued > capacity {}",
            s.total_queued(),
            spec.gateway_capacity
        ));
    }
    for (c, &count) in s.replies.iter().enumerate() {
        if count > 1 {
            return Err(format!("request {c} replied to {count} times"));
        }
    }
    // Property 1: a formed batch never mixes models.
    for (w, worker) in s.workers.iter().enumerate() {
        if let PoolWorker::Executing(batch) = worker {
            for &req in batch {
                let (model, _) = spec.clients[req as usize];
                if model != w {
                    return Err(format!(
                        "cross-model batch: pool {w} executing request {req} of model {model}"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn routing_check_terminal(s: &RoutingState) -> Result<(), String> {
    if s.total_queued() != 0 {
        return Err(format!(
            "drain abandoned {} queued request(s)",
            s.total_queued()
        ));
    }
    for (c, &count) in s.replies.iter().enumerate() {
        if count != 1 {
            return Err(format!("request {c} got {count} replies, want exactly 1"));
        }
    }
    let submitted = s.submitted_by.iter().filter(|&&b| b).count() as u32;
    if s.served + s.refused != submitted {
        return Err(format!(
            "accounting leak: served {} + refused {} != submitted {submitted}",
            s.served, s.refused
        ));
    }
    Ok(())
}

/// Exhaustive memoized DFS over the routing model.
fn routing_explore(spec: &RoutingSpec) -> Result<Explored, String> {
    let mut visited: HashSet<RoutingState> = HashSet::new();
    let mut stack = vec![RoutingState::initial()];
    let mut terminals = 0usize;
    while let Some(s) = stack.pop() {
        if visited.contains(&s) {
            continue;
        }
        routing_check_state(spec, &s)?;
        let ts = routing_enabled(&s);
        if ts.is_empty() {
            if !s.terminal() {
                return Err(format!(
                    "deadlock: queued={} workers alive={}",
                    s.total_queued(),
                    s.workers
                        .iter()
                        .filter(|w| **w != PoolWorker::Exited)
                        .count()
                ));
            }
            routing_check_terminal(&s)?;
            terminals += 1;
        } else {
            for t in ts {
                let n = routing_apply(spec, &s, t)?;
                if !visited.contains(&n) {
                    stack.push(n);
                }
            }
        }
        visited.insert(s);
    }
    Ok(Explored {
        states: visited.len(),
        terminals,
    })
}

/// Two tenants, all three priority classes, tight quota (1) and gateway
/// capacity (2) so eviction, quota refusal and gateway backpressure are
/// all reachable, plus a hot unload racing every submission order.
fn routing_spec() -> RoutingSpec {
    RoutingSpec {
        clients: [(0, 2), (0, 0), (1, 1), (1, 2)],
        gateway_capacity: 2,
        quota: 1,
        max_batch: 2,
        bug: None,
    }
}

#[test]
fn every_routing_interleaving_preserves_isolation_and_priority_order() {
    let explored = routing_explore(&routing_spec()).unwrap_or_else(|violation| {
        panic!("routing model check failed: {violation}");
    });
    assert!(
        explored.states > 500,
        "suspiciously small state space: {}",
        explored.states
    );
    assert!(explored.terminals >= 1);
}

#[test]
fn routing_checker_rejects_cross_model_batches() {
    let spec = RoutingSpec {
        bug: Some(RoutingBug::MixesModels),
        ..routing_spec()
    };
    let violation = routing_explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("cross-model"),
        "unexpected violation message: {violation}"
    );
}

#[test]
fn routing_checker_rejects_shedding_high_before_low() {
    let spec = RoutingSpec {
        bug: Some(RoutingBug::EvictsAboveInsteadOfBelow),
        ..routing_spec()
    };
    let violation = routing_explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("priority inversion") || violation.contains("refused while"),
        "unexpected violation message: {violation}"
    );
}

#[test]
fn routing_checker_rejects_unload_that_drops_queued_work() {
    let spec = RoutingSpec {
        bug: Some(RoutingBug::UnloadDropsQueuedWork),
        ..routing_spec()
    };
    let violation = routing_explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("got 0 replies"),
        "unexpected violation message: {violation}"
    );
}
