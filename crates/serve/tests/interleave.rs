//! Deterministic-interleaving model check of the serving concurrency
//! protocol.
//!
//! The server's correctness argument rests on two properties that unit
//! tests only probe for *some* thread schedules:
//!
//! 1. **Ticket/accounting partition** — every submitted request gets
//!    exactly one reply, and `served + rejected == submitted` (the
//!    model has no deadlines or faults, so the other outcome counters
//!    stay zero).
//! 2. **Close/drain protocol** — once shutdown begins, no new request
//!    is accepted, every already-queued request is still drained and
//!    answered, and every worker terminates (no deadlock, no abandoned
//!    queue).
//!
//! This test checks the properties for **every** schedule, by modelling
//! the protocol as an explicit-state transition system and exhaustively
//! enumerating interleavings with memoized DFS. Each transition is one
//! lock-held critical section from `server.rs`:
//!
//! * `Submit(c)` — the body of `Server::submit`'s locked block:
//!   check `shutting_down`, check capacity, enqueue (all under the
//!   queue mutex, exactly as in the implementation).
//! * `Shutdown` — `begin_shutdown`: set the flag, notify.
//! * `Take(w)` — the worker's locked batch-take: enabled whenever the
//!   queue is non-empty, because the linger timeout can always have
//!   elapsed; drains `min(len, max_batch)`.
//! * `Finish(w)` — the out-of-lock batch execution: one `Ok` reply per
//!   request in the held batch.
//! * `Exit(w)` — the worker's exit path: queue empty **and**
//!   `shutting_down`.
//!
//! A worker with an empty queue and no shutdown is parked on the
//! condvar — its transition set is empty, which the enumeration treats
//! as "blocked", and the deadlock check requires that some other
//! transition is always enabled until the system reaches a terminal
//! state.
//!
//! A meta-test then seeds two protocol bugs (exit-while-queued and
//! submit-ignores-shutdown) and asserts the checker rejects both — the
//! checker has teeth.
//!
//! Set `INTERLEAVE_DEPTH=deep` (as `ci.sh --deep` does) to enlarge the
//! bounds.

use std::collections::HashSet;

/// Which deliberately-broken protocol variant to model, if any.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// Worker exit checks only `shutting_down`, not queue emptiness —
    /// the drain half of the close/drain protocol is missing.
    ExitWithQueuedWork,
    /// `submit` checks capacity but not `shutting_down` — requests can
    /// slip into the queue after the workers have begun (or finished)
    /// exiting.
    IgnoreShutdownOnSubmit,
}

#[derive(Clone, Copy)]
struct Spec {
    capacity: usize,
    max_batch: usize,
    clients: usize,
    workers: usize,
    bug: Option<Bug>,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Worker {
    /// At the top of `worker_loop`, about to take the lock.
    AtLoop,
    /// Holding a formed batch outside the lock.
    Executing(Vec<u8>),
    /// Returned.
    Exited,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    queue: Vec<u8>,
    shutting_down: bool,
    shutdown_fired: bool,
    /// Per-client: has this client's single submit run yet?
    submitted_by: Vec<bool>,
    workers: Vec<Worker>,
    /// Per-request reply count (must end at exactly 1).
    replies: Vec<u8>,
    submitted: u32,
    served: u32,
    rejected: u32,
}

impl State {
    fn initial(spec: &Spec) -> State {
        State {
            queue: Vec::new(),
            shutting_down: false,
            shutdown_fired: false,
            submitted_by: vec![false; spec.clients],
            workers: vec![Worker::AtLoop; spec.workers],
            replies: vec![0; spec.clients],
            submitted: 0,
            served: 0,
            rejected: 0,
        }
    }

    fn terminal(&self) -> bool {
        self.submitted_by.iter().all(|&s| s)
            && self.shutdown_fired
            && self.workers.iter().all(|w| *w == Worker::Exited)
    }
}

#[derive(Clone, Copy)]
enum Transition {
    Submit(usize),
    Shutdown,
    Take(usize),
    Finish(usize),
    Exit(usize),
}

fn enabled(spec: &Spec, s: &State) -> Vec<Transition> {
    let mut out = Vec::new();
    for (c, done) in s.submitted_by.iter().enumerate() {
        if !done {
            out.push(Transition::Submit(c));
        }
    }
    if !s.shutdown_fired {
        out.push(Transition::Shutdown);
    }
    for (w, worker) in s.workers.iter().enumerate() {
        match worker {
            Worker::AtLoop => {
                if !s.queue.is_empty() {
                    // The linger timeout may always have elapsed, so a
                    // non-empty queue always permits a (partial) take.
                    out.push(Transition::Take(w));
                }
                let exit_ok = if spec.bug == Some(Bug::ExitWithQueuedWork) {
                    s.shutting_down
                } else {
                    s.queue.is_empty() && s.shutting_down
                };
                if exit_ok {
                    out.push(Transition::Exit(w));
                }
                // Empty queue without shutdown: parked on the condvar,
                // no transition.
            }
            Worker::Executing(_) => out.push(Transition::Finish(w)),
            Worker::Exited => {}
        }
    }
    out
}

fn apply(spec: &Spec, s: &State, t: Transition) -> State {
    let mut n = s.clone();
    match t {
        Transition::Submit(c) => {
            n.submitted_by[c] = true;
            n.submitted += 1;
            let reject_for_shutdown =
                n.shutting_down && spec.bug != Some(Bug::IgnoreShutdownOnSubmit);
            if reject_for_shutdown || n.queue.len() >= spec.capacity {
                n.rejected += 1;
                n.replies[c] += 1;
            } else {
                n.queue.push(c as u8);
            }
        }
        Transition::Shutdown => {
            n.shutdown_fired = true;
            n.shutting_down = true;
        }
        Transition::Take(w) => {
            let take = n.queue.len().min(spec.max_batch);
            let batch: Vec<u8> = n.queue.drain(..take).collect();
            n.workers[w] = Worker::Executing(batch);
        }
        Transition::Finish(w) => {
            if let Worker::Executing(batch) = std::mem::replace(&mut n.workers[w], Worker::AtLoop) {
                for req in batch {
                    n.replies[req as usize] += 1;
                    n.served += 1;
                }
            }
        }
        Transition::Exit(w) => {
            n.workers[w] = Worker::Exited;
        }
    }
    n
}

/// Safety invariants that must hold in *every* reachable state.
fn check_state(spec: &Spec, s: &State) -> Result<(), String> {
    if s.queue.len() > spec.capacity {
        return Err(format!(
            "queue overflow: {} > capacity {}",
            s.queue.len(),
            spec.capacity
        ));
    }
    for (c, &count) in s.replies.iter().enumerate() {
        if count > 1 {
            return Err(format!("request {c} replied to {count} times"));
        }
    }
    Ok(())
}

/// Invariants of a terminal (fully quiesced) state.
fn check_terminal(s: &State) -> Result<(), String> {
    if !s.queue.is_empty() {
        return Err(format!(
            "shutdown abandoned {} queued request(s)",
            s.queue.len()
        ));
    }
    for (c, &count) in s.replies.iter().enumerate() {
        if count != 1 {
            return Err(format!("request {c} got {count} replies, want exactly 1"));
        }
    }
    if s.served + s.rejected != s.submitted {
        return Err(format!(
            "accounting leak: served {} + rejected {} != submitted {}",
            s.served, s.rejected, s.submitted
        ));
    }
    Ok(())
}

#[derive(Debug)]
struct Explored {
    states: usize,
    terminals: usize,
}

/// Exhaustive memoized DFS over every interleaving of the model.
fn explore(spec: &Spec) -> Result<Explored, String> {
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(spec)];
    let mut terminals = 0usize;
    while let Some(s) = stack.pop() {
        if visited.contains(&s) {
            continue;
        }
        check_state(spec, &s)?;
        let ts = enabled(spec, &s);
        if ts.is_empty() {
            if !s.terminal() {
                return Err(format!(
                    "deadlock: no transition enabled, queue={:?} workers alive={}",
                    s.queue,
                    s.workers.iter().filter(|w| **w != Worker::Exited).count()
                ));
            }
            check_terminal(&s)?;
            terminals += 1;
        } else {
            for t in ts {
                let n = apply(spec, &s, t);
                if !visited.contains(&n) {
                    stack.push(n);
                }
            }
        }
        visited.insert(s);
    }
    Ok(Explored {
        states: visited.len(),
        terminals,
    })
}

fn base_spec() -> Spec {
    let deep = std::env::var("INTERLEAVE_DEPTH").is_ok_and(|v| v == "deep");
    if deep {
        Spec {
            capacity: 2,
            max_batch: 2,
            clients: 5,
            workers: 3,
            bug: None,
        }
    } else {
        Spec {
            capacity: 2,
            max_batch: 2,
            clients: 3,
            workers: 2,
            bug: None,
        }
    }
}

#[test]
fn every_interleaving_preserves_ticket_accounting_and_drain() {
    let spec = base_spec();
    let explored = explore(&spec).unwrap_or_else(|violation| {
        panic!("model check failed: {violation}");
    });
    // The bound must actually generate schedule diversity, or the
    // check is vacuous.
    assert!(
        explored.states > 300,
        "suspiciously small state space: {}",
        explored.states
    );
    assert!(explored.terminals >= 1);
}

#[test]
fn single_worker_single_client_is_also_clean() {
    // The degenerate bound where the close/drain races are sharpest:
    // one worker must both drain and exit.
    let spec = Spec {
        capacity: 1,
        max_batch: 1,
        clients: 2,
        workers: 1,
        bug: None,
    };
    explore(&spec).expect("protocol holds at minimal bounds");
}

#[test]
fn checker_rejects_exit_with_queued_work() {
    let spec = Spec {
        bug: Some(Bug::ExitWithQueuedWork),
        ..base_spec()
    };
    let violation = explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("abandoned") || violation.contains("replies"),
        "unexpected violation message: {violation}"
    );
}

#[test]
fn checker_rejects_submit_that_ignores_shutdown() {
    let spec = Spec {
        bug: Some(Bug::IgnoreShutdownOnSubmit),
        ..base_spec()
    };
    let violation = explore(&spec).expect_err("bug must be caught");
    assert!(
        violation.contains("abandoned") || violation.contains("replies"),
        "unexpected violation message: {violation}"
    );
}
