// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Observability integration: traced serve runs produce coherent span
//! timelines, the queue/inflight gauges settle, and the exporters'
//! output stays byte-identical to pinned goldens.

use std::time::{Duration, Instant};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};
use vedliot_obs::{Exportable, Histogram, SpanOutcome, StageBreakdown};
use vedliot_serve::{
    BatchPolicy, MetricsSnapshot, Priority, ServeConfig, Server, SubmitRequest, TracePolicy,
};

fn demo_graph() -> Graph {
    zoo::tiny_cnn("observe-test", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
}

fn demo_input(seed: u64) -> Tensor {
    Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
}

fn traced_config() -> ServeConfig {
    ServeConfig::builder()
        .queue_capacity(128)
        .batch(BatchPolicy {
            max_batch: 4,
            max_linger: Duration::from_micros(200),
        })
        .trace(TracePolicy { capacity: 128 })
        .build()
        .unwrap()
}

/// The ci.sh observability smoke: a seeded ~50-request traced run where
/// every span must be stage-monotonic and its five stages must sum to
/// the end-to-end latency exactly (the spans share one clock and one
/// epoch, so the accounting has no tolerance gap to hide in).
#[test]
fn traced_run_produces_coherent_spans() {
    let server = Server::start(&demo_graph(), traced_config()).unwrap();
    let tickets: Vec<_> = (0..50)
        .map(|i| {
            let priority = if i % 2 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]).priority(priority))
                .unwrap()
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let spans = server.trace_spans();
    assert_eq!(spans.len(), 50, "one span per served request");
    for span in &spans {
        assert!(span.is_monotonic(), "stage timestamps regressed: {span}");
        assert_eq!(
            span.stage_sum_us(),
            span.end_to_end_us(),
            "stages must account for the whole latency: {span}"
        );
        assert_eq!(span.outcome, SpanOutcome::Ok);
        assert!(span.batch >= 1 && span.batch <= 4, "{span}");
        assert_eq!(span.retries, 0);
        assert_eq!(span.model, 0, "single-model gateway: dense id 0");
        assert!(span.priority <= 1, "only High (0) and Normal (1) submitted");
    }
    assert!(
        spans.iter().any(|s| s.priority == 0) && spans.iter().any(|s| s.priority == 1),
        "both priority classes appear in the trace"
    );
    let breakdown = StageBreakdown::of(&spans);
    assert_eq!(breakdown.spans, 50);
    assert_eq!(breakdown.end_to_end_us.count, 50);
    let m = server.shutdown();
    assert!(m.accounted_for());
    assert_eq!(m.queue_depth, 0, "queue drained");
    assert_eq!(m.inflight, 0, "no request left executing");
    assert!(m.queue_hwm >= 1, "high-water mark saw the burst");
}

#[test]
fn expired_requests_get_timed_out_spans() {
    let server = Server::start(&demo_graph(), traced_config()).unwrap();
    let past = Instant::now() - Duration::from_millis(1);
    let live = server
        .submit_request(SubmitRequest::new(vec![demo_input(1)]))
        .unwrap();
    let dead = server
        .submit_request(SubmitRequest::new(vec![demo_input(2)]).deadline(past))
        .unwrap();
    assert!(live.wait().is_ok());
    assert_eq!(
        dead.wait().unwrap_err(),
        vedliot_serve::ServeError::DeadlineExceeded
    );
    let spans = server.trace_spans();
    let timed_out: Vec<_> = spans
        .iter()
        .filter(|s| s.outcome == SpanOutcome::TimedOut)
        .collect();
    assert_eq!(timed_out.len(), 1);
    let span = timed_out[0];
    // A request purged in-queue never executed: its whole lifetime is
    // queue wait, and the accounting identity still holds exactly.
    assert!(span.is_monotonic(), "{span}");
    assert_eq!(span.stage_sum_us(), span.end_to_end_us());
    assert_eq!(span.execute_us(), 0);
    let m = server.shutdown();
    assert_eq!(m.timed_out, 1);
    assert!(m.accounted_for());
    assert_eq!((m.queue_depth, m.inflight), (0, 0));
}

#[test]
fn tracing_disabled_records_nothing() {
    let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
    let out = server
        .submit_request(SubmitRequest::new(vec![demo_input(3)]))
        .unwrap()
        .wait();
    assert!(out.is_ok());
    assert!(server.trace_spans().is_empty());
    let m = server.shutdown();
    // The gauges still work without tracing.
    assert_eq!((m.queue_depth, m.inflight), (0, 0));
    assert!(m.queue_hwm >= 1);
}

/// A deterministic snapshot, identical on every run and platform, so
/// the exporter goldens pin exact bytes.
fn deterministic_snapshot() -> MetricsSnapshot {
    let latency = Histogram::new();
    for us in [100u64, 200, 400, 800, 1600, 3200] {
        latency.record(us);
    }
    MetricsSnapshot {
        submitted: 10,
        served: 6,
        rejected: 1,
        timed_out: 2,
        failed: 1,
        submitted_by_priority: [3, 5, 2],
        served_by_priority: [3, 3, 0],
        shed_by_priority: [0, 0, 1],
        batches: 2,
        mean_batch: 3.0,
        p50_latency_us: 384,
        p99_latency_us: 3072,
        latency_us: latency.snapshot(),
        queue_depth: 0,
        queue_hwm: 5,
        inflight: 0,
        panics_absorbed: 1,
        worker_crashes: 0,
        respawned: 0,
        retries: 2,
        quarantined: 1,
        golden_mismatches: 0,
    }
}

/// Rewrites the golden under `UPDATE_GOLDENS=1` instead of comparing,
/// so intentional exporter changes are blessed with one rerun.
fn check_golden(relative: &str, pinned: &str, actual: &str) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let path = format!("{}/tests/{relative}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, actual).unwrap();
        return;
    }
    assert_eq!(
        actual.trim_end(),
        pinned.trim_end(),
        "exporter output drifted from {relative}; rerun with UPDATE_GOLDENS=1 to bless"
    );
}

#[test]
fn exporter_json_matches_golden() {
    check_golden(
        "goldens/serve_metrics.json",
        include_str!("goldens/serve_metrics.json"),
        &deterministic_snapshot().export().to_json(),
    );
}

#[test]
fn exporter_prometheus_matches_golden() {
    check_golden(
        "goldens/serve_metrics.prom",
        include_str!("goldens/serve_metrics.prom"),
        &deterministic_snapshot().export().to_prometheus(),
    );
}

#[test]
fn labelled_export_tags_the_tenant() {
    let prom = deterministic_snapshot()
        .labelled_export("alpha")
        .to_prometheus();
    assert!(
        prom.contains("vedliot_serve_served{model=\"alpha\"} 6\n"),
        "{prom}"
    );
    assert!(prom.contains("vedliot_serve_shed_by_priority{model=\"alpha\",priority=\"batch\"} 1\n"));
}
