// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! The chaos-injection harness: seeded fault schedules driven through
//! the real server, asserting the fault-tolerance contract end to end.
//!
//! Every test here uses a fixed [`FaultPlan`] seed, so a failure is
//! replayable bit-for-bit. The contract under test:
//!
//! * injected panics are absorbed at the isolation boundary — the
//!   worker pool survives and the batch is retried;
//! * hard worker kills are absorbed by supervision — every crashed
//!   worker is respawned while the budget lasts;
//! * poisoned requests are bisected out of their batches — neighbours
//!   are served, only the poison fails, as [`ServeError::Quarantined`];
//! * golden-check divergence (startup weight bit flips) is detected and
//!   repaired from the uncorrupted copy;
//! * through all of it, `accounted_for()` holds: every submission gets
//!   exactly one reply and lands in exactly one metrics bucket.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use vedliot_nnir::exec::{RunOptions, Runner};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};
use vedliot_serve::{
    BatchPolicy, FaultPlan, GoldenPolicy, Health, ResilienceConfig, ServeConfig, ServeError,
    Server, SubmitRequest,
};

fn demo_graph() -> Graph {
    zoo::tiny_cnn("chaos-it", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
}

fn demo_input(seed: u64) -> Tensor {
    Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
}

/// Silences the panic hook for injected chaos panics (they are expected
/// by the hundreds and would drown the test output), delegating every
/// real panic to the default hook untouched.
fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.starts_with("chaos:") {
                default_hook(info);
            }
        }));
    });
}

/// The seeded 200-request chaos smoke (wired into ci.sh): soft panics,
/// hard worker kills and poisoned requests, all injected from one fixed
/// seed — availability must stay at or above 0.95 and nothing may leak.
#[test]
fn smoke_200_requests_under_seeded_chaos() {
    silence_chaos_panics();
    let requests: u64 = 200;
    let config = ServeConfig::builder()
        .queue_capacity(256)
        .workers(2)
        .batch(BatchPolicy {
            max_batch: 4,
            max_linger: Duration::from_micros(200),
        })
        .resilience(ResilienceConfig {
            respawn_budget: 32,
            ..ResilienceConfig::default()
        })
        .chaos(FaultPlan {
            seed: 0xC0FF_EE00,
            panic_per_batch: 0.20,
            kill_per_wakeup: 0.05,
            poison_every: 50,
            weight_bit_flips: 0,
        })
        .build()
        .unwrap();
    let server = Server::start(&demo_graph(), config).unwrap();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]))
                .unwrap()
        })
        .collect();
    let mut ok = 0u64;
    let mut quarantined = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                assert_eq!(out[0].shape(), &Shape::nf(1, 3));
                ok += 1;
            }
            Err(ServeError::Quarantined { .. }) => quarantined += 1,
            Err(other) => panic!("unexpected terminal error under chaos: {other}"),
        }
    }
    let m = server.shutdown();
    let availability = ok as f64 / requests as f64;
    assert!(
        availability >= 0.95,
        "availability {availability} under seeded chaos (served {ok}/{requests})"
    );
    assert!(m.accounted_for(), "a submission leaked: {m:?}");
    assert_eq!(m.submitted, requests);
    assert_eq!(m.served, ok);
    assert_eq!(m.failed, quarantined, "only poisoned requests may fail");
    assert_eq!(m.quarantined, quarantined);
    assert!(
        m.quarantined >= 1,
        "poison_every=50 over 200 requests quarantines"
    );
    assert!(m.panics_absorbed > 0, "soft panics were injected: {m:?}");
    assert!(m.retries > 0, "absorbed panics trigger retries: {m:?}");
    assert_eq!(
        m.respawned, m.worker_crashes,
        "every crashed worker is respawned within budget: {m:?}"
    );
}

/// Satellite: golden-check verdicts are wired into serve metrics, and
/// with `repair` the served bytes are the *clean* model's bytes even
/// though the deployed graphs took startup weight bit flips.
#[test]
fn golden_check_detects_and_repairs_bit_flipped_deployment() {
    let graph = demo_graph();
    let requests: u64 = 16;
    let config = ServeConfig::builder()
        .queue_capacity(32)
        .batch(BatchPolicy {
            max_batch: 4,
            max_linger: Duration::from_micros(200),
        })
        .golden(GoldenPolicy {
            period: 1,
            tolerance: 1e-4,
            repair: true,
        })
        .chaos(FaultPlan {
            weight_bit_flips: 40,
            ..FaultPlan::quiet(0xBAD_5EED)
        })
        .build()
        .unwrap();
    let server = Server::start(&graph, config).unwrap();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]))
                .unwrap()
        })
        .collect();
    let clean = Runner::builder().build(&graph).unwrap();
    let mut clean = clean;
    for (i, t) in tickets.into_iter().enumerate() {
        let served = t.wait().unwrap();
        let solo = clean
            .execute(
                std::slice::from_ref(&demo_input(i as u64)),
                RunOptions::default(),
            )
            .unwrap()
            .into_outputs();
        assert_eq!(served, solo, "request {i} was not repaired to clean bytes");
    }
    let m = server.shutdown();
    assert!(m.accounted_for());
    assert_eq!(m.served, requests);
    assert!(
        m.golden_mismatches > 0,
        "40 weight bit flips must diverge at least one output: {m:?}"
    );
}

/// Without `repair` the mismatch counter still fires but the corrupted
/// bytes are served as-is — detection and repair are separable.
#[test]
fn golden_check_detect_only_serves_corrupted_bytes() {
    let graph = demo_graph();
    let config = ServeConfig::builder()
        .golden(GoldenPolicy {
            period: 1,
            tolerance: 1e-4,
            repair: false,
        })
        .chaos(FaultPlan {
            weight_bit_flips: 40,
            ..FaultPlan::quiet(0xBAD_5EED)
        })
        .build()
        .unwrap();
    let server = Server::start(&graph, config).unwrap();
    let served = server
        .submit_request(SubmitRequest::new(vec![demo_input(7)]))
        .unwrap()
        .wait()
        .unwrap();
    let solo = Runner::builder()
        .build(&graph)
        .unwrap()
        .execute(std::slice::from_ref(&demo_input(7)), RunOptions::default())
        .unwrap()
        .into_outputs();
    let m = server.shutdown();
    if m.golden_mismatches > 0 {
        assert_ne!(served, solo, "detect-only must not rewrite the reply");
    } else {
        assert_eq!(served, solo, "no divergence, no difference");
    }
    assert!(m.accounted_for());
}

/// A queue-full burst while degraded: depth-based degradation flips
/// health, normal-class admission tightens to the shed bound, and with
/// nothing lower-priority queued to displace the burst is shed.
#[test]
fn degraded_queue_depth_sheds_bursts() {
    let config = ServeConfig::builder()
        .queue_capacity(8)
        .batch(BatchPolicy {
            max_batch: 64,
            max_linger: Duration::from_secs(30),
        })
        .resilience(ResilienceConfig {
            degraded_queue_fraction: 0.5,
            shed_to: 0.5,
            ..ResilienceConfig::default()
        })
        .build()
        .unwrap();
    let server = Server::start(&demo_graph(), config).unwrap();
    assert_eq!(server.health(), Health::Serving);
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit_request(SubmitRequest::new(vec![demo_input(i)]))
                .unwrap()
        })
        .collect();
    // Depth 4 of 8 crossed the 0.5 degradation fraction…
    assert_eq!(server.health(), Health::Degraded);
    // …so normal-class admission tightens to ceil(0.5 * 8) = 4 slots,
    // and with only normal work queued there is no lower class to
    // displace: the burst is shed.
    let err = server
        .submit_request(SubmitRequest::new(vec![demo_input(99)]))
        .unwrap_err();
    assert_eq!(err, ServeError::ShedLowPriority);
    let m = {
        let handle = std::thread::spawn(move || server.shutdown());
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        handle.join().unwrap()
    };
    assert!(m.accounted_for());
    assert_eq!((m.served, m.rejected), (4, 1));
    assert_eq!(
        m.shed_by_priority,
        [0, 1, 0],
        "the shed burst was normal-class"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: `Ticket::wait_timeout` orphan semantics under random
    /// fault/timeout schedules. A caller that gives up and drops its
    /// ticket must never panic a worker or corrupt the accounting
    /// partition — the orphaned request still lands in exactly one
    /// metrics bucket.
    #[test]
    fn orphaned_tickets_never_corrupt_accounting(
        chaos_seed in 0u64..1_000_000,
        panic_rate in 0.0f64..0.4,
        kill_rate in 0.0f64..0.08,
        poison_every in 0u64..20,
        n_requests in 4u64..24,
        timeout_us in proptest::collection::vec(0u64..3000, 24),
        deadline_us in proptest::collection::vec(0u64..5000, 24),
    ) {
        silence_chaos_panics();
        let config = ServeConfig::builder()
            .queue_capacity(32)
            .workers(2)
            .batch(BatchPolicy {
                max_batch: 4,
                max_linger: Duration::from_micros(100),
            })
            .resilience(ResilienceConfig {
                respawn_budget: 64,
                ..ResilienceConfig::default()
            })
            .chaos(FaultPlan {
                seed: chaos_seed,
                panic_per_batch: panic_rate,
                kill_per_wakeup: kill_rate,
                poison_every,
                weight_bit_flips: 0,
            })
            .build()
            .unwrap();
        let server = Server::start(&demo_graph(), config).unwrap();
        let now = Instant::now();
        let tickets: Vec<_> = (0..n_requests)
            .map(|i| {
                // Draws below 1000 mean "no deadline"; everything else
                // is a tight deadline — the deadline-storm case.
                let request = SubmitRequest::new(vec![demo_input(i)]);
                let request = match deadline_us[i as usize] {
                    us if us < 1000 => request,
                    us => request.deadline(now + Duration::from_micros(us)),
                };
                server.submit_request(request).unwrap()
            })
            .collect();
        // Impatient callers: some tickets get a tiny timeout and are
        // dropped (orphaned) when it expires; the server must absorb
        // the orphan silently.
        for (i, t) in tickets.into_iter().enumerate() {
            let _ = t.wait_timeout(Duration::from_micros(timeout_us[i]));
        }
        let m = server.shutdown();
        prop_assert!(m.accounted_for(), "accounting broke: {m:?}");
        prop_assert_eq!(m.submitted, n_requests);
        prop_assert_eq!(m.rejected, 0);
        prop_assert_eq!(
            m.respawned, m.worker_crashes,
            "budget 64 covers every crash: {:?}", m
        );
    }
}
