// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Burn-rate SLO integration: a closed-loop incident drives the
//! availability objective through fire → burn-driven degraded shedding
//! → clear, every shed chains back to the alert that caused it, and
//! the whole episode replays deterministically.

use std::time::{Duration, Instant};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};
use vedliot_serve::{
    BatchPolicy, BurnWindows, CauseId, Event, EventKind, Health, JournalPolicy, Priority,
    ServeConfig, ServeError, Server, SloPolicy, SloTransition, SubmitRequest,
};

fn demo_graph() -> Graph {
    zoo::tiny_cnn("slo-test", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
}

fn demo_input(seed: u64) -> Tensor {
    Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
}

/// Journal + burn-driven SLO, sequential batching (closed loop submits
/// one request at a time, so the submission-seq clock advances
/// deterministically).
fn slo_config() -> ServeConfig {
    ServeConfig::builder()
        .queue_capacity(64)
        .workers(1)
        .batch(BatchPolicy {
            max_batch: 1,
            max_linger: Duration::from_micros(0),
        })
        .journal(JournalPolicy { capacity: 1024 })
        .slo(SloPolicy {
            availability: Some(0.9),
            p99_max_us: None,
            windows: BurnWindows {
                short: 10,
                long: 40,
                threshold: 2.0,
            },
            drive_health: true,
        })
        .build()
        .unwrap()
}

/// The scripted incident: 40 healthy requests, 20 deadline-expired
/// failures (enough to burn both windows past 2×), one shed probe
/// while degraded, 120 healthy requests to clear. Returns everything a
/// caller needs to assert on — including the full journal with
/// timestamps zeroed, so two runs are comparable bit-for-bit.
struct Episode {
    fired: Vec<SloTransition>,
    cleared: Vec<SloTransition>,
    degraded_health: Health,
    recovered_health: Health,
    shed_err: ServeError,
    events: Vec<Event>,
    chain_kinds: Vec<EventKind>,
    slo_json: String,
}

fn run_episode() -> Episode {
    let server = Server::start(&demo_graph(), slo_config()).unwrap();
    // Phase 1: healthy traffic — seqs 1..=40, no alert.
    for i in 0..40u64 {
        server
            .submit_request(SubmitRequest::new(vec![demo_input(i)]))
            .unwrap()
            .wait()
            .unwrap();
    }
    assert!(server.evaluate_slo().is_empty(), "healthy must not fire");
    assert_eq!(server.health(), Health::Serving);
    // Phase 2: 20 requests with already-expired deadlines — seqs
    // 41..=60, each purged as a deterministic failure.
    let past = Instant::now() - Duration::from_millis(1);
    for i in 0..20u64 {
        let ticket = server
            .submit_request(SubmitRequest::new(vec![demo_input(100 + i)]).deadline(past))
            .unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
    }
    // Short window (seqs 51..=60) is all errors: burn 10×; long window
    // (21..=60) is half errors: burn 5× — both past the 2× threshold.
    let fired = server.evaluate_slo();
    let degraded_health = server.health();
    // Phase 3: burn-driven degradation closes Batch admission; the
    // shed cites the HealthDegraded event. Refusals consume no seq, so
    // the probe does not advance the SLO clock.
    let shed_err = server
        .submit_request(SubmitRequest::new(vec![demo_input(999)]).priority(Priority::Batch))
        .unwrap_err();
    // Phase 4: recovery — seqs 61..=180 healthy; the short window
    // leaves the incident behind and the alert clears.
    for i in 0..120u64 {
        server
            .submit_request(SubmitRequest::new(vec![demo_input(200 + i)]))
            .unwrap()
            .wait()
            .unwrap();
    }
    let cleared = server.evaluate_slo();
    let recovered_health = server.health();
    // The causal chain of the shed: walk upward from the RequestShed
    // event itself.
    let events = server.journal_events();
    let shed_seq = events
        .iter()
        .find(|e| e.kind == EventKind::RequestShed)
        .map(|e| e.seq)
        .unwrap();
    let chain_kinds = server
        .journal_chain(CauseId::event(shed_seq))
        .iter()
        .map(|e| e.kind)
        .collect();
    let slo_json = server.slo_export().unwrap().to_json();
    server.shutdown();
    Episode {
        fired,
        cleared,
        degraded_health,
        recovered_health,
        shed_err,
        // Timestamps are wall-clock; zero them so runs compare on the
        // causal structure alone.
        events: events
            .into_iter()
            .map(|mut e| {
                e.at = 0;
                e
            })
            .collect(),
        chain_kinds,
        slo_json,
    }
}

#[test]
fn burn_alert_drives_degraded_shedding_and_clears() {
    let ep = run_episode();
    assert_eq!(ep.fired.len(), 1, "one availability fire");
    assert!(ep.fired[0].fired);
    assert!(ep.fired[0].burn.short >= 2.0 && ep.fired[0].burn.long >= 2.0);
    assert_eq!(ep.degraded_health, Health::Degraded, "burn drives health");
    assert_eq!(ep.shed_err, ServeError::ShedLowPriority);
    assert_eq!(ep.cleared.len(), 1, "one clear after recovery");
    assert!(!ep.cleared[0].fired);
    assert_eq!(ep.recovered_health, Health::Serving);
}

#[test]
fn shed_chains_back_to_the_alert_and_accounting_is_exact() {
    let ep = run_episode();
    // The chain tells the whole story: shed <- degraded <- alert.
    assert!(ep.chain_kinds.contains(&EventKind::RequestShed));
    assert!(ep.chain_kinds.contains(&EventKind::HealthDegraded));
    assert!(ep.chain_kinds.contains(&EventKind::SloAlertFired));
    let count = |kind: EventKind| ep.events.iter().filter(|e| e.kind == kind).count();
    // Exact causal accounting: every admission, failure and shed is a
    // journal event, with zero orphans.
    assert_eq!(count(EventKind::RequestAdmitted), 180, "40 + 20 + 120");
    assert_eq!(count(EventKind::RequestShed), 1, "the degraded probe");
    assert_eq!(count(EventKind::HealthDegraded), 1);
    assert_eq!(count(EventKind::HealthRecovered), 1);
    assert_eq!(count(EventKind::SloAlertFired), 1);
    assert_eq!(count(EventKind::SloAlertCleared), 1);
    assert_eq!(count(EventKind::ModelLoaded), 1);
    // The shed cites the degradation, which cites the alert.
    let shed = ep
        .events
        .iter()
        .find(|e| e.kind == EventKind::RequestShed)
        .unwrap();
    let degraded = ep
        .events
        .iter()
        .find(|e| e.kind == EventKind::HealthDegraded)
        .unwrap();
    let alert = ep
        .events
        .iter()
        .find(|e| e.kind == EventKind::SloAlertFired)
        .unwrap();
    assert_eq!(shed.cause, CauseId::event(degraded.seq));
    assert_eq!(degraded.cause, CauseId::event(alert.seq));
}

/// The episode replays bit-deterministically: the SLO clock is the
/// submission seq, evaluation happens only at explicit calls, and the
/// journal's causal structure (everything but wall timestamps) is a
/// pure function of the request order.
#[test]
fn the_episode_is_deterministic_under_replay() {
    let (a, b) = (run_episode(), run_episode());
    assert_eq!(a.events, b.events);
    assert_eq!(a.chain_kinds, b.chain_kinds);
    assert_eq!(a.slo_json, b.slo_json, "seq-clocked engine state");
    assert_eq!(
        a.fired[0].burn.short.to_bits(),
        b.fired[0].burn.short.to_bits()
    );
    assert_eq!(
        a.fired[0].burn.long.to_bits(),
        b.fired[0].burn.long.to_bits()
    );
}

#[test]
fn slo_disabled_is_inert() {
    let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
    server
        .submit_request(SubmitRequest::new(vec![demo_input(7)]))
        .unwrap()
        .wait()
        .unwrap();
    assert!(server.evaluate_slo().is_empty());
    assert!(server.slo_states().is_empty());
    assert!(server.slo_export().is_none());
    assert!(server.journal_events().is_empty());
    let m = server.shutdown();
    assert!(m.accounted_for());
}
