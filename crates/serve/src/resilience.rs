//! Fault-tolerance policies and the chaos-injection test hook.
//!
//! Paper §IV-B treats systematic run-time faults — SEUs, sensor faults,
//! attacks — striking DL execution on edge nodes as a first-class
//! concern. This module is the serving layer's answer: the knobs that
//! decide how a [`Server`](crate::Server) survives those faults
//! ([`ResilienceConfig`]), the bounded-backoff retry schedule
//! ([`RetryPolicy`]), the externally observable health state
//! ([`Health`]) and a seeded [`FaultPlan`] that *injects* the same
//! fault classes deterministically so every recovery path is testable
//! (the chaos harness: `tests/chaos.rs`, experiment E22).
//!
//! Everything here is deterministic given a seed: chaos draws come from
//! a splitmix64 stream, so a failing schedule is replayable bit-for-bit.

use std::time::Duration;

/// Bounded exponential backoff for transient batch failures.
///
/// Attempt `k` (1-based) sleeps `base_delay * 2^(k-1)`, capped at
/// `max_delay`; with `jitter` the sleep is scaled by a deterministic
/// factor in `[0.5, 1.0)` so co-failing workers decorrelate. The
/// request deadline always wins: the server truncates any backoff sleep
/// to the earliest remaining deadline in the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total execution attempts per batch (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Whether to apply deterministic jitter to each sleep.
    pub jitter: bool,
}

impl RetryPolicy {
    /// No retries: every failure is final on the first attempt.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        }
    }

    /// The backoff sleep after `attempt` failed attempts (1-based).
    /// `salt` seeds the jitter so concurrent retriers spread out.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay);
        if !self.jitter || raw.is_zero() {
            return raw;
        }
        // Deterministic factor in [0.5, 1.0).
        let factor = 0.5 + 0.5 * unit_draw(splitmix64(salt ^ u64::from(attempt) ^ JITTER_SALT));
        raw.mul_f64(factor)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(5),
            jitter: true,
        }
    }
}

/// How the server reacts to faults. The default enables every recovery
/// feature; [`ResilienceConfig::disabled`] is the pre-fault-tolerance
/// baseline (used as the control arm of experiment E22).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Catch panics at the batch boundary and convert them to
    /// [`ServeError::WorkerCrashed`](crate::ServeError::WorkerCrashed)
    /// instead of letting the worker thread die with its batch.
    pub isolate_panics: bool,
    /// Retry schedule for transiently failing batches.
    pub retry: RetryPolicy,
    /// Bisect deterministically failing batches to isolate poisoned
    /// requests ([`ServeError::Quarantined`](crate::ServeError::Quarantined))
    /// instead of failing all co-batched requests.
    pub quarantine: bool,
    /// How many crashed worker threads the supervisor may respawn over
    /// the server's lifetime before it stops replacing them.
    pub respawn_budget: u32,
    /// Worker crashes at or above this count flip health to
    /// [`Health::Degraded`].
    pub degraded_crash_threshold: u64,
    /// Queue depth at or above this fraction of capacity flips health
    /// to [`Health::Degraded`]. `1.0` disables depth-based degradation
    /// (the door already rejects at full capacity).
    pub degraded_queue_fraction: f64,
    /// While degraded the server sheds load: submissions are admitted
    /// only up to `shed_to * queue_capacity` queued requests.
    pub shed_to: f64,
}

impl ResilienceConfig {
    /// Every recovery feature off — the crash-amplifying baseline:
    /// panics kill workers (and their batches), nothing is retried,
    /// a poisoned request fails its whole batch, dead workers stay
    /// dead.
    #[must_use]
    pub fn disabled() -> Self {
        ResilienceConfig {
            isolate_panics: false,
            retry: RetryPolicy::none(),
            quarantine: false,
            respawn_budget: 0,
            degraded_crash_threshold: u64::MAX,
            degraded_queue_fraction: 1.0,
            shed_to: 1.0,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), crate::ServeError> {
        if self.retry.max_attempts == 0 {
            return Err(crate::ServeError::InvalidConfig(
                "retry.max_attempts must be at least 1".into(),
            ));
        }
        for (name, v) in [
            ("degraded_queue_fraction", self.degraded_queue_fraction),
            ("shed_to", self.shed_to),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(crate::ServeError::InvalidConfig(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            isolate_panics: true,
            retry: RetryPolicy::default(),
            quarantine: true,
            respawn_budget: 4,
            degraded_crash_threshold: 16,
            degraded_queue_fraction: 1.0,
            shed_to: 0.5,
        }
    }
}

/// Externally observable server health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Normal operation.
    Serving,
    /// Crash count or queue depth crossed its threshold — or, with
    /// [`SloPolicy::drive_health`](crate::SloPolicy), an SLO burn
    /// alert is firing; the server keeps answering but sheds load at
    /// the door (see [`ResilienceConfig::shed_to`]).
    Degraded,
    /// Shutdown has begun: queued requests drain, new ones are refused.
    Draining,
}

/// A seeded schedule of injected faults — the chaos-injection test
/// hook, threaded through [`ServeConfig::chaos`](crate::ServeConfig).
///
/// `None` (the default) compiles the hooks out of the hot path at the
/// branch level; a plan with all rates zero is equally inert. The fault
/// classes mirror paper §IV-B:
///
/// * **weight bit flips** (SEU/rowhammer): applied once at startup to
///   the *deployed* batch-compiled graphs via
///   `vedliot_safety::inject::flip_weight_bits`; a golden-check policy
///   ([`GoldenPolicy`](crate::GoldenPolicy)) holds the uncorrupted copy,
/// * **worker panics**: soft panics inside the execution boundary
///   (absorbed by isolation) and hard kills of whole worker threads
///   (absorbed by supervision/respawn),
/// * **poisoned requests**: every `poison_every`-th submission fails
///   any batch containing it deterministically (absorbed by
///   quarantine bisection).
///
/// Deadline storms and queue-full bursts are client-side behaviours;
/// the chaos tests and experiment E22 generate them from the same seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that one execution attempt panics inside the
    /// isolation boundary (a soft error in control logic).
    pub panic_per_batch: f64,
    /// Probability per worker wakeup that the worker thread is killed
    /// outright (panic outside the isolation boundary, no batch held).
    pub kill_per_wakeup: f64,
    /// Every `poison_every`-th submitted request (1-based) is poisoned:
    /// any batch containing it fails deterministically. `0` disables.
    pub poison_every: u64,
    /// Weight bits flipped in the deployed graphs at startup. The
    /// golden copy used by [`GoldenPolicy`](crate::GoldenPolicy) is
    /// taken *before* the flips, so divergence is detectable.
    pub weight_bit_flips: usize,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for struct update
    /// syntax in tests).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_per_batch: 0.0,
            kill_per_wakeup: 0.0,
            poison_every: 0,
            weight_bit_flips: 0,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), crate::ServeError> {
        for (name, v) in [
            ("panic_per_batch", self.panic_per_batch),
            ("kill_per_wakeup", self.kill_per_wakeup),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(crate::ServeError::InvalidConfig(format!(
                    "chaos {name} must be a probability in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

const PANIC_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const KILL_SALT: u64 = 0xbf58_476d_1ce4_e5b9;
const JITTER_SALT: u64 = 0x94d0_49bb_1331_11eb;

/// Live chaos state: the plan plus the tick counters that advance the
/// deterministic fault stream. Shared by all workers.
#[derive(Debug)]
pub(crate) struct ChaosState {
    plan: FaultPlan,
    exec_ticks: std::sync::atomic::AtomicU64,
    wake_ticks: std::sync::atomic::AtomicU64,
}

impl ChaosState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        ChaosState {
            plan,
            exec_ticks: std::sync::atomic::AtomicU64::new(0),
            wake_ticks: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Draws the next soft-panic decision (one per execution attempt).
    pub(crate) fn panic_now(&self) -> bool {
        let t = self
            .exec_ticks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unit_draw(splitmix64(self.plan.seed ^ PANIC_SALT ^ t)) < self.plan.panic_per_batch
    }

    /// Draws the next hard worker-kill decision (one per wakeup).
    pub(crate) fn kill_now(&self) -> bool {
        let t = self
            .wake_ticks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unit_draw(splitmix64(self.plan.seed ^ KILL_SALT ^ t)) < self.plan.kill_per_wakeup
    }

    /// Whether submission `seq` (1-based) is a poisoned request.
    pub(crate) fn poisoned(&self, seq: u64) -> bool {
        seq > 0 && self.plan.poison_every > 0 && seq.is_multiple_of(self.plan.poison_every)
    }
}

// The chaos streams draw from the workspace-wide deterministic RNG
// substrate (one shared splitmix64, not a per-crate copy); the streams
// are unchanged, so every recorded chaos schedule replays identically.
pub(crate) use vedliot_nnir::det::splitmix64;
use vedliot_nnir::det::unit_draw;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(6),
            jitter: false,
        };
        assert_eq!(p.backoff(1, 0), Duration::from_millis(1));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(2));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(4));
        // Capped, and immune to shift overflow at silly attempt counts.
        assert_eq!(p.backoff(4, 0), Duration::from_millis(6));
        assert_eq!(p.backoff(63, 0), Duration::from_millis(6));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            jitter: true,
            ..RetryPolicy::default()
        };
        let a = p.backoff(2, 42);
        let b = p.backoff(2, 42);
        let c = p.backoff(2, 43);
        assert_eq!(a, b, "same salt, same sleep");
        assert_ne!(a, c, "different salt decorrelates");
        let raw = p.base_delay * 2;
        assert!(a >= raw / 2 && a < raw);
    }

    #[test]
    fn none_policy_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff(1, 7), Duration::ZERO);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let chaos = ChaosState::new(FaultPlan::quiet(9));
        for seq in 1..=1000u64 {
            assert!(!chaos.panic_now());
            assert!(!chaos.kill_now());
            assert!(!chaos.poisoned(seq));
        }
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let plan = FaultPlan {
            panic_per_batch: 0.3,
            kill_per_wakeup: 0.2,
            poison_every: 7,
            ..FaultPlan::quiet(1234)
        };
        let a = ChaosState::new(plan);
        let b = ChaosState::new(plan);
        let draws_a: Vec<bool> = (0..200).map(|_| a.panic_now()).collect();
        let draws_b: Vec<bool> = (0..200).map(|_| b.panic_now()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&x| x), "0.3 over 200 draws fires");
        assert!(!draws_a.iter().all(|&x| x));
        assert!(a.poisoned(7) && a.poisoned(14) && !a.poisoned(8));
        assert!(!a.poisoned(0), "seq is 1-based; 0 is never poisoned");
    }

    #[test]
    fn disabled_config_turns_everything_off() {
        let c = ResilienceConfig::disabled();
        assert!(!c.isolate_panics);
        assert!(!c.quarantine);
        assert_eq!(c.respawn_budget, 0);
        assert_eq!(c.retry.max_attempts, 1);
        c.validate().unwrap();
        ResilienceConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        let bad = FaultPlan {
            panic_per_batch: 1.5,
            ..FaultPlan::quiet(0)
        };
        assert!(bad.validate().is_err());
        let bad_shed = ResilienceConfig {
            shed_to: 0.0,
            ..ResilienceConfig::default()
        };
        assert!(bad_shed.validate().is_err());
        let bad_retry = ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..ResilienceConfig::default()
        };
        assert!(bad_retry.validate().is_err());
    }
}
