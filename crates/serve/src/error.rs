//! Typed serving errors.
//!
//! Every way a request can fail to produce an output is a distinct
//! variant — the serving contract is that no request is ever silently
//! dropped, so callers can always distinguish "the queue was full" from
//! "you were too late" from "the model itself failed".

use std::fmt;
use vedliot_nnir::NnirError;

/// Error returned by the serving front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue was full; the request was rejected
    /// at the door (backpressure, not loss).
    Rejected {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline expired before a worker started executing
    /// it. The request was purged from the queue, never run.
    DeadlineExceeded,
    /// The server is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The [`ServeConfig`](crate::ServeConfig) is unusable.
    InvalidConfig(String),
    /// The submitted inputs do not match the model's single-sample
    /// input signature.
    InvalidInput(String),
    /// The underlying batched forward pass failed.
    Execution(NnirError),
    /// The server dropped the reply channel without answering — only
    /// possible if a worker thread panicked.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before execution")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidConfig(detail) => write!(f, "invalid serve config: {detail}"),
            ServeError::InvalidInput(detail) => write!(f, "invalid request input: {detail}"),
            ServeError::Execution(e) => write!(f, "batched execution failed: {e}"),
            ServeError::Disconnected => write!(f, "server dropped the reply channel"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NnirError> for ServeError {
    fn from(e: NnirError) -> Self {
        ServeError::Execution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            ServeError::Rejected { capacity: 8 }.to_string(),
            ServeError::DeadlineExceeded.to_string(),
            ServeError::ShuttingDown.to_string(),
            ServeError::InvalidConfig("zero workers".into()).to_string(),
        ];
        assert!(msgs[0].contains("capacity 8"));
        assert!(msgs[1].contains("deadline"));
        assert!(msgs[2].contains("shutting down"));
        assert!(msgs[3].contains("zero workers"));
    }

    #[test]
    fn nnir_errors_convert() {
        let e: ServeError = NnirError::DeadlineExceeded.into();
        assert_eq!(e, ServeError::Execution(NnirError::DeadlineExceeded));
    }
}
