//! Typed serving errors.
//!
//! Every way a request can fail to produce an output is a distinct
//! variant — the serving contract is that no request is ever silently
//! dropped, so callers can always distinguish "the queue was full" from
//! "you were too late" from "the model itself failed".
//!
//! Each error also carries a retry classification
//! ([`ServeError::class`]): transient failures (a crashed worker, a
//! full queue) may succeed when retried, permanent ones (a poisoned
//! input, an expired deadline) never will. The resilience layer in
//! [`crate::resilience`] keys every retry/quarantine decision off this
//! single bit.

use std::fmt;
use vedliot_nnir::{ErrorClass, NnirError};

/// Error returned by the serving front-end.
///
/// Marked `#[non_exhaustive]`: fault-tolerance work adds failure
/// variants over time, and downstream matches must keep a wildcard arm
/// (the Display strings of existing variants are covenanted stable —
/// see the `display_strings_are_stable` test).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded submission queue was full; the request was rejected
    /// at the door (backpressure, not loss).
    Rejected {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline expired before a worker started executing
    /// it. The request was purged from the queue, never run.
    DeadlineExceeded,
    /// The server is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The [`ServeConfig`](crate::ServeConfig) is unusable.
    InvalidConfig(String),
    /// The submitted inputs do not match the model's single-sample
    /// input signature.
    InvalidInput(String),
    /// The underlying batched forward pass failed.
    Execution(NnirError),
    /// The server dropped the reply channel without answering — only
    /// possible if a worker thread died outside panic isolation.
    Disconnected,
    /// A worker panicked while executing the batch. The panic was
    /// absorbed by the isolation boundary; the batch is retryable.
    WorkerCrashed {
        /// The panic payload, best-effort stringified.
        detail: String,
    },
    /// This request was isolated by batch bisection as the
    /// deterministic cause of repeated batch failures, and only it was
    /// failed — its co-batched neighbours were served.
    Quarantined {
        /// Display form of the underlying deterministic failure.
        detail: String,
    },
    /// The request named a model key that is not loaded in the gateway
    /// registry.
    UnknownModel {
        /// The model key the request asked for.
        model: String,
    },
    /// The model's share of the gateway queue is exhausted; admitting
    /// this request would let one tenant starve the others.
    QuotaExceeded {
        /// The per-model queue quota that was exhausted.
        quota: usize,
    },
    /// The request was shed by priority-class admission: either it was
    /// evicted from the queue to make room for strictly-higher-priority
    /// work, or it arrived while degraded admission had closed (or
    /// shrunk) its class and nothing lower-priority could be displaced
    /// instead.
    ShedLowPriority,
}

impl ServeError {
    /// Classifies the error for retry decisions (see
    /// [`ErrorClass`]).
    ///
    /// Transient: [`Rejected`](Self::Rejected) (queue pressure drains),
    /// [`WorkerCrashed`](Self::WorkerCrashed) (the crash may have been
    /// a soft error — an SEU, a storm — that a retry escapes),
    /// [`Disconnected`](Self::Disconnected) (a respawned worker can
    /// answer a resubmission), [`QuotaExceeded`](Self::QuotaExceeded)
    /// (the tenant's queue share drains) and
    /// [`ShedLowPriority`](Self::ShedLowPriority) (degradation passes,
    /// higher-priority pressure subsides). Everything else is
    /// deterministic for the request and permanent — including
    /// [`UnknownModel`](Self::UnknownModel): retrying a request for a
    /// model nobody loaded cannot succeed. Engine failures defer to
    /// [`NnirError::class`].
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            ServeError::Rejected { .. } | ServeError::WorkerCrashed { .. } => ErrorClass::Transient,
            ServeError::QuotaExceeded { .. } | ServeError::ShedLowPriority => ErrorClass::Transient,
            ServeError::Disconnected => ErrorClass::Transient,
            ServeError::Execution(e) => e.class(),
            _ => ErrorClass::Permanent,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before execution")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidConfig(detail) => write!(f, "invalid serve config: {detail}"),
            ServeError::InvalidInput(detail) => write!(f, "invalid request input: {detail}"),
            ServeError::Execution(e) => write!(f, "batched execution failed: {e}"),
            ServeError::Disconnected => write!(f, "server dropped the reply channel"),
            ServeError::WorkerCrashed { detail } => {
                write!(f, "worker crashed executing the batch: {detail}")
            }
            ServeError::Quarantined { detail } => {
                write!(f, "request quarantined as poisoned: {detail}")
            }
            ServeError::UnknownModel { model } => {
                write!(f, "unknown model '{model}'")
            }
            ServeError::QuotaExceeded { quota } => {
                write!(f, "per-model queue quota exhausted (quota {quota})")
            }
            ServeError::ShedLowPriority => {
                write!(f, "request shed: admission prefers higher-priority work")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NnirError> for ServeError {
    fn from(e: NnirError) -> Self {
        ServeError::Execution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Display stability covenant: these exact strings are what logs,
    /// dashboards and downstream `to_string()` matches see. Adding new
    /// fault variants (the enum is `#[non_exhaustive]` for exactly that
    /// reason) must never reword an existing variant.
    #[test]
    fn display_strings_are_stable() {
        assert_eq!(
            ServeError::Rejected { capacity: 8 }.to_string(),
            "submission queue full (capacity 8)"
        );
        assert_eq!(
            ServeError::DeadlineExceeded.to_string(),
            "request deadline expired before execution"
        );
        assert_eq!(
            ServeError::ShuttingDown.to_string(),
            "server is shutting down"
        );
        assert_eq!(
            ServeError::InvalidConfig("zero workers".into()).to_string(),
            "invalid serve config: zero workers"
        );
        assert_eq!(
            ServeError::InvalidInput("bad shape".into()).to_string(),
            "invalid request input: bad shape"
        );
        assert_eq!(
            ServeError::Execution(NnirError::DeadlineExceeded).to_string(),
            "batched execution failed: execution deadline exceeded"
        );
        assert_eq!(
            ServeError::Disconnected.to_string(),
            "server dropped the reply channel"
        );
        assert_eq!(
            ServeError::WorkerCrashed {
                detail: "chaos".into()
            }
            .to_string(),
            "worker crashed executing the batch: chaos"
        );
        assert_eq!(
            ServeError::Quarantined {
                detail: "poisoned input".into()
            }
            .to_string(),
            "request quarantined as poisoned: poisoned input"
        );
        assert_eq!(
            ServeError::UnknownModel {
                model: "lenet5".into()
            }
            .to_string(),
            "unknown model 'lenet5'"
        );
        assert_eq!(
            ServeError::QuotaExceeded { quota: 4 }.to_string(),
            "per-model queue quota exhausted (quota 4)"
        );
        assert_eq!(
            ServeError::ShedLowPriority.to_string(),
            "request shed: admission prefers higher-priority work"
        );
    }

    #[test]
    fn nnir_errors_convert() {
        let e: ServeError = NnirError::DeadlineExceeded.into();
        assert_eq!(e, ServeError::Execution(NnirError::DeadlineExceeded));
    }

    #[test]
    fn classification_partitions_transient_from_permanent() {
        assert!(ServeError::Rejected { capacity: 4 }.class().is_transient());
        assert!(ServeError::WorkerCrashed { detail: "x".into() }
            .class()
            .is_transient());
        assert!(ServeError::Disconnected.class().is_transient());
        assert!(ServeError::QuotaExceeded { quota: 2 }
            .class()
            .is_transient());
        assert!(ServeError::ShedLowPriority.class().is_transient());
        for permanent in [
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::InvalidConfig("c".into()),
            ServeError::InvalidInput("i".into()),
            ServeError::Execution(NnirError::GraphCyclic),
            ServeError::Quarantined { detail: "p".into() },
            ServeError::UnknownModel { model: "m".into() },
        ] {
            assert_eq!(permanent.class(), ErrorClass::Permanent);
        }
    }
}
