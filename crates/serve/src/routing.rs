//! Multi-tenant routing types: priority classes, the typed submit
//! request, per-model pool configuration, and the arrival-rate tracker
//! behind adaptive linger.
//!
//! The serving gateway hosts a *zoo* of models (the four VEDLIoT use
//! cases run LeNet-scale detectors up to ResNet-class networks on one
//! shared platform), so a submission names which model it wants and how
//! important it is. [`SubmitRequest`] is the one client-facing door:
//!
//! ```
//! use vedliot_serve::{Priority, SubmitRequest};
//! use vedliot_nnir::{Shape, Tensor};
//!
//! let input = Tensor::random(Shape::nchw(1, 1, 8, 8), 7, 1.0);
//! let req = SubmitRequest::new(vec![input])
//!     .model("gesture")
//!     .priority(Priority::High);
//! # let _ = req;
//! ```
//!
//! [`Priority`] orders admission: while a pool is degraded the gateway
//! sheds lowest-priority-first, and an arriving higher-priority request
//! may displace queued lower-priority work rather than be refused.
//! [`ModelConfig`] sizes one tenant's pool (workers, weighted capacity
//! share, optional hard quota, batching and fault-injection policy).

use crate::resilience::FaultPlan;
use crate::server::{BatchPolicy, GoldenPolicy};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vedliot_nnir::Tensor;

/// Request priority class. Declaration order is admission order:
/// [`Priority::High`] is never shed while strictly lower-priority work
/// remains queued in the same pool, and the batcher drains classes in
/// this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-critical traffic (the last to be shed).
    High,
    /// Ordinary interactive traffic (the default).
    #[default]
    Normal,
    /// Throughput/background traffic (the first to be shed; admission
    /// closes entirely for this class while a pool is degraded).
    Batch,
}

impl Priority {
    /// Every class, highest first — the shed order reversed.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Batch];

    /// Dense index (0 = high, 1 = normal, 2 = batch) — also the queue
    /// index inside a pool and the span `priority` code.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Stable lowercase label used by the metric exporters.
    #[must_use]
    pub fn as_label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// The class with dense index `i` (see [`Priority::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[must_use]
    pub fn from_index(i: usize) -> Priority {
        Priority::ALL[i]
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_label())
    }
}

/// A typed, buildable submission: the inputs plus where and how they
/// should run. Replaces the positional `submit(inputs, deadline)`
/// signature, which survives only as a `#[deprecated]` shim routing to
/// the default model at [`Priority::Normal`].
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    pub(crate) inputs: Vec<Tensor>,
    pub(crate) model: Option<String>,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Instant>,
}

impl SubmitRequest {
    /// A request carrying one single-sample tensor per graph input,
    /// aimed at the default model at [`Priority::Normal`] with no
    /// deadline.
    #[must_use]
    pub fn new(inputs: Vec<Tensor>) -> Self {
        SubmitRequest {
            inputs,
            model: None,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Routes the request to the model registered under `key` instead
    /// of the default model.
    #[must_use]
    pub fn model(mut self, key: impl Into<String>) -> Self {
        self.model = Some(key.into());
        self
    }

    /// Sets the priority class.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an execution deadline; a request still queued past it is
    /// purged with `ServeError::DeadlineExceeded`, never run late.
    #[must_use]
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Per-model pool configuration for [`Server::load`](crate::Server::load).
///
/// Gateway-wide policy (total queue capacity, intra-batch parallelism,
/// the resilience layers, tracing) comes from
/// [`ServeConfig`](crate::ServeConfig); this struct sizes one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Worker threads dedicated to this model's pool.
    pub workers: usize,
    /// Relative capacity share. A model with weight `w` out of a total
    /// `W` across loaded models gets a default queue quota of
    /// `max(1, w·C/W)` slots of the gateway capacity `C`.
    pub weight: u32,
    /// Hard per-model queue quota, overriding the weight-derived share.
    /// Bounds how much of the shared queue one tenant can occupy.
    pub quota: Option<usize>,
    /// Dynamic batching policy for this pool.
    pub batch: BatchPolicy,
    /// Golden-copy output checking; `None` disables it.
    pub golden: Option<GoldenPolicy>,
    /// Chaos-injection test hook scoped to this pool; `None` (the
    /// default) injects nothing.
    pub chaos: Option<FaultPlan>,
    /// Adaptive linger: track the pool's request arrival rate and close
    /// batches after roughly the time `max_batch - 1` companions need
    /// to arrive (never beyond `max_linger`), dropping to zero linger
    /// while the pool is degraded. Off by default: the fixed
    /// `max_linger` window is deterministic, which tests and
    /// latency-sensitive tenants may prefer.
    pub adaptive_linger: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            workers: 1,
            weight: 1,
            quota: None,
            batch: BatchPolicy::default(),
            golden: None,
            chaos: None,
            adaptive_linger: false,
        }
    }
}

impl ModelConfig {
    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the relative capacity weight.
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets a hard queue quota.
    #[must_use]
    pub fn quota(mut self, quota: usize) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Sets the batching policy.
    #[must_use]
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Enables golden-copy output checking.
    #[must_use]
    pub fn golden(mut self, golden: GoldenPolicy) -> Self {
        self.golden = Some(golden);
        self
    }

    /// Arms a chaos fault plan for this pool.
    #[must_use]
    pub fn chaos(mut self, chaos: FaultPlan) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Enables adaptive linger.
    #[must_use]
    pub fn adaptive_linger(mut self, on: bool) -> Self {
        self.adaptive_linger = on;
        self
    }
}

/// Sentinel for "no arrival observed yet".
const NO_ARRIVAL: u64 = u64::MAX;

/// Lock-free per-pool arrival-rate tracker driving adaptive linger.
///
/// Keeps an integer EWMA of the gap between consecutive admissions
/// (`ewma ← ewma − ewma/8 + gap/8`, i.e. α = 1/8). The suggested
/// linger is the time `max_batch − 1` companions are expected to need
/// (`ewma · (max_batch − 1)`), capped at the configured `max_linger` —
/// a fast stream closes batches early instead of burning the full
/// window, a slow stream keeps the deterministic cap. While the pool
/// is degraded the suggestion is zero: lingering for companions is a
/// luxury a distressed pool cannot afford.
#[derive(Debug)]
pub(crate) struct ArrivalRate {
    /// Microseconds (pool epoch) of the last admission; `NO_ARRIVAL`
    /// before the first.
    last_arrival_us: AtomicU64,
    ewma_gap_us: AtomicU64,
}

impl ArrivalRate {
    /// Starts with the EWMA pinned to `initial_gap` (the `max_linger`
    /// window), so an idle pool behaves exactly like fixed linger until
    /// real traffic teaches it otherwise.
    pub(crate) fn new(initial_gap: Duration) -> Self {
        ArrivalRate {
            last_arrival_us: AtomicU64::new(NO_ARRIVAL),
            ewma_gap_us: AtomicU64::new(initial_gap.as_micros() as u64),
        }
    }

    /// Records one admission at `now_us` (µs since the pool epoch).
    /// Racy by design: concurrent submitters may interleave loads and
    /// stores, which at worst smears one gap sample — the EWMA absorbs
    /// it.
    pub(crate) fn observe(&self, now_us: u64) {
        let prev = self.last_arrival_us.swap(now_us, Ordering::Relaxed);
        if prev == NO_ARRIVAL || now_us < prev {
            return;
        }
        let gap = now_us - prev;
        let ewma = self.ewma_gap_us.load(Ordering::Relaxed);
        self.ewma_gap_us
            .store(ewma - ewma / 8 + gap / 8, Ordering::Relaxed);
    }

    /// The linger window to use right now.
    pub(crate) fn suggested_linger(&self, policy: &BatchPolicy, degraded: bool) -> Duration {
        if degraded || policy.max_batch <= 1 {
            return Duration::ZERO;
        }
        let companions = (policy.max_batch - 1) as u64;
        let expected_us = self
            .ewma_gap_us
            .load(Ordering::Relaxed)
            .saturating_mul(companions);
        Duration::from_micros(expected_us).min(policy.max_linger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::Shape;

    #[test]
    fn priority_order_and_labels_are_stable() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Batch);
        assert_eq!(Priority::default(), Priority::Normal);
        for (i, p) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Priority::from_index(i), p);
        }
        assert_eq!(Priority::High.to_string(), "high");
        assert_eq!(Priority::Normal.to_string(), "normal");
        assert_eq!(Priority::Batch.to_string(), "batch");
    }

    #[test]
    fn submit_request_builder_sets_every_field() {
        let input = Tensor::random(Shape::nchw(1, 1, 4, 4), 1, 1.0);
        let deadline = Instant::now() + Duration::from_secs(1);
        let req = SubmitRequest::new(vec![input])
            .model("zoo-a")
            .priority(Priority::Batch)
            .deadline(deadline);
        assert_eq!(req.model.as_deref(), Some("zoo-a"));
        assert_eq!(req.priority, Priority::Batch);
        assert_eq!(req.deadline, Some(deadline));
        assert_eq!(req.inputs.len(), 1);
        let bare = SubmitRequest::new(vec![]);
        assert_eq!(bare.model, None);
        assert_eq!(bare.priority, Priority::Normal);
        assert_eq!(bare.deadline, None);
    }

    #[test]
    fn model_config_default_is_one_worker_weight_one() {
        let cfg = ModelConfig::default();
        assert_eq!((cfg.workers, cfg.weight, cfg.quota), (1, 1, None));
        assert!(!cfg.adaptive_linger);
        let cfg = cfg.workers(3).weight(5).quota(7).adaptive_linger(true);
        assert_eq!((cfg.workers, cfg.weight, cfg.quota), (3, 5, Some(7)));
        assert!(cfg.adaptive_linger);
    }

    #[test]
    fn fast_arrivals_shrink_the_suggested_linger() {
        let policy = BatchPolicy {
            max_batch: 8,
            max_linger: Duration::from_micros(10_000),
        };
        let rate = ArrivalRate::new(policy.max_linger);
        // Before any traffic the suggestion is the full (capped) window.
        assert_eq!(rate.suggested_linger(&policy, false), policy.max_linger);
        // A 10 µs arrival gap, observed repeatedly, converges the EWMA
        // far below the 10 ms initial pin.
        for i in 1..=200u64 {
            rate.observe(i * 10);
        }
        let suggested = rate.suggested_linger(&policy, false);
        assert!(
            suggested < Duration::from_micros(500),
            "expected sub-500µs linger for a 10µs stream, got {suggested:?}"
        );
        assert!(
            suggested >= Duration::from_micros(70),
            "7 companions × ≥10µs"
        );
    }

    #[test]
    fn slow_arrivals_keep_the_max_linger_cap() {
        let policy = BatchPolicy {
            max_batch: 4,
            max_linger: Duration::from_micros(300),
        };
        let rate = ArrivalRate::new(policy.max_linger);
        for i in 1..=50u64 {
            rate.observe(i * 1_000_000); // one request a second
        }
        assert_eq!(rate.suggested_linger(&policy, false), policy.max_linger);
    }

    #[test]
    fn degraded_pools_do_not_linger() {
        let policy = BatchPolicy::default();
        let rate = ArrivalRate::new(policy.max_linger);
        assert_eq!(rate.suggested_linger(&policy, true), Duration::ZERO);
        // Unbatched pools never linger either.
        let solo = BatchPolicy::sequential();
        assert_eq!(rate.suggested_linger(&solo, false), Duration::ZERO);
    }
}
