//! Per-model worker pool: bounded priority queues → dynamic batcher →
//! workers, plus the gateway-shared admission state.
//!
//! One [`ModelPool`] hosts one verified graph. The gateway
//! ([`Server`](crate::Server)) owns a registry of pools; each pool owns
//! its own queue triple (one FIFO per [`Priority`] class), worker
//! threads, metrics, chaos stream and golden service — so one tenant's
//! poisoned batches, panics or crash-respawn churn cannot degrade a
//! neighbour. Only two things are shared across pools, both held in
//! [`GatewayShared`]: the gateway-wide queued-request count (the global
//! backpressure bound) and the span trace ring (spans carry the model
//! id, so one ring serves the whole zoo).
//!
//! **Admission** (per pool, under its queue lock): a submission of
//! priority `p` is admitted while the pool is under its quota and the
//! gateway under its capacity. When either bound is hit, the pool first
//! tries to *evict* the youngest queued request of the lowest-priority
//! class strictly below `p` (the victim is answered
//! [`ServeError::ShedLowPriority`]) — so a high-priority request is
//! never refused while lower-priority work occupies its pool. With no
//! victim available the submission itself is refused: with the typed
//! reason closest to the cause — gateway full ⇒ [`ServeError::Rejected`],
//! pool quota hit ⇒ [`ServeError::QuotaExceeded`], degraded shed bound
//! hit ⇒ [`ServeError::ShedLowPriority`]. While degraded, per-class
//! bounds tighten: `High` keeps the full quota, `Normal` is shed to
//! `ceil(shed_to · quota)`, and `Batch` admission closes entirely.
//!
//! **Batching** drains classes in priority order (`High` first) and
//! never mixes models — a batch is formed inside exactly one pool. The
//! linger window is the configured `max_linger`, or, with
//! [`ModelConfig::adaptive_linger`], the arrival-rate tracker's
//! suggestion (zero while degraded).

use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::resilience::{splitmix64, ChaosState, Health, ResilienceConfig, RetryPolicy};
use crate::routing::{ArrivalRate, ModelConfig, Priority};
use crate::server::{BatchPolicy, Ticket};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, PoisonError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;
use vedliot_nnir::exec::{Parallelism, RunOptions, Runner};
use vedliot_nnir::{Graph, NnirError, Shape, Tensor};
use vedliot_obs::{
    CauseId, EventJournal, EventKind, SloEngine, SpanOutcome, SpanRecord, TraceRing,
};
use vedliot_safety::robustness::{OutputVerdict, RobustnessService};

/// State shared by every pool behind one gateway.
pub(crate) struct GatewayShared {
    /// Requests queued across all pools right now — the global
    /// backpressure bound. Kept exactly in sync with the per-pool
    /// queues: every push increments, every pop (drain, purge,
    /// eviction) decrements.
    pub(crate) total_queued: AtomicUsize,
    /// Gateway-wide queue capacity (`ServeConfig::queue_capacity`).
    pub(crate) queue_capacity: usize,
    /// Sum of loaded models' weights; the denominator of weight-derived
    /// quotas. Updated by load/unload.
    pub(crate) total_weight: AtomicU64,
    /// Shared span ring, if tracing is configured — spans carry the
    /// model id, so one ring serves the whole zoo.
    pub(crate) trace: Option<TraceRing>,
    /// Shared flight recorder, if configured — events carry the request
    /// seq / model id as subject, so one journal serves the whole zoo.
    pub(crate) journal: Option<Arc<EventJournal>>,
    /// Burn-rate SLO state, if configured.
    pub(crate) slo: Option<SloShared>,
    /// Gateway start time: the zero point of every span timestamp.
    pub(crate) epoch: Instant,
}

/// Burn-rate SLO state shared by every pool behind one gateway.
pub(crate) struct SloShared {
    /// The engine; locked briefly per reply to record an outcome, and
    /// by [`Server::evaluate_slo`](crate::Server::evaluate_slo).
    pub(crate) engine: Mutex<SloEngine>,
    /// Largest engine-clock instant recorded so far (the submission
    /// seq) — the `now` of the next evaluation.
    pub(crate) last_at: AtomicU64,
    /// Latched by `evaluate_slo`: some objective's alert is firing.
    pub(crate) burning: AtomicBool,
    /// Whether a firing alert drives admission to degraded mode.
    pub(crate) drive_health: bool,
    /// Journal seq of the `HealthDegraded` event burn-driven sheds cite
    /// as their cause (0 before the first degradation).
    pub(crate) degraded_cause: AtomicU64,
}

impl GatewayShared {
    /// Microseconds since the gateway epoch — the journal timestamp.
    pub(crate) fn now_us(&self) -> u64 {
        us_since(self.epoch, Instant::now())
    }

    /// Appends to the flight recorder, if one is configured; returns
    /// the event's journal seq (0 without a journal).
    pub(crate) fn journal_append(
        &self,
        at: u64,
        kind: EventKind,
        subject: CauseId,
        cause: CauseId,
        detail: u64,
    ) -> u64 {
        self.journal
            .as_ref()
            .map_or(0, |j| j.append(at, kind, subject, cause, detail))
    }

    /// Whether burn-driven degradation is currently in force: an SLO
    /// policy with `drive_health` and a firing alert.
    pub(crate) fn burn_degraded(&self) -> bool {
        self.slo
            .as_ref()
            .is_some_and(|s| s.drive_health && s.burning.load(Ordering::Relaxed))
    }

    /// The cause burn-driven sheds cite: the latched `HealthDegraded`
    /// journal event, or `NONE` when degradation is not burn-driven.
    pub(crate) fn shed_cause(&self) -> CauseId {
        if !self.burn_degraded() {
            return CauseId::NONE;
        }
        let seq = self
            .slo
            .as_ref()
            .map_or(0, |s| s.degraded_cause.load(Ordering::Relaxed));
        if seq > 0 {
            CauseId::event(seq)
        } else {
            CauseId::NONE
        }
    }

    /// Records one request outcome into the SLO engine. The engine
    /// clock is the submission seq, so seeded replays evaluate
    /// bit-identically regardless of wall timing.
    pub(crate) fn slo_record(&self, seq: u64, ok: bool, latency_us: u64) {
        if let Some(slo) = &self.slo {
            slo.last_at.fetch_max(seq, Ordering::Relaxed);
            slo.engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record_request(seq, ok, latency_us);
        }
    }
}

/// Per-request span scratch: stage timestamps (µs since the gateway
/// epoch) accumulated while the request moves through the pipeline,
/// folded into a [`SpanRecord`] at reply time. All zeros when tracing
/// is disabled — and never read.
#[derive(Debug, Clone, Copy, Default)]
struct SpanScratch {
    dequeue_us: u64,
    linger_us: u64,
    exec_start_us: u64,
    exec_end_us: u64,
    /// Batch size this request executed in.
    batch: u32,
    retries: u32,
    /// Whether `exec_start_us` has been stamped — 0 is a legal
    /// epoch-relative timestamp, so a flag is needed to stamp only the
    /// *first* attempt.
    started: bool,
}

/// One queued request.
struct Request {
    /// 1-based submission sequence number (chaos poison targeting).
    seq: u64,
    inputs: Vec<Tensor>,
    priority: Priority,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    span: SpanScratch,
    reply: mpsc::Sender<Result<Vec<Tensor>, ServeError>>,
}

/// Queue state guarded by the pool mutex: one FIFO per priority class,
/// indexed by [`Priority::index`].
struct QueueState {
    queues: [VecDeque<Request>; 3],
    shutting_down: bool,
}

impl QueueState {
    /// Total queued requests across all classes.
    fn depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Enqueue instant of the oldest queued request across all classes
    /// (the linger clock runs against the oldest, whatever its class).
    fn oldest_enqueued_at(&self) -> Option<Instant> {
        self.queues
            .iter()
            .filter_map(|q| q.front().map(|r| r.enqueued_at))
            .min()
    }

    /// Drains up to `take` requests in priority order: High rows first,
    /// then Normal, then Batch, FIFO within each class. Never across
    /// models — a batch is formed wholly inside one pool.
    fn drain_ordered(&mut self, take: usize) -> Vec<Request> {
        let mut batch = Vec::with_capacity(take);
        for queue in &mut self.queues {
            while batch.len() < take {
                match queue.pop_front() {
                    Some(req) => batch.push(req),
                    None => break,
                }
            }
        }
        batch
    }

    /// Pops the youngest request of the lowest-priority nonempty class
    /// *strictly below* `p` — the eviction victim, or `None`.
    fn evict_below(&mut self, p: Priority) -> Option<Request> {
        for class in (p.index() + 1..3).rev() {
            if let Some(victim) = self.queues[class].pop_back() {
                return Some(victim);
            }
        }
        None
    }
}

/// One model's worker pool: queues, workers, metrics, chaos and golden
/// state, isolated from every other tenant.
pub(crate) struct ModelPool {
    /// Registry key the model was loaded under.
    pub(crate) key: String,
    /// Dense model id in load order — the span `model` field.
    pub(crate) id: u16,
    /// Relative capacity weight (quota numerator).
    pub(crate) weight: u32,
    /// Hard quota override; `None` derives it from the weight.
    quota: Option<usize>,
    adaptive_linger: bool,
    arrivals: ArrivalRate,
    state: Mutex<QueueState>,
    /// Signals workers: new request, or shutdown.
    work_ready: Condvar,
    pub(crate) metrics: Metrics,
    /// Per-sample graph input shapes (batch dimension forced to 1).
    input_shapes: Vec<Shape>,
    policy: BatchPolicy,
    resilience: ResilienceConfig,
    /// Live chaos stream, if a fault plan is configured for this model.
    chaos: Option<ChaosState>,
    gateway: Arc<GatewayShared>,
    /// Golden-copy robustness service, if configured.
    golden: Option<Mutex<RobustnessService>>,
    golden_repair: bool,
    /// Next submission sequence number (1-based, per pool).
    next_seq: AtomicU64,
    /// Remaining worker respawns (may go negative under races; only
    /// positive values grant a respawn).
    respawns_left: AtomicI64,
    /// Monotonic worker-thread name counter.
    next_worker_id: AtomicUsize,
    /// Every live worker's join handle — original and respawned alike.
    /// Shutdown drains this until empty; a crashing worker pushes its
    /// replacement's handle *before* its own thread exits, so the drain
    /// cannot miss a respawn.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Microseconds from `epoch` to `t`, saturating at zero.
fn us_since(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

/// Records `req`'s lifecycle span into the gateway trace ring (no-op
/// when tracing is disabled). Called immediately before the reply is
/// sent, so a redeemed ticket implies its span is already visible.
fn emit_span(pool: &ModelPool, req: &Request, outcome: SpanOutcome, reply_at: Instant) {
    let Some(ring) = &pool.gateway.trace else {
        return;
    };
    let s = &req.span;
    ring.record(&SpanRecord {
        seq: req.seq,
        enqueue_us: us_since(pool.gateway.epoch, req.enqueued_at),
        dequeue_us: s.dequeue_us,
        exec_start_us: s.exec_start_us,
        exec_end_us: s.exec_end_us,
        reply_us: us_since(pool.gateway.epoch, reply_at),
        linger_us: s.linger_us,
        batch: s.batch,
        retries: s.retries,
        model: pool.id,
        priority: req.priority.index() as u8,
        outcome,
    });
}

impl ModelPool {
    /// Compiles `graph` for batch sizes `1..=max_batch`, builds the
    /// golden service and chaos stream, and spawns the worker pool.
    /// `cfg` must already be validated by the gateway.
    pub(crate) fn start(
        key: &str,
        id: u16,
        graph: &Graph,
        cfg: &ModelConfig,
        parallelism: Parallelism,
        resilience: ResilienceConfig,
        gateway: Arc<GatewayShared>,
    ) -> Result<Arc<ModelPool>, ServeError> {
        graph.validate()?;
        // One graph per admissible batch size. Workers build their
        // runners against these; index k-1 serves batches of k.
        let mut graphs = Vec::with_capacity(cfg.batch.max_batch);
        for k in 1..=cfg.batch.max_batch {
            graphs.push(graph.with_batch(k)?);
        }
        // The golden copy is cloned before chaos corrupts the deployed
        // graphs: it is the uncorrupted reference of §IV-B.
        let golden = match &cfg.golden {
            Some(policy) => {
                if graph.inputs().len() != 1 || graph.outputs().len() != 1 {
                    return Err(ServeError::InvalidConfig(
                        "golden checking requires a single-input single-output model".into(),
                    ));
                }
                Some(Mutex::new(RobustnessService::new(
                    graph.with_batch(1)?,
                    policy.period,
                    policy.tolerance,
                )))
            }
            None => None,
        };
        if let Some(plan) = &cfg.chaos {
            if plan.weight_bit_flips > 0 {
                // Same seed on every batch variant: the weight tensors
                // are structurally identical, so the same logical bits
                // flip in each and batching stays output-consistent.
                for g in &mut graphs {
                    vedliot_safety::inject::flip_weight_bits(g, plan.weight_bit_flips, plan.seed)?;
                }
            }
        }
        // The graph was verified above, so every input has a shape.
        let input_shapes: Vec<Shape> = graphs[0]
            .inputs()
            .iter()
            .filter_map(|&tid| graphs[0].tensor_shape(tid).cloned())
            .collect();
        let pool = Arc::new(ModelPool {
            key: key.to_string(),
            id,
            weight: cfg.weight,
            quota: cfg.quota,
            adaptive_linger: cfg.adaptive_linger,
            arrivals: ArrivalRate::new(cfg.batch.max_linger),
            state: Mutex::new(QueueState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            metrics: Metrics::default(),
            input_shapes,
            policy: cfg.batch,
            resilience,
            chaos: cfg.chaos.map(ChaosState::new),
            gateway,
            golden,
            golden_repair: cfg.golden.is_some_and(|g| g.repair),
            next_seq: AtomicU64::new(0),
            respawns_left: AtomicI64::new(i64::from(resilience.respawn_budget)),
            next_worker_id: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        });
        let ctx = Arc::new(WorkerContext {
            pool: Arc::clone(&pool),
            graphs: Arc::new(graphs),
            parallelism,
        });
        for _ in 0..cfg.workers {
            assert!(spawn_worker(&ctx), "spawn serve worker");
        }
        Ok(pool)
    }

    /// Locks the queue state, recovering from poisoning: a worker that
    /// panicked can never be allowed to wedge the whole pool, and every
    /// mutation of `QueueState` is panic-free (pushes/pops of
    /// already-constructed values), so the state is always consistent.
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The queue quota currently in force: the configured hard quota,
    /// or the weight-derived share `max(1, w·C/W)` of the gateway
    /// capacity `C`.
    pub(crate) fn effective_quota(&self) -> usize {
        if let Some(quota) = self.quota {
            return quota;
        }
        let total = self.gateway.total_weight.load(Ordering::Relaxed).max(1);
        let share = (u128::from(self.weight) * self.gateway.queue_capacity as u128
            / u128::from(total)) as usize;
        share.max(1)
    }

    /// Whether this pool counts as degraded at the given queue depth.
    /// A fraction of 1.0 disables depth-based degradation entirely —
    /// a queue at full quota is ordinary backpressure, not distress.
    /// A firing burn alert (with `SloPolicy::drive_health`) degrades
    /// every pool behind the gateway at once.
    fn degraded(&self, depth: usize, quota: usize) -> bool {
        self.gateway.burn_degraded()
            || self.metrics.worker_crashes() >= self.resilience.degraded_crash_threshold
            || (self.resilience.degraded_queue_fraction < 1.0
                && (depth as f64) >= self.resilience.degraded_queue_fraction * quota as f64)
    }

    /// The admission bound for class `p`: the full quota while healthy;
    /// while degraded, `High` keeps the quota, `Normal` is shed to
    /// `ceil(shed_to · quota)` and `Batch` admission closes.
    fn admission_bound(&self, p: Priority, quota: usize, degraded: bool) -> usize {
        if !degraded {
            return quota;
        }
        match p {
            Priority::High => quota,
            Priority::Normal => ((self.resilience.shed_to * quota as f64).ceil() as usize).max(1),
            Priority::Batch => 0,
        }
    }

    /// Admits one single-sample request into this pool's queue triple,
    /// evicting lower-priority work when the pool or gateway bound is
    /// hit (see the module doc for the full admission protocol).
    pub(crate) fn submit(
        &self,
        inputs: Vec<Tensor>,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        self.metrics.inc_submitted(priority.index());
        if inputs.len() != self.input_shapes.len() {
            self.metrics.inc_rejected();
            return Err(ServeError::InvalidInput(format!(
                "expected {} input tensors, got {}",
                self.input_shapes.len(),
                inputs.len()
            )));
        }
        for (tensor, expected) in inputs.iter().zip(&self.input_shapes) {
            if tensor.shape() != expected {
                self.metrics.inc_rejected();
                return Err(ServeError::InvalidInput(format!(
                    "input shape {:?} does not match single-sample signature {:?}",
                    tensor.shape(),
                    expected
                )));
            }
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.lock_state();
            if state.shutting_down {
                self.metrics.inc_rejected();
                return Err(ServeError::ShuttingDown);
            }
            let quota = self.effective_quota();
            let depth = state.depth();
            let degraded = self.degraded(depth, quota);
            let bound = self.admission_bound(priority, quota, degraded);
            let gateway_full =
                self.gateway.total_queued.load(Ordering::Relaxed) >= self.gateway.queue_capacity;
            // Victim of an eviction, if one happened: its seq and
            // priority index, journalled as RequestDisplaced once the
            // incoming request's seq exists to cite as the cause.
            let mut displaced: Option<(u64, u64)> = None;
            if depth >= bound || gateway_full {
                match state.evict_below(priority) {
                    Some(victim) => {
                        // Displace the youngest lowest-priority request:
                        // it is answered ShedLowPriority and its queue
                        // slot (pool and gateway alike) transfers to
                        // the incoming request.
                        self.metrics.inc_shed(victim.priority.index());
                        self.metrics.queue_popped(1);
                        self.gateway.total_queued.fetch_sub(1, Ordering::Relaxed);
                        displaced = Some((victim.seq, victim.priority.index() as u64));
                        emit_span(self, &victim, SpanOutcome::Shed, Instant::now());
                        let _ = victim.reply.send(Err(ServeError::ShedLowPriority));
                    }
                    None => {
                        // Nothing below this class to displace: refuse
                        // the submission with the typed reason closest
                        // to the cause. Refusals never consume a seq,
                        // so chaos poison targeting is unaffected by
                        // how many submissions were turned away.
                        let err = if gateway_full {
                            self.metrics.inc_rejected();
                            ServeError::Rejected {
                                capacity: self.gateway.queue_capacity,
                            }
                        } else if depth >= quota {
                            self.metrics.inc_rejected();
                            ServeError::QuotaExceeded { quota }
                        } else {
                            self.metrics.inc_shed(priority.index());
                            // A burn-driven shed cites the degradation
                            // event, chaining it back to the alert.
                            self.gateway.journal_append(
                                self.gateway.now_us(),
                                EventKind::RequestShed,
                                CauseId::model(u64::from(self.id)),
                                self.gateway.shed_cause(),
                                priority.index() as u64,
                            );
                            ServeError::ShedLowPriority
                        };
                        return Err(err);
                    }
                }
            }
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let enqueued_at = Instant::now();
            if self.gateway.journal.is_some() {
                let at = us_since(self.gateway.epoch, enqueued_at);
                if let Some((victim_seq, victim_priority)) = displaced {
                    self.gateway.journal_append(
                        at,
                        EventKind::RequestDisplaced,
                        CauseId::request(victim_seq),
                        CauseId::request(seq),
                        victim_priority,
                    );
                }
                self.gateway.journal_append(
                    at,
                    EventKind::RequestAdmitted,
                    CauseId::request(seq),
                    CauseId::NONE,
                    priority.index() as u64,
                );
            }
            state.queues[priority.index()].push_back(Request {
                seq,
                inputs,
                priority,
                deadline,
                enqueued_at,
                span: SpanScratch::default(),
                reply: tx,
            });
            self.metrics.queue_pushed();
            self.gateway.total_queued.fetch_add(1, Ordering::Relaxed);
            if self.adaptive_linger {
                self.arrivals
                    .observe(us_since(self.gateway.epoch, enqueued_at));
            }
        }
        self.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Current health of this pool.
    pub(crate) fn health(&self) -> Health {
        let (shutting_down, depth) = {
            let state = self.lock_state();
            (state.shutting_down, state.depth())
        };
        if shutting_down {
            Health::Draining
        } else if self.degraded(depth, self.effective_quota()) {
            Health::Degraded
        } else {
            Health::Serving
        }
    }

    /// Point-in-time statistics for this pool.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Refuses new submissions and wakes the workers to drain.
    pub(crate) fn begin_shutdown(&self) {
        let mut state = self.lock_state();
        state.shutting_down = true;
        drop(state);
        self.work_ready.notify_all();
    }

    /// Joins every worker handle. The lock is released around each
    /// join: a crashing worker's guard pushes its replacement's handle
    /// before the crashed thread exits, so re-checking until the vector
    /// is empty observes every respawn.
    pub(crate) fn join_workers(&self) {
        loop {
            let handle = self
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Everything a worker thread needs — held in an `Arc` so a crash guard
/// can hand the same context to a replacement worker.
struct WorkerContext {
    pool: Arc<ModelPool>,
    graphs: Arc<Vec<Graph>>,
    parallelism: Parallelism,
}

/// Armed for the lifetime of a worker thread; if the thread unwinds
/// (a panic escaped the isolation boundary, or isolation is disabled),
/// the guard's drop is the supervisor: it counts the crash and respawns
/// a replacement while the budget lasts.
struct CrashGuard {
    ctx: Arc<WorkerContext>,
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // normal worker exit (drained shutdown)
        }
        let pool = &self.ctx.pool;
        // A worker dying while the pool drains an empty queue is
        // indistinguishable from a normal exit: no work was lost and no
        // replacement is wanted, so it does not count as a crash.
        // try_lock: never risk deadlocking a dying thread.
        let idle_drain = match pool.state.try_lock() {
            Ok(state) => state.shutting_down && state.depth() == 0,
            Err(std::sync::TryLockError::Poisoned(p)) => {
                let state = p.into_inner();
                state.shutting_down && state.depth() == 0
            }
            Err(std::sync::TryLockError::WouldBlock) => false,
        };
        if idle_drain {
            return;
        }
        pool.metrics.inc_worker_crash();
        let crash_event = pool.gateway.journal_append(
            pool.gateway.now_us(),
            EventKind::WorkerCrashed,
            CauseId::model(u64::from(pool.id)),
            CauseId::NONE,
            0,
        );
        if pool.respawns_left.fetch_sub(1, Ordering::AcqRel) <= 0 {
            return; // budget exhausted: degrade instead of flapping
        }
        pool.metrics.inc_respawned();
        // The respawn cites the crash it replaces.
        let respawn_cause = if crash_event > 0 {
            CauseId::event(crash_event)
        } else {
            CauseId::NONE
        };
        pool.gateway.journal_append(
            pool.gateway.now_us(),
            EventKind::WorkerRespawned,
            CauseId::model(u64::from(pool.id)),
            respawn_cause,
            0,
        );
        spawn_worker(&self.ctx);
        // The replacement may have queued work waiting already.
        pool.work_ready.notify_all();
    }
}

/// Spawns one worker thread over `ctx` and registers its handle for the
/// shutdown drain. Returns whether the spawn succeeded.
fn spawn_worker(ctx: &Arc<WorkerContext>) -> bool {
    let id = ctx.pool.next_worker_id.fetch_add(1, Ordering::Relaxed);
    let worker_ctx = Arc::clone(ctx);
    let spawned = std::thread::Builder::new()
        .name(format!("vedliot-serve-{}-{id}", ctx.pool.key))
        .spawn(move || {
            let _guard = CrashGuard {
                ctx: Arc::clone(&worker_ctx),
            };
            worker_loop(&worker_ctx);
        });
    match spawned {
        Ok(handle) => {
            ctx.pool
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
            true
        }
        Err(_) => false,
    }
}

/// Replies to every queued request whose deadline has already expired
/// and drops it from the queues. Returns how many were purged (the
/// caller settles the gateway count).
///
/// A request purged here never executed, so its span collapses every
/// post-queue stage to the purge instant (queue-wait accounts for its
/// whole lifetime).
fn purge_expired(state: &mut QueueState, pool: &ModelPool, now: Instant) -> usize {
    let mut purged = 0usize;
    for queue in &mut state.queues {
        queue.retain(|req| {
            let expired = req.deadline.is_some_and(|d| now >= d);
            if expired {
                purged += 1;
                pool.metrics.inc_timed_out();
                pool.gateway.slo_record(req.seq, false, 0);
                if let Some(ring) = &pool.gateway.trace {
                    let t = us_since(pool.gateway.epoch, now);
                    ring.record(&SpanRecord {
                        seq: req.seq,
                        enqueue_us: us_since(pool.gateway.epoch, req.enqueued_at),
                        dequeue_us: t,
                        exec_start_us: t,
                        exec_end_us: t,
                        reply_us: t,
                        linger_us: 0,
                        batch: 0,
                        retries: 0,
                        model: pool.id,
                        priority: req.priority.index() as u8,
                        outcome: SpanOutcome::TimedOut,
                    });
                }
                let _ = req.reply.send(Err(ServeError::DeadlineExceeded));
            }
            !expired
        });
    }
    pool.metrics.queue_popped(purged as u64);
    purged
}

/// Worker body: form a batch under the lock, execute it outside.
fn worker_loop(ctx: &WorkerContext) {
    let pool = &*ctx.pool;
    // Runners are built once and reused for the worker's lifetime, so
    // every batch after the first hits warm arenas and cached weights.
    let mut runners: Vec<Runner<'_>> = ctx
        .graphs
        .iter()
        .map(|g| {
            Runner::builder()
                .parallelism(ctx.parallelism)
                .build(g)
                .unwrap_or_else(|e| {
                    // The batch graph was verified at ModelPool::start;
                    // a worker that cannot build is a resilience event.
                    panic!("worker failed to build a verified graph: {e}")
                })
        })
        .collect();
    loop {
        // Chaos hard kill: strictly before the lock is taken and while
        // no requests are held, so a dying worker cannot poison the
        // queue or lose a batch — only supervision is exercised.
        if let Some(chaos) = &pool.chaos {
            if chaos.kill_now() {
                panic!("chaos: worker killed at wakeup");
            }
        }
        let batch = {
            let mut state = pool.lock_state();
            loop {
                let now = Instant::now();
                let purged = purge_expired(&mut state, pool, now);
                if purged > 0 {
                    pool.gateway
                        .total_queued
                        .fetch_sub(purged, Ordering::Relaxed);
                }
                let depth = state.depth();
                if let Some(oldest_at) = state.oldest_enqueued_at() {
                    let linger = if pool.adaptive_linger {
                        let quota = pool.effective_quota();
                        pool.arrivals
                            .suggested_linger(&pool.policy, pool.degraded(depth, quota))
                    } else {
                        pool.policy.max_linger
                    };
                    let full = depth >= pool.policy.max_batch;
                    let linger_until = oldest_at + linger;
                    if full || state.shutting_down || now >= linger_until {
                        let take = depth.min(pool.policy.max_batch);
                        let mut batch = state.drain_ordered(take);
                        pool.metrics.queue_popped(take as u64);
                        pool.metrics.inflight_add(take as u64);
                        pool.gateway.total_queued.fetch_sub(take, Ordering::Relaxed);
                        if pool.gateway.trace.is_some() {
                            // Stamp the dequeue and attribute the part
                            // of the wait the batcher *chose* (up to
                            // max_linger) to the linger stage.
                            let dequeue_us = us_since(pool.gateway.epoch, now);
                            for req in &mut batch {
                                req.span.dequeue_us = dequeue_us;
                                req.span.linger_us =
                                    now.saturating_duration_since(req.enqueued_at)
                                        .min(pool.policy.max_linger)
                                        .as_micros() as u64;
                                req.span.batch = take as u32;
                            }
                        }
                        break batch;
                    }
                    // Wait for companions, a shutdown, or the linger
                    // window to elapse — whichever comes first.
                    let (s, _) = pool
                        .work_ready
                        .wait_timeout(state, linger_until - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = s;
                } else if state.shutting_down {
                    return;
                } else {
                    state = pool
                        .work_ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        let salt = splitmix64(batch.first().map_or(0, |r| r.seq));
        run_batch(ctx, &mut runners, batch, false, salt);
    }
}

/// Runs one formed batch through the resilience layers: retry transient
/// failures under the backoff policy, send deterministic failures to
/// quarantine bisection, reply to every request exactly once.
///
/// `quarantining` marks that this (sub-)batch is part of a bisection:
/// a single request failing deterministically there is the isolated
/// poison and fails as [`ServeError::Quarantined`].
fn run_batch(
    ctx: &WorkerContext,
    runners: &mut [Runner<'_>],
    mut batch: Vec<Request>,
    quarantining: bool,
    salt: u64,
) {
    let pool = &*ctx.pool;
    let policy: RetryPolicy = pool.resilience.retry;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if pool.gateway.trace.is_some() {
            // Stamp the first attempt's start; retries and bisection
            // sub-batches keep the original start so the execute stage
            // covers the request's whole time on a runner.
            let now_us = us_since(pool.gateway.epoch, Instant::now());
            for req in &mut batch {
                if !req.span.started {
                    req.span.exec_start_us = now_us;
                    req.span.started = true;
                }
            }
        }
        let result = attempt_execute(ctx, runners, &batch);
        if pool.gateway.trace.is_some() {
            let now_us = us_since(pool.gateway.epoch, Instant::now());
            for req in &mut batch {
                req.span.exec_end_us = now_us;
            }
        }
        let error = match result {
            Ok(rows) => {
                reply_ok(ctx, batch, rows);
                return;
            }
            Err(e) => e,
        };
        if error.class().is_transient() && attempt < policy.max_attempts {
            pool.metrics.inc_retry();
            let retried_at = pool.gateway.now_us();
            for req in &mut batch {
                req.span.retries += 1;
                pool.gateway.journal_append(
                    retried_at,
                    EventKind::RequestRetried,
                    CauseId::request(req.seq),
                    CauseId::NONE,
                    u64::from(attempt),
                );
            }
            // Respect remaining deadlines: purge what already expired,
            // and never sleep past the earliest deadline still in the
            // batch.
            purge_batch_expired(&mut batch, pool);
            if batch.is_empty() {
                return;
            }
            let mut delay = policy.backoff(attempt, salt);
            if let Some(earliest) = batch.iter().filter_map(|r| r.deadline).min() {
                delay = delay.min(earliest.saturating_duration_since(Instant::now()));
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            purge_batch_expired(&mut batch, pool);
            if batch.is_empty() {
                return;
            }
            continue;
        }
        if !error.class().is_transient() && pool.resilience.quarantine {
            if batch.len() > 1 {
                // Bisect: the poisoned request is in one half; the
                // other half (and the poisoned half's innocent
                // remainder, recursively) still gets served.
                let right = batch.split_off(batch.len() / 2);
                run_batch(ctx, runners, batch, true, splitmix64(salt ^ 1));
                run_batch(ctx, runners, right, true, splitmix64(salt ^ 2));
                return;
            }
            if quarantining {
                // Bisection bottomed out: this request is the poison.
                pool.metrics.add_quarantined(batch.len() as u64);
                pool.metrics.inflight_sub(batch.len() as u64);
                let replied = Instant::now();
                for req in batch {
                    pool.gateway.journal_append(
                        us_since(pool.gateway.epoch, replied),
                        EventKind::RequestQuarantined,
                        CauseId::request(req.seq),
                        CauseId::NONE,
                        u64::from(attempt),
                    );
                    pool.gateway.slo_record(req.seq, false, 0);
                    emit_span(pool, &req, SpanOutcome::Quarantined, replied);
                    let _ = req.reply.send(Err(ServeError::Quarantined {
                        detail: error.to_string(),
                    }));
                }
                return;
            }
        }
        fail_batch(batch, pool, &error);
        return;
    }
}

/// One execution attempt: chaos hooks, the panic-isolation boundary,
/// and the batched forward pass. Returns per-request output rows.
fn attempt_execute(
    ctx: &WorkerContext,
    runners: &mut [Runner<'_>],
    batch: &[Request],
) -> Result<Vec<Vec<Tensor>>, ServeError> {
    let pool = &*ctx.pool;
    if let Some(chaos) = &pool.chaos {
        // A poisoned request fails any batch containing it, the same
        // deterministic way every time — the quarantine target.
        if let Some(req) = batch.iter().find(|r| chaos.poisoned(r.seq)) {
            return Err(ServeError::Execution(NnirError::ExecutionFailure(format!(
                "chaos: poisoned request #{}",
                req.seq
            ))));
        }
    }
    let guarded = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(chaos) = &pool.chaos {
            if chaos.panic_now() {
                panic!("chaos: injected worker panic");
            }
        }
        execute_core(runners, batch)
    }));
    match guarded {
        Ok(result) => result,
        Err(payload) => {
            if pool.resilience.isolate_panics {
                pool.metrics.inc_panic_absorbed();
                Err(ServeError::WorkerCrashed {
                    detail: panic_detail(payload.as_ref()),
                })
            } else {
                // Baseline behaviour: the panic kills the worker (and
                // silently takes the batch with it — the failure mode
                // this module exists to remove).
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Best-effort stringification of a panic payload.
fn panic_detail(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Coalesce → execute → split back into per-request output rows.
fn execute_core(
    runners: &mut [Runner<'_>],
    batch: &[Request],
) -> Result<Vec<Vec<Tensor>>, ServeError> {
    let n = batch.len();
    debug_assert!(n >= 1 && n <= runners.len());
    if n == 1 {
        let out = runners[0].execute(&batch[0].inputs, RunOptions::default())?;
        return Ok(vec![out.into_outputs()]);
    }
    // Coalesce along axis 0: input position i of the batched run is
    // the concatenation of every request's tensor i, in queue order.
    let coalesced = (0..batch[0].inputs.len())
        .map(|i| {
            let rows: Vec<Tensor> = batch.iter().map(|req| req.inputs[i].clone()).collect();
            Tensor::concat_batch(&rows)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let out = runners[n - 1].execute(&coalesced, RunOptions::default())?;
    // Split every output back into per-request rows; row j belongs to
    // request j because concat preserved queue order.
    let per_output_rows: Vec<Vec<Tensor>> = out
        .outputs()
        .iter()
        .map(Tensor::split_batch)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((0..n)
        .map(|j| per_output_rows.iter().map(|rows| rows[j].clone()).collect())
        .collect())
}

/// Answers every request in a successful batch, running sampled golden
/// checks (and repairs) first.
fn reply_ok(ctx: &WorkerContext, batch: Vec<Request>, mut rows: Vec<Vec<Tensor>>) {
    let pool = &*ctx.pool;
    let completed = Instant::now();
    if let Some(service) = &pool.golden {
        let mut service = service.lock().unwrap_or_else(PoisonError::into_inner);
        for (req, outputs) in batch.iter().zip(rows.iter_mut()) {
            // The golden check is an observer: its own failure must
            // never fail a request that executed successfully.
            if let Ok(check) = service.check(&req.inputs[0], &outputs[0]) {
                if matches!(check.verdict, OutputVerdict::Diverged { .. }) {
                    pool.metrics.inc_golden_mismatch();
                    if pool.golden_repair {
                        if let Some(golden) = check.golden {
                            outputs[0] = golden;
                        }
                    }
                }
            }
        }
    }
    pool.metrics.record_batch(batch.len() as u64);
    pool.metrics.inflight_sub(batch.len() as u64);
    for (req, outputs) in batch.into_iter().zip(rows) {
        let micros = completed.duration_since(req.enqueued_at).as_micros() as u64;
        pool.metrics.record_latency(micros);
        pool.metrics.inc_served(req.priority.index());
        pool.gateway.slo_record(req.seq, true, micros);
        // The golden check above ran between exec-end and `completed`,
        // so its cost lands in the span's reply stage.
        emit_span(pool, &req, SpanOutcome::Ok, completed);
        let _ = req.reply.send(Ok(outputs));
    }
}

/// Replies `DeadlineExceeded` to every request in the batch whose
/// deadline has passed and removes it (mid-retry counterpart of
/// [`purge_expired`]; these requests *did* dequeue and execute, so
/// their spans keep the real stage timestamps).
fn purge_batch_expired(batch: &mut Vec<Request>, pool: &ModelPool) {
    let now = Instant::now();
    batch.retain(|req| {
        let expired = req.deadline.is_some_and(|d| now >= d);
        if expired {
            pool.metrics.inc_timed_out();
            pool.metrics.inflight_sub(1);
            pool.gateway.slo_record(req.seq, false, 0);
            emit_span(pool, req, SpanOutcome::TimedOut, now);
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded));
        }
        !expired
    });
}

/// Answers every request in a failed batch with the same typed error.
fn fail_batch(batch: Vec<Request>, pool: &ModelPool, error: &ServeError) {
    pool.metrics.add_failed(batch.len() as u64);
    pool.metrics.inflight_sub(batch.len() as u64);
    let replied = Instant::now();
    for req in batch {
        pool.gateway.slo_record(req.seq, false, 0);
        emit_span(pool, &req, SpanOutcome::Failed, replied);
        let _ = req.reply.send(Err(error.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use vedliot_nnir::zoo;

    fn gateway(capacity: usize, total_weight: u64) -> Arc<GatewayShared> {
        Arc::new(GatewayShared {
            total_queued: AtomicUsize::new(0),
            queue_capacity: capacity,
            total_weight: AtomicU64::new(total_weight),
            trace: None,
            journal: None,
            slo: None,
            epoch: Instant::now(),
        })
    }

    fn pool_on(gateway: &Arc<GatewayShared>, cfg: &ModelConfig) -> Arc<ModelPool> {
        let graph = zoo::tiny_cnn("pool-test", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap();
        ModelPool::start(
            "pool-test",
            0,
            &graph,
            cfg,
            Parallelism::Serial,
            ResilienceConfig::default(),
            Arc::clone(gateway),
        )
        .unwrap()
    }

    fn input(seed: u64) -> Tensor {
        Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
    }

    /// A batch policy that holds requests in the queue practically
    /// forever, so admission tests observe a stable queue.
    fn holding(max_batch: usize) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_linger: Duration::from_secs(30),
        }
    }

    #[test]
    fn weight_derived_quota_is_the_capacity_share() {
        let gw = gateway(60, 6);
        let cfg = ModelConfig::default().weight(2);
        let pool = pool_on(&gw, &cfg);
        // 2 of 6 weight on a 60-slot gateway: 20 slots.
        assert_eq!(pool.effective_quota(), 20);
        pool.begin_shutdown();
        pool.join_workers();
    }

    #[test]
    fn hard_quota_overrides_the_weight_share() {
        let gw = gateway(60, 6);
        let cfg = ModelConfig::default().weight(2).quota(3);
        let pool = pool_on(&gw, &cfg);
        assert_eq!(pool.effective_quota(), 3);
        pool.begin_shutdown();
        pool.join_workers();
    }

    #[test]
    fn quota_refusal_names_the_quota() {
        let gw = gateway(64, 1);
        let cfg = ModelConfig::default().quota(2).batch(holding(8));
        let pool = pool_on(&gw, &cfg);
        let t1 = pool.submit(vec![input(1)], Priority::Normal, None).unwrap();
        let t2 = pool.submit(vec![input(2)], Priority::Normal, None).unwrap();
        // Same class queued: nothing strictly lower to evict.
        let err = pool
            .submit(vec![input(3)], Priority::Normal, None)
            .unwrap_err();
        assert_eq!(err, ServeError::QuotaExceeded { quota: 2 });
        pool.begin_shutdown();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        pool.join_workers();
        let m = pool.snapshot();
        assert!(m.accounted_for());
        assert_eq!(m.rejected, 1);
    }

    #[test]
    fn high_priority_displaces_queued_batch_work() {
        let gw = gateway(64, 1);
        let cfg = ModelConfig::default().quota(2).batch(holding(8));
        let pool = pool_on(&gw, &cfg);
        let _b1 = pool.submit(vec![input(1)], Priority::Batch, None).unwrap();
        let b2 = pool.submit(vec![input(2)], Priority::Batch, None).unwrap();
        // Quota full of Batch work: a High submission evicts the
        // *youngest* Batch request and takes its slot.
        let th = pool.submit(vec![input(3)], Priority::High, None).unwrap();
        assert_eq!(b2.wait(), Err(ServeError::ShedLowPriority));
        assert_eq!(gw.total_queued.load(Ordering::Relaxed), 2, "net-zero swap");
        pool.begin_shutdown();
        assert!(th.wait().is_ok());
        pool.join_workers();
        let m = pool.snapshot();
        assert!(m.accounted_for());
        assert_eq!(m.shed_by_priority, [0, 0, 1]);
    }

    #[test]
    fn degraded_pool_closes_batch_admission_and_sheds_normal() {
        let gw = gateway(64, 1);
        let cfg = ModelConfig::default().quota(4).batch(holding(8));
        let pool = pool_on(&gw, &cfg);
        // Trip crash-threshold degradation directly (default threshold
        // is 16 crashes).
        for _ in 0..16 {
            pool.metrics.inc_worker_crash();
        }
        assert_eq!(pool.health(), Health::Degraded);
        // Batch admission is closed outright.
        assert_eq!(
            pool.submit(vec![input(1)], Priority::Batch, None)
                .unwrap_err(),
            ServeError::ShedLowPriority
        );
        // Normal is shed to ceil(shed_to × quota) = 2 of 4 slots.
        let n1 = pool.submit(vec![input(2)], Priority::Normal, None).unwrap();
        let n2 = pool.submit(vec![input(3)], Priority::Normal, None).unwrap();
        assert_eq!(
            pool.submit(vec![input(4)], Priority::Normal, None)
                .unwrap_err(),
            ServeError::ShedLowPriority
        );
        // High keeps the full quota: two more slots.
        let h1 = pool.submit(vec![input(5)], Priority::High, None).unwrap();
        let h2 = pool.submit(vec![input(6)], Priority::High, None).unwrap();
        pool.begin_shutdown();
        for t in [n1, n2, h1, h2] {
            assert!(t.wait().is_ok());
        }
        pool.join_workers();
        let m = pool.snapshot();
        assert!(m.accounted_for());
        assert_eq!(m.shed_by_priority, [0, 1, 1]);
        assert_eq!(m.served_by_priority, [2, 2, 0]);
    }

    #[test]
    fn gateway_capacity_binds_across_pools() {
        let gw = gateway(2, 2);
        let cfg = ModelConfig::default().batch(holding(8));
        let a = pool_on(&gw, &cfg);
        let graph = zoo::tiny_cnn("pool-b", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap();
        let b = ModelPool::start(
            "pool-b",
            1,
            &graph,
            &cfg,
            Parallelism::Serial,
            ResilienceConfig::default(),
            Arc::clone(&gw),
        )
        .unwrap();
        let ta = a.submit(vec![input(1)], Priority::Normal, None).unwrap();
        let tb = b.submit(vec![input(2)], Priority::Normal, None).unwrap();
        // The gateway is full; pool B has no lower-priority work of its
        // own to displace, so the submission is rejected with the
        // gateway capacity.
        assert_eq!(
            b.submit(vec![input(3)], Priority::Normal, None)
                .unwrap_err(),
            ServeError::Rejected { capacity: 2 }
        );
        a.begin_shutdown();
        b.begin_shutdown();
        assert!(ta.wait().is_ok());
        assert!(tb.wait().is_ok());
        a.join_workers();
        b.join_workers();
        assert_eq!(gw.total_queued.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn priority_order_drains_high_first() {
        // The batcher's drain order, tested on the queue state alone so
        // no worker-timing race can mask it: High rows first despite
        // later arrival, FIFO within a class, Batch last.
        let (tx, _rx) = mpsc::channel();
        let mk = |seq: u64, priority: Priority| Request {
            seq,
            inputs: Vec::new(),
            priority,
            deadline: None,
            enqueued_at: Instant::now(),
            span: SpanScratch::default(),
            reply: tx.clone(),
        };
        let mut state = QueueState {
            queues: Default::default(),
            shutting_down: false,
        };
        for (seq, priority) in [
            (1, Priority::Batch),
            (2, Priority::Normal),
            (3, Priority::High),
            (4, Priority::High),
        ] {
            state.queues[priority.index()].push_back(mk(seq, priority));
        }
        let batch: Vec<u64> = state.drain_ordered(3).iter().map(|r| r.seq).collect();
        assert_eq!(batch, vec![3, 4, 2], "High FIFO, then Normal; Batch left");
        assert_eq!(state.depth(), 1);
        let rest: Vec<u64> = state.drain_ordered(8).iter().map(|r| r.seq).collect();
        assert_eq!(rest, vec![1]);

        // End-to-end: a pool under holding linger serves both classes
        // and splits the served counters per class.
        let gw = gateway(64, 1);
        let cfg = ModelConfig::default().quota(8).batch(holding(2));
        let pool = pool_on(&gw, &cfg);
        let tb = pool.submit(vec![input(1)], Priority::Batch, None).unwrap();
        let th = pool.submit(vec![input(2)], Priority::High, None).unwrap();
        pool.begin_shutdown();
        assert!(th.wait().is_ok());
        assert!(tb.wait().is_ok());
        pool.join_workers();
        let m = pool.snapshot();
        assert_eq!(m.served, 2);
        assert_eq!(m.served_by_priority, [1, 0, 1]);
    }
}
