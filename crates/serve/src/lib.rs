//! `vedliot-serve` — batched serving front-end for VEDLIoT models.
//!
//! The paper's pipeline ends at an optimised model; this crate is the
//! piece that puts one in front of traffic on an edge node. Requests
//! enter through a bounded submission queue, a dynamic batcher
//! coalesces them along axis 0 (close on `max_batch` reached or
//! `max_linger` elapsed), and a worker pool executes each batch through
//! the one-door [`Runner`](vedliot_nnir::exec::Runner) API — one warm
//! arena-backed runner per batch size per worker.
//!
//! The serving contract:
//!
//! - **No request is silently dropped.** Every submission is answered
//!   with outputs or a typed [`ServeError`]; after
//!   [`Server::shutdown`], `served + rejected + timed_out + failed`
//!   equals `submitted` ([`MetricsSnapshot::accounted_for`]).
//! - **Backpressure over buffering.** A full queue rejects at the door
//!   with [`ServeError::Rejected`] instead of growing without bound.
//! - **Deadlines are enforced before execution.** An expired request is
//!   purged with [`ServeError::DeadlineExceeded`], never run late.
//! - **Batching is invisible.** Kernels reduce batch rows independently
//!   in identical element order, so a coalesced request receives
//!   bit-identical bytes to a solo run (property-tested in
//!   `tests/serving.rs`).
//! - **Faults stay contained.** A panicking batch is absorbed at the
//!   worker's isolation boundary ([`ServeError::WorkerCrashed`]),
//!   transient failures retry under a bounded-backoff [`RetryPolicy`],
//!   deterministically failing batches are bisected so only the
//!   poisoned request fails ([`ServeError::Quarantined`]), and a
//!   supervisor respawns dead worker threads within a budget. All of it
//!   is validated by the seeded chaos harness ([`FaultPlan`],
//!   `tests/chaos.rs`, experiment E22).
//! - **Observability is free when off, cheap when on.** Latency
//!   percentiles come from a wait-free log2 histogram (no lock on the
//!   reply path), queue depth / high-water mark / inflight gauges ride
//!   the existing atomics, and opt-in request tracing
//!   ([`TracePolicy`]) records a per-request stage timeline
//!   (enqueue → queue-wait → linger → execute → reply) into a
//!   lock-free ring read by [`Server::trace_spans`] — experiment E23
//!   measures the tax.

pub mod error;
pub mod metrics;
pub mod resilience;
pub mod server;

pub use error::ServeError;
pub use metrics::MetricsSnapshot;
pub use resilience::{FaultPlan, Health, ResilienceConfig, RetryPolicy};
pub use server::{BatchPolicy, GoldenPolicy, ServeConfig, Server, Ticket, TracePolicy};
