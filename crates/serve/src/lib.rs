//! `vedliot-serve` — multi-tenant batched serving gateway for VEDLIoT
//! models.
//!
//! The paper's pipeline ends at an optimised model; this crate is the
//! piece that puts a *zoo* of them in front of traffic on an edge node.
//! A model registry hosts many verified graphs concurrently
//! ([`Server::load`] / [`Server::unload`] are hot — unload drains
//! in-flight work before returning). Requests enter through a typed
//! [`SubmitRequest`] naming a model and a [`Priority`] class, a
//! per-model dynamic batcher coalesces them along axis 0 (close on
//! `max_batch` reached or `max_linger` elapsed, with an optional
//! arrival-rate-adaptive linger), and each model's worker pool executes
//! batches through the one-door [`Runner`](vedliot_nnir::exec::Runner)
//! API — one warm arena-backed runner per batch size per worker.
//!
//! The serving contract:
//!
//! - **No request is silently dropped.** Every submission is answered
//!   with outputs or a typed [`ServeError`]; after
//!   [`Server::shutdown`], `served + rejected + timed_out + failed`
//!   equals `submitted` ([`MetricsSnapshot::accounted_for`]) — per
//!   model and for the merged gateway aggregate.
//! - **Backpressure over buffering.** A full gateway queue rejects at
//!   the door with [`ServeError::Rejected`]; a tenant that exhausts its
//!   weighted queue share is refused with [`ServeError::QuotaExceeded`]
//!   before it can starve the others.
//! - **Priority admission sheds lowest-first.** Under pressure the
//!   queue evicts the youngest request of the lowest queued class to
//!   admit strictly-higher-priority work
//!   ([`ServeError::ShedLowPriority`]), and degraded health closes
//!   `Batch` admission entirely — `Priority::High` is never refused
//!   while lower-priority work sits queued.
//! - **Deadlines are enforced before execution.** An expired request is
//!   purged with [`ServeError::DeadlineExceeded`], never run late.
//! - **Batching is invisible and never crosses models.** Kernels reduce
//!   batch rows independently in identical element order, so a
//!   coalesced request receives bit-identical bytes to a solo run
//!   (property-tested in `tests/serving.rs`), and a batch only ever
//!   holds requests for its own pool's model.
//! - **Faults stay contained — per tenant.** A panicking batch is
//!   absorbed at the worker's isolation boundary
//!   ([`ServeError::WorkerCrashed`]), transient failures retry under a
//!   bounded-backoff [`RetryPolicy`], deterministically failing batches
//!   are bisected so only the poisoned request fails
//!   ([`ServeError::Quarantined`]), and a supervisor respawns dead
//!   worker threads within a budget. One model's poisoned traffic
//!   cannot degrade another tenant's pool (seeded chaos harness:
//!   [`FaultPlan`], `tests/chaos.rs`, experiments E22/E25).
//! - **Observability is free when off, cheap when on.** Latency
//!   percentiles come from a wait-free log2 histogram (no lock on the
//!   reply path), queue depth / high-water mark / inflight gauges ride
//!   the existing atomics, per-priority counters make class
//!   availability a snapshot read, and opt-in request tracing
//!   ([`TracePolicy`]) records a per-request stage timeline
//!   (enqueue → queue-wait → linger → execute → reply) tagged with
//!   model and priority into a lock-free ring read by
//!   [`Server::trace_spans`] — experiment E23 measures the tax.
//! - **Incidents explain themselves.** An opt-in flight recorder
//!   ([`JournalPolicy`]) journals admission, shed, displacement, retry,
//!   quarantine and worker-crash events with causal links
//!   ([`Server::journal_chain`] answers "what shed this request?"),
//!   and an opt-in SLO engine ([`SloPolicy`]) evaluates availability
//!   and p99-latency objectives as multi-window burn rates on the
//!   submission-seq clock — with `drive_health`, a firing alert flips
//!   every pool to [`Health::Degraded`] shedding, and each shed cites
//!   the alert event that caused it (experiment E28 measures the tax
//!   and checks the accounting is exact).

pub mod error;
pub mod metrics;
mod pool;
pub mod resilience;
pub mod routing;
pub mod server;

pub use error::ServeError;
pub use metrics::MetricsSnapshot;
pub use resilience::{FaultPlan, Health, ResilienceConfig, RetryPolicy};
pub use routing::{ModelConfig, Priority, SubmitRequest};
pub use server::{
    BatchPolicy, GoldenPolicy, JournalPolicy, ServeConfig, ServeConfigBuilder, Server, SloPolicy,
    Ticket, TracePolicy, DEFAULT_MODEL,
};
// Journal and SLO vocabulary, so callers can chain causes and read
// burn state without depending on vedliot-obs directly.
pub use vedliot_obs::{
    BurnWindows, CauseId, Event, EventKind, Objective, Slo, SloState, SloTransition,
};
