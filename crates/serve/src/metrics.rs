//! Serving counters and latency tracking.
//!
//! The counters are atomic so workers update them without taking the
//! queue lock, and the latency distribution is a wait-free
//! log2-bucketed [`vedliot_obs::Histogram`] — recording a latency is
//! five relaxed atomic ops and never blocks. Percentiles come from the
//! histogram snapshot (accurate to within one power-of-two bucket).
//!
//! Since the multi-tenant gateway, each model pool owns one [`Metrics`]
//! store, and three counters are additionally split by
//! [`Priority`](crate::Priority) class (`submitted`, `served`, `shed`)
//! so per-class availability — the E25 acceptance metric — falls out of
//! a snapshot directly. [`MetricsSnapshot::merge`] folds pool snapshots
//! into the gateway-wide aggregate; [`MetricsSnapshot::labelled_export`]
//! attaches the model key as a label on every exported metric.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use vedliot_obs::hist::HistogramSnapshot;
use vedliot_obs::{Export, Exportable, Histogram, Metric};

/// Exporter labels for the three priority classes, in
/// [`Priority::index`](crate::Priority::index) order.
const PRIORITY_LABELS: [&str; 3] = ["high", "normal", "batch"];

/// Live metric store shared by a pool's front door and its workers.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    submitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    // Per-priority-class splits, indexed by `Priority::index`.
    // `shed` counts into `rejected` too (a labelled subset).
    submitted_by_priority: [AtomicU64; 3],
    served_by_priority: [AtomicU64; 3],
    shed_by_priority: [AtomicU64; 3],
    batches: AtomicU64,
    batched_samples: AtomicU64,
    // Gauges: current queue occupancy, its high-water mark, and
    // requests dequeued but not yet replied to.
    queue_depth: AtomicU64,
    queue_hwm: AtomicU64,
    inflight: AtomicU64,
    // Resilience counters (see DESIGN.md §7).
    panics_absorbed: AtomicU64,
    worker_crashes: AtomicU64,
    respawned: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    golden_mismatches: AtomicU64,
    latency: Histogram,
}

impl Metrics {
    /// Records one submission of the given priority class.
    pub(crate) fn inc_submitted(&self, class: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.submitted_by_priority[class].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by priority-class admission (evicted
    /// for higher-priority work, or refused while its class was shed).
    /// Shed requests count into `rejected` — a labelled subset, like
    /// `quarantined` inside `failed`.
    pub(crate) fn inc_shed(&self, class: usize) {
        self.shed_by_priority[class].fetch_add(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request entering the queue, maintaining the
    /// high-water mark.
    pub(crate) fn queue_pushed(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records `n` requests leaving the queue (drained into a batch,
    /// purged, or evicted).
    pub(crate) fn queue_popped(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records `n` requests entering execution (dequeued, not replied).
    pub(crate) fn inflight_add(&self, n: u64) {
        self.inflight.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests replied to (any outcome).
    pub(crate) fn inflight_sub(&self, n: u64) {
        self.inflight.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records one panic converted to a typed error at the isolation
    /// boundary (the worker thread survived).
    pub(crate) fn inc_panic_absorbed(&self) {
        self.panics_absorbed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker thread death.
    pub(crate) fn inc_worker_crash(&self) {
        self.worker_crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// Current worker-crash count (drives [`Health::Degraded`](crate::Health)).
    pub(crate) fn worker_crashes(&self) -> u64 {
        self.worker_crashes.load(Ordering::Relaxed)
    }

    /// Records one supervisor respawn of a crashed worker.
    pub(crate) fn inc_respawned(&self) {
        self.respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch retry attempt.
    pub(crate) fn inc_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records requests failed as quarantined (also counted in
    /// `failed`; quarantined is a labelled subset).
    pub(crate) fn add_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one golden-check divergence (SEU detection, §IV-B).
    pub(crate) fn inc_golden_mismatch(&self) {
        self.golden_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed batch of `n` requests.
    pub(crate) fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples.fetch_add(n, Ordering::Relaxed);
        self.served.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one served request of the given priority class (the
    /// total is kept by [`Metrics::record_batch`]).
    pub(crate) fn inc_served(&self, class: usize) {
        self.served_by_priority[class].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's queue-to-reply latency. Wait-free: this
    /// sits on the reply path of every request, concurrently across
    /// all workers.
    pub(crate) fn record_latency(&self, micros: u64) {
        self.latency.record(micros);
    }

    /// Takes a consistent point-in-time snapshot.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let latency_us = self.latency.snapshot();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_samples = self.batched_samples.load(Ordering::Relaxed);
        let by = |arr: &[AtomicU64; 3]| {
            [
                arr[0].load(Ordering::Relaxed),
                arr[1].load(Ordering::Relaxed),
                arr[2].load(Ordering::Relaxed),
            ]
        };
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            submitted_by_priority: by(&self.submitted_by_priority),
            served_by_priority: by(&self.served_by_priority),
            shed_by_priority: by(&self.shed_by_priority),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_samples as f64 / batches as f64
            },
            p50_latency_us: latency_us.quantile(0.50),
            p99_latency_us: latency_us.quantile(0.99),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_hwm: self.queue_hwm.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            panics_absorbed: self.panics_absorbed.load(Ordering::Relaxed),
            worker_crashes: self.worker_crashes.load(Ordering::Relaxed),
            respawned: self.respawned.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            golden_mismatches: self.golden_mismatches.load(Ordering::Relaxed),
            latency_us,
        }
    }
}

/// Point-in-time serving statistics (one pool, or a gateway aggregate
/// built with [`MetricsSnapshot::merge`]).
///
/// The counters partition every submission: a request ends up in
/// exactly one of `served`, `rejected`, `timed_out` or `failed`, so
/// `served + rejected + timed_out + failed == submitted` once the
/// server has drained. The resilience counters (`panics_absorbed`,
/// `worker_crashes`, `respawned`, `retries`, `quarantined`,
/// `golden_mismatches`) are observability side-channels, not part of
/// the partition — `quarantined` requests are already counted in
/// `failed`, and shed requests in `rejected`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue plus those rejected at the door.
    pub submitted: u64,
    /// Requests answered with a model output.
    pub served: u64,
    /// Requests rejected because the gateway queue was full, the model
    /// quota was exhausted, or priority-class admission shed them.
    pub rejected: u64,
    /// Requests purged because their deadline expired before execution.
    pub timed_out: u64,
    /// Requests answered with an execution error.
    pub failed: u64,
    /// `submitted` split by priority class, indexed `[high, normal,
    /// batch]` (see [`Priority::index`](crate::Priority::index)).
    pub submitted_by_priority: [u64; 3],
    /// `served` split by priority class.
    pub served_by_priority: [u64; 3],
    /// Requests shed by priority-class admission, split by the shed
    /// request's class (a labelled subset of `rejected`).
    pub shed_by_priority: [u64; 3],
    /// Batched forward passes executed.
    pub batches: u64,
    /// Mean requests per executed batch (0 when no batches ran).
    pub mean_batch: f64,
    /// Median queue-to-reply latency in microseconds (histogram
    /// estimate, within one log2 bucket of exact).
    pub p50_latency_us: u64,
    /// 99th-percentile queue-to-reply latency in microseconds.
    pub p99_latency_us: u64,
    /// Full queue-to-reply latency distribution.
    pub latency_us: HistogramSnapshot,
    /// Requests sitting in the queue right now.
    pub queue_depth: u64,
    /// Highest queue occupancy ever observed. In a merged aggregate
    /// this is the *sum* of per-pool high-water marks — an upper bound
    /// on simultaneous occupancy, not an observation of it.
    pub queue_hwm: u64,
    /// Requests dequeued into batches but not yet replied to.
    pub inflight: u64,
    /// Panics caught at the isolation boundary and converted to typed
    /// errors (the worker survived).
    pub panics_absorbed: u64,
    /// Worker threads that died (panicked outside isolation).
    pub worker_crashes: u64,
    /// Crashed workers replaced by the supervisor.
    pub respawned: u64,
    /// Batch retry attempts after transient failures.
    pub retries: u64,
    /// Requests failed as poisoned after quarantine bisection
    /// (a labelled subset of `failed`).
    pub quarantined: u64,
    /// Golden-check divergences reported by the robustness service
    /// (deployed output ≠ golden-copy output — SEU detection, §IV-B).
    pub golden_mismatches: u64,
}

impl MetricsSnapshot {
    /// An all-zero snapshot — the identity element of
    /// [`MetricsSnapshot::merge`].
    #[must_use]
    pub fn empty() -> Self {
        Metrics::default().snapshot()
    }

    /// Whether every submitted request received exactly one reply.
    #[must_use]
    pub fn accounted_for(&self) -> bool {
        self.served + self.rejected + self.timed_out + self.failed == self.submitted
    }

    /// Total requests shed by priority-class admission across classes.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_by_priority.iter().sum()
    }

    /// Folds `other` into `self`: counters and the latency histogram
    /// add, the batch mean re-weights by batch count, and the latency
    /// percentiles are recomputed from the merged distribution. Used by
    /// the gateway to aggregate per-pool snapshots (live and retired).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        // Weighted mean before the batch counters move. Exact in f64:
        // mean_batch · batches is the integer batched-samples count.
        let total_batches = self.batches + other.batches;
        self.mean_batch = if total_batches == 0 {
            0.0
        } else {
            (self.mean_batch * self.batches as f64 + other.mean_batch * other.batches as f64)
                / total_batches as f64
        };
        self.batches = total_batches;
        self.submitted += other.submitted;
        self.served += other.served;
        self.rejected += other.rejected;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
        for i in 0..3 {
            self.submitted_by_priority[i] += other.submitted_by_priority[i];
            self.served_by_priority[i] += other.served_by_priority[i];
            self.shed_by_priority[i] += other.shed_by_priority[i];
        }
        self.queue_depth += other.queue_depth;
        self.queue_hwm += other.queue_hwm;
        self.inflight += other.inflight;
        self.panics_absorbed += other.panics_absorbed;
        self.worker_crashes += other.worker_crashes;
        self.respawned += other.respawned;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.golden_mismatches += other.golden_mismatches;
        self.latency_us.merge(&other.latency_us);
        self.p50_latency_us = self.latency_us.quantile(0.50);
        self.p99_latency_us = self.latency_us.quantile(0.99);
    }

    /// Like [`Exportable::export`] but with a `model` label on every
    /// metric — how the gateway publishes per-tenant series side by
    /// side through one exporter.
    #[must_use]
    pub fn labelled_export(&self, model: &str) -> Export {
        let mut export = self.export();
        for metric in &mut export.metrics {
            metric.labels.insert(0, ("model".into(), model.into()));
        }
        export
    }
}

impl Exportable for MetricsSnapshot {
    fn export(&self) -> Export {
        let mut metrics = vec![
            Metric::counter(
                "submitted",
                "requests accepted or rejected at the door",
                self.submitted,
            ),
            Metric::counter(
                "served",
                "requests answered with a model output",
                self.served,
            ),
            Metric::counter(
                "rejected",
                "requests rejected because the queue was full",
                self.rejected,
            ),
            Metric::counter(
                "timed_out",
                "requests purged past their deadline",
                self.timed_out,
            ),
            Metric::counter(
                "failed",
                "requests answered with an execution error",
                self.failed,
            ),
            Metric::counter(
                "shed",
                "requests shed by priority-class admission",
                self.shed(),
            ),
        ];
        for (i, label) in PRIORITY_LABELS.iter().enumerate() {
            metrics.push(
                Metric::counter(
                    "submitted_by_priority",
                    "requests submitted in this priority class",
                    self.submitted_by_priority[i],
                )
                .with_label("priority", *label),
            );
            metrics.push(
                Metric::counter(
                    "served_by_priority",
                    "requests served in this priority class",
                    self.served_by_priority[i],
                )
                .with_label("priority", *label),
            );
            metrics.push(
                Metric::counter(
                    "shed_by_priority",
                    "requests shed in this priority class",
                    self.shed_by_priority[i],
                )
                .with_label("priority", *label),
            );
        }
        metrics.extend([
            Metric::counter("batches", "batched forward passes executed", self.batches),
            Metric::gauge(
                "mean_batch",
                "mean requests per executed batch",
                self.mean_batch,
            ),
            Metric::gauge(
                "queue_depth",
                "requests sitting in the queue",
                self.queue_depth as f64,
            ),
            Metric::gauge(
                "queue_hwm",
                "highest queue occupancy observed",
                self.queue_hwm as f64,
            ),
            Metric::gauge(
                "inflight",
                "requests dequeued but not yet replied to",
                self.inflight as f64,
            ),
            Metric::counter(
                "panics_absorbed",
                "panics converted to typed errors",
                self.panics_absorbed,
            ),
            Metric::counter(
                "worker_crashes",
                "worker threads that died",
                self.worker_crashes,
            ),
            Metric::counter("respawned", "crashed workers replaced", self.respawned),
            Metric::counter("retries", "batch retry attempts", self.retries),
            Metric::counter(
                "quarantined",
                "requests failed as poisoned",
                self.quarantined,
            ),
            Metric::counter(
                "golden_mismatches",
                "golden-check divergences",
                self.golden_mismatches,
            ),
            Metric::histogram(
                "latency_us",
                "queue-to-reply latency in microseconds",
                self.latency_us.clone(),
            ),
        ]);
        Export {
            subsystem: "serve".into(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_obs::hist::bucket_of;

    #[test]
    fn counters_partition_submissions() {
        let m = Metrics::default();
        for i in 0..10 {
            m.inc_submitted(i % 3);
        }
        m.inc_rejected();
        m.inc_timed_out();
        m.record_batch(7);
        m.add_failed(1);
        let s = m.snapshot();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.submitted_by_priority, [4, 3, 3]);
        assert_eq!(s.served, 7);
        assert!(s.accounted_for());
        assert_eq!(s.batches, 1);
        assert!((s.mean_batch - 7.0).abs() < 1e-9);
    }

    #[test]
    fn shed_is_a_subset_of_rejected() {
        let m = Metrics::default();
        for _ in 0..4 {
            m.inc_submitted(2);
        }
        m.record_batch(2);
        m.inc_rejected();
        m.inc_shed(2);
        let s = m.snapshot();
        assert_eq!(s.rejected, 2, "shed also counts into rejected");
        assert_eq!(s.shed_by_priority, [0, 0, 1]);
        assert_eq!(s.shed(), 1);
        assert!(s.accounted_for());
    }

    #[test]
    fn quarantined_is_a_subset_of_failed() {
        let m = Metrics::default();
        for _ in 0..5 {
            m.inc_submitted(1);
        }
        m.record_batch(3);
        m.add_failed(1);
        m.add_quarantined(1);
        let s = m.snapshot();
        assert_eq!(s.failed, 2, "quarantine also counts into failed");
        assert_eq!(s.quarantined, 1);
        assert!(s.accounted_for());
    }

    #[test]
    fn resilience_counters_are_observability_only() {
        let m = Metrics::default();
        m.inc_submitted(1);
        m.record_batch(1);
        m.inc_panic_absorbed();
        m.inc_worker_crash();
        m.inc_respawned();
        m.inc_retry();
        m.inc_golden_mismatch();
        let s = m.snapshot();
        // None of them perturb the accounting partition.
        assert!(s.accounted_for());
        assert_eq!(
            (s.panics_absorbed, s.worker_crashes, s.respawned),
            (1, 1, 1)
        );
        assert_eq!((s.retries, s.golden_mismatches), (1, 1));
        assert_eq!(m.worker_crashes(), 1);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let m = Metrics::default();
        for us in 1..=100 {
            m.record_latency(us);
        }
        let s = m.snapshot();
        // Exact order statistics with the histogram's rank convention
        // would give p50 = 50 and p99 = 99; the bucket-midpoint
        // estimate must land in the same log2 bucket.
        assert_eq!(bucket_of(s.p50_latency_us), bucket_of(50));
        assert_eq!(bucket_of(s.p99_latency_us), bucket_of(99));
        // The full distribution is in the snapshot too.
        assert_eq!(s.latency_us.count, 100);
        assert_eq!(s.latency_us.min, 1);
        assert_eq!(s.latency_us.max, 100);
    }

    #[test]
    fn histogram_keeps_the_full_distribution() {
        let m = Metrics::default();
        for us in 0..5000u64 {
            m.record_latency(us);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_us.count, 5000);
        assert_eq!(s.latency_us.sum, (0..5000).sum::<u64>());
        assert_eq!((s.latency_us.min, s.latency_us.max), (0, 4999));
    }

    #[test]
    fn gauges_track_queue_and_inflight() {
        let m = Metrics::default();
        for _ in 0..4 {
            m.queue_pushed();
        }
        m.queue_popped(3);
        m.inflight_add(3);
        m.queue_pushed();
        m.inflight_sub(2);
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_hwm, 4);
        assert_eq!(s.inflight, 1);
    }

    #[test]
    fn empty_window_reports_zero() {
        let s = MetricsSnapshot::empty();
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.p99_latency_us, 0);
        assert_eq!(s.latency_us.count, 0);
        assert!(s.accounted_for());
    }

    #[test]
    fn merge_sums_counters_and_reweights_the_mean() {
        let a = Metrics::default();
        for _ in 0..3 {
            a.inc_submitted(0);
        }
        a.record_batch(3); // one batch of 3
        for _ in 0..3 {
            a.inc_served(0);
        }
        a.record_latency(10);
        let b = Metrics::default();
        b.inc_submitted(2);
        b.record_batch(1); // one batch of 1
        b.inc_served(2);
        b.inc_submitted(2);
        b.inc_shed(2);
        b.record_latency(1000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.submitted, 5);
        assert_eq!(merged.served, 4);
        assert_eq!(merged.served_by_priority, [3, 0, 1]);
        assert_eq!(merged.shed_by_priority, [0, 0, 1]);
        assert_eq!(merged.batches, 2);
        assert!(
            (merged.mean_batch - 2.0).abs() < 1e-9,
            "(3 + 1) / 2 batches"
        );
        assert_eq!(merged.latency_us.count, 2);
        assert_eq!(merged.latency_us.min, 10);
        assert_eq!(merged.latency_us.max, 1000);
        assert!(merged.accounted_for());
        // Identity element.
        let mut with_empty = a.snapshot();
        with_empty.merge(&MetricsSnapshot::empty());
        assert_eq!(with_empty, a.snapshot());
    }

    #[test]
    fn snapshot_exports_all_subsystem_metrics() {
        let m = Metrics::default();
        m.inc_submitted(0);
        m.record_batch(1);
        m.inc_served(0);
        m.record_latency(250);
        let export = m.snapshot().export();
        assert_eq!(export.subsystem, "serve");
        let json = export.to_json();
        assert!(json.contains("\"name\":\"latency_us\""));
        assert!(json.contains("\"labels\":{\"priority\":\"high\"}"));
        assert_eq!(vedliot_obs::Export::from_json(&json), Some(export.clone()));
        let prom = export.to_prometheus();
        assert!(prom.contains("vedliot_serve_served 1\n"));
        assert!(prom.contains("vedliot_serve_served_by_priority{priority=\"high\"} 1\n"));
        assert!(prom.contains("vedliot_serve_latency_us_count 1\n"));
    }

    #[test]
    fn labelled_export_tags_every_metric_with_the_model() {
        let m = Metrics::default();
        m.inc_submitted(1);
        m.record_batch(1);
        m.inc_served(1);
        let export = m.snapshot().labelled_export("lenet5");
        for metric in &export.metrics {
            assert_eq!(
                metric.labels.first().map(|(k, v)| (k.as_str(), v.as_str())),
                Some(("model", "lenet5")),
                "{} missing the model label",
                metric.name
            );
        }
        let prom = export.to_prometheus();
        assert!(
            prom.contains("vedliot_serve_served{model=\"lenet5\"} 1\n"),
            "{prom}"
        );
        assert!(prom.contains(
            "vedliot_serve_served_by_priority{model=\"lenet5\",priority=\"normal\"} 1\n"
        ));
    }
}
