//! Serving counters and latency tracking.
//!
//! The counters are atomic so workers update them without taking the
//! queue lock — and since this PR, so is the latency distribution: the
//! old `Mutex<VecDeque>` rolling window made every reply serialize on
//! one lock at the hottest point of the reply path. It is replaced by a
//! wait-free log2-bucketed [`vedliot_obs::Histogram`], so recording a
//! latency is five relaxed atomic ops and never blocks. Percentiles
//! come from the histogram snapshot (accurate to within one power-of-
//! two bucket) instead of exact order statistics over the last 1024
//! samples — the E23 bench quantifies the before/after.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use vedliot_obs::hist::HistogramSnapshot;
use vedliot_obs::{Export, Exportable, Histogram, Metric, MetricValue};

/// Live metric store shared by the server front door and its workers.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    submitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    // Gauges: current queue occupancy, its high-water mark, and
    // requests dequeued but not yet replied to.
    queue_depth: AtomicU64,
    queue_hwm: AtomicU64,
    inflight: AtomicU64,
    // Resilience counters (see DESIGN.md §7).
    panics_absorbed: AtomicU64,
    worker_crashes: AtomicU64,
    respawned: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    golden_mismatches: AtomicU64,
    latency: Histogram,
}

impl Metrics {
    pub(crate) fn inc_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request entering the queue, maintaining the
    /// high-water mark.
    pub(crate) fn queue_pushed(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records `n` requests leaving the queue (drained into a batch or
    /// purged).
    pub(crate) fn queue_popped(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records `n` requests entering execution (dequeued, not replied).
    pub(crate) fn inflight_add(&self, n: u64) {
        self.inflight.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests replied to (any outcome).
    pub(crate) fn inflight_sub(&self, n: u64) {
        self.inflight.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records one panic converted to a typed error at the isolation
    /// boundary (the worker thread survived).
    pub(crate) fn inc_panic_absorbed(&self) {
        self.panics_absorbed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker thread death.
    pub(crate) fn inc_worker_crash(&self) {
        self.worker_crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// Current worker-crash count (drives [`Health::Degraded`](crate::Health)).
    pub(crate) fn worker_crashes(&self) -> u64 {
        self.worker_crashes.load(Ordering::Relaxed)
    }

    /// Records one supervisor respawn of a crashed worker.
    pub(crate) fn inc_respawned(&self) {
        self.respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch retry attempt.
    pub(crate) fn inc_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records requests failed as quarantined (also counted in
    /// `failed`; quarantined is a labelled subset).
    pub(crate) fn add_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one golden-check divergence (SEU detection, §IV-B).
    pub(crate) fn inc_golden_mismatch(&self) {
        self.golden_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed batch of `n` requests.
    pub(crate) fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples.fetch_add(n, Ordering::Relaxed);
        self.served.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request's queue-to-reply latency. Wait-free: this
    /// sits on the reply path of every request, concurrently across
    /// all workers.
    pub(crate) fn record_latency(&self, micros: u64) {
        self.latency.record(micros);
    }

    /// Takes a consistent point-in-time snapshot.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let latency_us = self.latency.snapshot();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_samples = self.batched_samples.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_samples as f64 / batches as f64
            },
            p50_latency_us: latency_us.quantile(0.50),
            p99_latency_us: latency_us.quantile(0.99),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_hwm: self.queue_hwm.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            panics_absorbed: self.panics_absorbed.load(Ordering::Relaxed),
            worker_crashes: self.worker_crashes.load(Ordering::Relaxed),
            respawned: self.respawned.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            golden_mismatches: self.golden_mismatches.load(Ordering::Relaxed),
            latency_us,
        }
    }
}

/// Point-in-time serving statistics.
///
/// The counters partition every submission: a request ends up in
/// exactly one of `served`, `rejected`, `timed_out` or `failed`, so
/// `served + rejected + timed_out + failed == submitted` once the
/// server has drained. The resilience counters (`panics_absorbed`,
/// `worker_crashes`, `respawned`, `retries`, `quarantined`,
/// `golden_mismatches`) are observability side-channels, not part of
/// the partition — `quarantined` requests are already counted in
/// `failed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue plus those rejected at the door.
    pub submitted: u64,
    /// Requests answered with a model output.
    pub served: u64,
    /// Requests rejected because the queue was full (including load
    /// shedding while degraded).
    pub rejected: u64,
    /// Requests purged because their deadline expired before execution.
    pub timed_out: u64,
    /// Requests answered with an execution error.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Mean requests per executed batch (0 when no batches ran).
    pub mean_batch: f64,
    /// Median queue-to-reply latency in microseconds (histogram
    /// estimate, within one log2 bucket of exact).
    pub p50_latency_us: u64,
    /// 99th-percentile queue-to-reply latency in microseconds.
    pub p99_latency_us: u64,
    /// Full queue-to-reply latency distribution.
    pub latency_us: HistogramSnapshot,
    /// Requests sitting in the queue right now.
    pub queue_depth: u64,
    /// Highest queue occupancy ever observed.
    pub queue_hwm: u64,
    /// Requests dequeued into batches but not yet replied to.
    pub inflight: u64,
    /// Panics caught at the isolation boundary and converted to typed
    /// errors (the worker survived).
    pub panics_absorbed: u64,
    /// Worker threads that died (panicked outside isolation).
    pub worker_crashes: u64,
    /// Crashed workers replaced by the supervisor.
    pub respawned: u64,
    /// Batch retry attempts after transient failures.
    pub retries: u64,
    /// Requests failed as poisoned after quarantine bisection
    /// (a labelled subset of `failed`).
    pub quarantined: u64,
    /// Golden-check divergences reported by the robustness service
    /// (deployed output ≠ golden-copy output — SEU detection, §IV-B).
    pub golden_mismatches: u64,
}

impl MetricsSnapshot {
    /// Whether every submitted request received exactly one reply.
    #[must_use]
    pub fn accounted_for(&self) -> bool {
        self.served + self.rejected + self.timed_out + self.failed == self.submitted
    }
}

impl Exportable for MetricsSnapshot {
    fn export(&self) -> Export {
        let counter = |name: &str, help: &str, value: u64| Metric {
            name: name.into(),
            help: help.into(),
            value: MetricValue::Counter(value),
        };
        Export {
            subsystem: "serve".into(),
            metrics: vec![
                counter(
                    "submitted",
                    "requests accepted or rejected at the door",
                    self.submitted,
                ),
                counter(
                    "served",
                    "requests answered with a model output",
                    self.served,
                ),
                counter(
                    "rejected",
                    "requests rejected because the queue was full",
                    self.rejected,
                ),
                counter(
                    "timed_out",
                    "requests purged past their deadline",
                    self.timed_out,
                ),
                counter(
                    "failed",
                    "requests answered with an execution error",
                    self.failed,
                ),
                counter("batches", "batched forward passes executed", self.batches),
                Metric {
                    name: "mean_batch".into(),
                    help: "mean requests per executed batch".into(),
                    value: MetricValue::Gauge(self.mean_batch),
                },
                Metric {
                    name: "queue_depth".into(),
                    help: "requests sitting in the queue".into(),
                    value: MetricValue::Gauge(self.queue_depth as f64),
                },
                Metric {
                    name: "queue_hwm".into(),
                    help: "highest queue occupancy observed".into(),
                    value: MetricValue::Gauge(self.queue_hwm as f64),
                },
                Metric {
                    name: "inflight".into(),
                    help: "requests dequeued but not yet replied to".into(),
                    value: MetricValue::Gauge(self.inflight as f64),
                },
                counter(
                    "panics_absorbed",
                    "panics converted to typed errors",
                    self.panics_absorbed,
                ),
                counter(
                    "worker_crashes",
                    "worker threads that died",
                    self.worker_crashes,
                ),
                counter("respawned", "crashed workers replaced", self.respawned),
                counter("retries", "batch retry attempts", self.retries),
                counter(
                    "quarantined",
                    "requests failed as poisoned",
                    self.quarantined,
                ),
                counter(
                    "golden_mismatches",
                    "golden-check divergences",
                    self.golden_mismatches,
                ),
                Metric {
                    name: "latency_us".into(),
                    help: "queue-to-reply latency in microseconds".into(),
                    value: MetricValue::Histogram(self.latency_us.clone()),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_obs::hist::bucket_of;

    #[test]
    fn counters_partition_submissions() {
        let m = Metrics::default();
        for _ in 0..10 {
            m.inc_submitted();
        }
        m.inc_rejected();
        m.inc_timed_out();
        m.record_batch(7);
        m.add_failed(1);
        let s = m.snapshot();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.served, 7);
        assert!(s.accounted_for());
        assert_eq!(s.batches, 1);
        assert!((s.mean_batch - 7.0).abs() < 1e-9);
    }

    #[test]
    fn quarantined_is_a_subset_of_failed() {
        let m = Metrics::default();
        for _ in 0..5 {
            m.inc_submitted();
        }
        m.record_batch(3);
        m.add_failed(1);
        m.add_quarantined(1);
        let s = m.snapshot();
        assert_eq!(s.failed, 2, "quarantine also counts into failed");
        assert_eq!(s.quarantined, 1);
        assert!(s.accounted_for());
    }

    #[test]
    fn resilience_counters_are_observability_only() {
        let m = Metrics::default();
        m.inc_submitted();
        m.record_batch(1);
        m.inc_panic_absorbed();
        m.inc_worker_crash();
        m.inc_respawned();
        m.inc_retry();
        m.inc_golden_mismatch();
        let s = m.snapshot();
        // None of them perturb the accounting partition.
        assert!(s.accounted_for());
        assert_eq!(
            (s.panics_absorbed, s.worker_crashes, s.respawned),
            (1, 1, 1)
        );
        assert_eq!((s.retries, s.golden_mismatches), (1, 1));
        assert_eq!(m.worker_crashes(), 1);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let m = Metrics::default();
        for us in 1..=100 {
            m.record_latency(us);
        }
        let s = m.snapshot();
        // Exact order statistics with the histogram's rank convention
        // would give p50 = 50 and p99 = 99; the bucket-midpoint
        // estimate must land in the same log2 bucket.
        assert_eq!(bucket_of(s.p50_latency_us), bucket_of(50));
        assert_eq!(bucket_of(s.p99_latency_us), bucket_of(99));
        // The full distribution is in the snapshot too.
        assert_eq!(s.latency_us.count, 100);
        assert_eq!(s.latency_us.min, 1);
        assert_eq!(s.latency_us.max, 100);
    }

    #[test]
    fn histogram_keeps_the_full_distribution() {
        // The old rolling window forgot everything past 1024 samples;
        // the histogram keeps exact count/sum/min/max forever.
        let m = Metrics::default();
        for us in 0..5000u64 {
            m.record_latency(us);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_us.count, 5000);
        assert_eq!(s.latency_us.sum, (0..5000).sum::<u64>());
        assert_eq!((s.latency_us.min, s.latency_us.max), (0, 4999));
    }

    #[test]
    fn gauges_track_queue_and_inflight() {
        let m = Metrics::default();
        for _ in 0..4 {
            m.queue_pushed();
        }
        m.queue_popped(3);
        m.inflight_add(3);
        m.queue_pushed();
        m.inflight_sub(2);
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_hwm, 4);
        assert_eq!(s.inflight, 1);
    }

    #[test]
    fn empty_window_reports_zero() {
        let s = Metrics::default().snapshot();
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.p99_latency_us, 0);
        assert_eq!(s.latency_us.count, 0);
        assert!(s.accounted_for());
    }

    #[test]
    fn snapshot_exports_all_subsystem_metrics() {
        let m = Metrics::default();
        m.inc_submitted();
        m.record_batch(1);
        m.record_latency(250);
        let export = m.snapshot().export();
        assert_eq!(export.subsystem, "serve");
        let json = export.to_json();
        assert!(json.contains("\"name\":\"latency_us\""));
        assert_eq!(vedliot_obs::Export::from_json(&json), Some(export.clone()));
        let prom = export.to_prometheus();
        assert!(prom.contains("vedliot_serve_served 1\n"));
        assert!(prom.contains("vedliot_serve_latency_us_count 1\n"));
    }
}
