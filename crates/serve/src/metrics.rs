//! Serving counters and latency tracking.
//!
//! Mirrors the style of `vedliot_recs::telemetry`: cheap always-on
//! counters plus a bounded rolling window for distribution statistics,
//! snapshotted into a serialisable report. The counters are atomic so
//! workers update them without taking the queue lock.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of per-request latency samples retained for percentiles.
const LATENCY_WINDOW: usize = 1024;

/// Live metric store shared by the server front door and its workers.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    submitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    // Resilience counters (see DESIGN.md §7).
    panics_absorbed: AtomicU64,
    worker_crashes: AtomicU64,
    respawned: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    golden_mismatches: AtomicU64,
    latencies_us: Mutex<VecDeque<u64>>,
}

impl Metrics {
    pub(crate) fn inc_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one panic converted to a typed error at the isolation
    /// boundary (the worker thread survived).
    pub(crate) fn inc_panic_absorbed(&self) {
        self.panics_absorbed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker thread death.
    pub(crate) fn inc_worker_crash(&self) {
        self.worker_crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// Current worker-crash count (drives [`Health::Degraded`](crate::Health)).
    pub(crate) fn worker_crashes(&self) -> u64 {
        self.worker_crashes.load(Ordering::Relaxed)
    }

    /// Records one supervisor respawn of a crashed worker.
    pub(crate) fn inc_respawned(&self) {
        self.respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch retry attempt.
    pub(crate) fn inc_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records requests failed as quarantined (also counted in
    /// `failed`; quarantined is a labelled subset).
    pub(crate) fn add_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one golden-check divergence (SEU detection, §IV-B).
    pub(crate) fn inc_golden_mismatch(&self) {
        self.golden_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed batch of `n` requests.
    pub(crate) fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples.fetch_add(n, Ordering::Relaxed);
        self.served.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request's queue-to-reply latency.
    pub(crate) fn record_latency(&self, micros: u64) {
        let mut window = self
            .latencies_us
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        window.push_back(micros);
        if window.len() > LATENCY_WINDOW {
            window.pop_front();
        }
    }

    /// Takes a consistent point-in-time snapshot.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut window: Vec<u64> = {
            let w = self
                .latencies_us
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            w.iter().copied().collect()
        };
        window.sort_unstable();
        let percentile = |p: f64| -> u64 {
            if window.is_empty() {
                return 0;
            }
            let rank = (p * (window.len() - 1) as f64).round() as usize;
            window[rank.min(window.len() - 1)]
        };
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_samples = self.batched_samples.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_samples as f64 / batches as f64
            },
            p50_latency_us: percentile(0.50),
            p99_latency_us: percentile(0.99),
            panics_absorbed: self.panics_absorbed.load(Ordering::Relaxed),
            worker_crashes: self.worker_crashes.load(Ordering::Relaxed),
            respawned: self.respawned.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            golden_mismatches: self.golden_mismatches.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time serving statistics.
///
/// The counters partition every submission: a request ends up in
/// exactly one of `served`, `rejected`, `timed_out` or `failed`, so
/// `served + rejected + timed_out + failed == submitted` once the
/// server has drained. The resilience counters (`panics_absorbed`,
/// `worker_crashes`, `respawned`, `retries`, `quarantined`,
/// `golden_mismatches`) are observability side-channels, not part of
/// the partition — `quarantined` requests are already counted in
/// `failed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue plus those rejected at the door.
    pub submitted: u64,
    /// Requests answered with a model output.
    pub served: u64,
    /// Requests rejected because the queue was full (including load
    /// shedding while degraded).
    pub rejected: u64,
    /// Requests purged because their deadline expired before execution.
    pub timed_out: u64,
    /// Requests answered with an execution error.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Mean requests per executed batch (0 when no batches ran).
    pub mean_batch: f64,
    /// Median queue-to-reply latency in microseconds (rolling window).
    pub p50_latency_us: u64,
    /// 99th-percentile queue-to-reply latency in microseconds.
    pub p99_latency_us: u64,
    /// Panics caught at the isolation boundary and converted to typed
    /// errors (the worker survived).
    pub panics_absorbed: u64,
    /// Worker threads that died (panicked outside isolation).
    pub worker_crashes: u64,
    /// Crashed workers replaced by the supervisor.
    pub respawned: u64,
    /// Batch retry attempts after transient failures.
    pub retries: u64,
    /// Requests failed as poisoned after quarantine bisection
    /// (a labelled subset of `failed`).
    pub quarantined: u64,
    /// Golden-check divergences reported by the robustness service
    /// (deployed output ≠ golden-copy output — SEU detection, §IV-B).
    pub golden_mismatches: u64,
}

impl MetricsSnapshot {
    /// Whether every submitted request received exactly one reply.
    #[must_use]
    pub fn accounted_for(&self) -> bool {
        self.served + self.rejected + self.timed_out + self.failed == self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_submissions() {
        let m = Metrics::default();
        for _ in 0..10 {
            m.inc_submitted();
        }
        m.inc_rejected();
        m.inc_timed_out();
        m.record_batch(7);
        m.add_failed(1);
        let s = m.snapshot();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.served, 7);
        assert!(s.accounted_for());
        assert_eq!(s.batches, 1);
        assert!((s.mean_batch - 7.0).abs() < 1e-9);
    }

    #[test]
    fn quarantined_is_a_subset_of_failed() {
        let m = Metrics::default();
        for _ in 0..5 {
            m.inc_submitted();
        }
        m.record_batch(3);
        m.add_failed(1);
        m.add_quarantined(1);
        let s = m.snapshot();
        assert_eq!(s.failed, 2, "quarantine also counts into failed");
        assert_eq!(s.quarantined, 1);
        assert!(s.accounted_for());
    }

    #[test]
    fn resilience_counters_are_observability_only() {
        let m = Metrics::default();
        m.inc_submitted();
        m.record_batch(1);
        m.inc_panic_absorbed();
        m.inc_worker_crash();
        m.inc_respawned();
        m.inc_retry();
        m.inc_golden_mismatch();
        let s = m.snapshot();
        // None of them perturb the accounting partition.
        assert!(s.accounted_for());
        assert_eq!(
            (s.panics_absorbed, s.worker_crashes, s.respawned),
            (1, 1, 1)
        );
        assert_eq!((s.retries, s.golden_mismatches), (1, 1));
        assert_eq!(m.worker_crashes(), 1);
    }

    #[test]
    fn percentiles_come_from_the_window() {
        let m = Metrics::default();
        for us in 1..=100 {
            m.record_latency(us);
        }
        let s = m.snapshot();
        assert_eq!(s.p50_latency_us, 51);
        assert_eq!(s.p99_latency_us, 99);
    }

    #[test]
    fn window_is_bounded() {
        let m = Metrics::default();
        for us in 0..5000u64 {
            m.record_latency(us);
        }
        let s = m.snapshot();
        // Only the most recent LATENCY_WINDOW samples survive.
        assert!(s.p50_latency_us >= (5000 - super::LATENCY_WINDOW as u64));
    }

    #[test]
    fn empty_window_reports_zero() {
        let s = Metrics::default().snapshot();
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.p99_latency_us, 0);
        assert!(s.accounted_for());
    }
}
