//! The serving front-end: bounded queue → dynamic batcher → workers.
//!
//! [`Server::start`] compiles one graph per admissible batch size
//! (`1..=max_batch`, via [`Graph::with_batch`]) and spawns a worker
//! pool. Each worker owns one arena-backed [`Runner`] per batch size,
//! so steady-state serving performs no allocation beyond the request
//! queue itself.
//!
//! The dynamic batcher coalesces single-sample submissions along axis 0
//! under two closure rules: a batch executes as soon as `max_batch`
//! requests are queued, or once the oldest queued request has lingered
//! for `max_linger`. Because every kernel reduces batch rows
//! independently in identical element order (the bit-identical batching
//! contract, see `Tensor::split_batch`), a coalesced batch returns
//! exactly the bytes each request would have received alone.

use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vedliot_nnir::exec::{Parallelism, RunOptions, Runner};
use vedliot_nnir::{Graph, Shape, Tensor};

/// Batch-closure policy for the dynamic batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait for companions before
    /// its (possibly partial) batch executes.
    pub max_linger: Duration,
}

impl BatchPolicy {
    /// Degenerate policy: every request executes alone, immediately.
    #[must_use]
    pub fn sequential() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_linger: Duration::ZERO,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_linger: Duration::from_micros(500),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded submission-queue capacity; submissions beyond it are
    /// rejected with [`ServeError::Rejected`].
    pub queue_capacity: usize,
    /// Worker threads, each owning its own set of runners.
    pub workers: usize,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Intra-batch parallelism of each worker's runners. On single-core
    /// targets leave this [`Parallelism::Serial`]; batching, not
    /// threading, is the throughput lever there.
    pub parallelism: Parallelism,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 1,
            batch: BatchPolicy::default(),
            parallelism: Parallelism::Serial,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "workers must be at least 1".into(),
            ));
        }
        if self.batch.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// One queued request.
struct Request {
    inputs: Vec<Tensor>,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<Vec<Tensor>, ServeError>>,
}

/// Queue state guarded by the server mutex.
struct QueueState {
    queue: VecDeque<Request>,
    shutting_down: bool,
}

/// State shared between the front door and the workers.
struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers: new request, or shutdown.
    work_ready: Condvar,
    metrics: Metrics,
    /// Per-sample graph input shapes (batch dimension forced to 1).
    input_shapes: Vec<Shape>,
    policy: BatchPolicy,
}

/// Handle for one submitted request. Redeem it with [`Ticket::wait`].
#[must_use = "an unredeemed ticket discards the request's result"]
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Vec<Tensor>, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers.
    ///
    /// # Errors
    ///
    /// Propagates the server's typed verdict for this request, or
    /// [`ServeError::Disconnected`] if a worker died without replying.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Like [`Ticket::wait`] but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] on timeout or a dead worker;
    /// otherwise the server's verdict.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<Tensor>, ServeError> {
        self.rx
            .recv_timeout(timeout)
            .unwrap_or(Err(ServeError::Disconnected))
    }
}

/// Batched model server.
///
/// ```
/// use std::time::Duration;
/// use vedliot_nnir::{zoo, Shape, Tensor};
/// use vedliot_serve::{ServeConfig, Server};
///
/// let graph = zoo::tiny_cnn("demo", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap();
/// let server = Server::start(&graph, ServeConfig::default()).unwrap();
/// let input = Tensor::random(Shape::nchw(1, 1, 8, 8), 7, 1.0);
/// let ticket = server.submit(vec![input], None).unwrap();
/// let outputs = ticket.wait().unwrap();
/// assert_eq!(outputs[0].shape(), &Shape::nf(1, 3));
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
}

impl Server {
    /// Compiles `graph` for batch sizes `1..=max_batch` and spawns the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero capacity, worker count
    /// or batch bound; [`ServeError::Execution`] if the graph fails
    /// validation or batch rewriting.
    pub fn start(graph: &Graph, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        graph.validate()?;
        // One graph per admissible batch size. Workers build their
        // runners against these; index k-1 serves batches of k.
        let mut graphs = Vec::with_capacity(config.batch.max_batch);
        for k in 1..=config.batch.max_batch {
            graphs.push(graph.with_batch(k)?);
        }
        let input_shapes: Vec<Shape> = graphs[0]
            .inputs()
            .iter()
            .map(|&id| {
                graphs[0]
                    .tensor_shape(id)
                    .expect("validated graph has input shapes")
                    .clone()
            })
            .collect();
        let graphs = Arc::new(graphs);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            metrics: Metrics::default(),
            input_shapes,
            policy: config.batch,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let graphs = Arc::clone(&graphs);
                let parallelism = config.parallelism;
                std::thread::Builder::new()
                    .name(format!("vedliot-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &graphs, parallelism))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(Server {
            shared,
            workers,
            queue_capacity: config.queue_capacity,
        })
    }

    /// Submits one single-sample request (one tensor per graph input,
    /// batch dimension 1) with an optional execution deadline.
    ///
    /// Returns immediately with a [`Ticket`]; the request is answered
    /// by a worker, batched with whatever else is queued.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] on an input-signature mismatch,
    /// [`ServeError::Rejected`] when the queue is full,
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(
        &self,
        inputs: Vec<Tensor>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        self.shared.metrics.inc_submitted();
        if inputs.len() != self.shared.input_shapes.len() {
            self.shared.metrics.inc_rejected();
            return Err(ServeError::InvalidInput(format!(
                "expected {} input tensors, got {}",
                self.shared.input_shapes.len(),
                inputs.len()
            )));
        }
        for (tensor, expected) in inputs.iter().zip(&self.shared.input_shapes) {
            if tensor.shape() != expected {
                self.shared.metrics.inc_rejected();
                return Err(ServeError::InvalidInput(format!(
                    "input shape {:?} does not match single-sample signature {:?}",
                    tensor.shape(),
                    expected
                )));
            }
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("serve queue lock");
            if state.shutting_down {
                self.shared.metrics.inc_rejected();
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() >= self.queue_capacity {
                self.shared.metrics.inc_rejected();
                return Err(ServeError::Rejected {
                    capacity: self.queue_capacity,
                });
            }
            state.queue.push_back(Request {
                inputs,
                deadline,
                enqueued_at: Instant::now(),
                reply: tx,
            });
        }
        self.shared.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Current serving statistics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: refuses new submissions, drains every queued
    /// request (each still gets a typed reply), joins the workers and
    /// returns the final statistics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.metrics.snapshot()
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().expect("serve queue lock");
        state.shutting_down = true;
        drop(state);
        self.shared.work_ready.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` already drained `workers`; a plain drop still
        // stops and joins the pool so no thread outlives the server.
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Replies to every queued request whose deadline has already expired
/// and drops it from the queue. Returns how many were purged.
fn purge_expired(state: &mut QueueState, metrics: &Metrics, now: Instant) -> usize {
    let before = state.queue.len();
    // VecDeque has no retain-with-side-effect order guarantee problem
    // here: replies are independent, order is irrelevant.
    state.queue.retain(|req| {
        let expired = req.deadline.is_some_and(|d| now >= d);
        if expired {
            metrics.inc_timed_out();
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded));
        }
        !expired
    });
    before - state.queue.len()
}

/// Worker body: form a batch under the lock, execute it outside.
fn worker_loop(shared: &Shared, graphs: &[Graph], parallelism: Parallelism) {
    // Runners are built once and reused for the worker's lifetime, so
    // every batch after the first hits warm arenas and cached weights.
    let mut runners: Vec<Runner<'_>> = graphs
        .iter()
        .map(|g| Runner::builder().parallelism(parallelism).build(g))
        .collect();
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("serve queue lock");
            loop {
                let now = Instant::now();
                purge_expired(&mut state, &shared.metrics, now);
                if let Some(oldest) = state.queue.front() {
                    let full = state.queue.len() >= shared.policy.max_batch;
                    let linger_until = oldest.enqueued_at + shared.policy.max_linger;
                    if full || state.shutting_down || now >= linger_until {
                        let take = state.queue.len().min(shared.policy.max_batch);
                        break state.queue.drain(..take).collect::<Vec<_>>();
                    }
                    // Wait for companions, a shutdown, or the linger
                    // window to elapse — whichever comes first.
                    let (s, _) = shared
                        .work_ready
                        .wait_timeout(state, linger_until - now)
                        .expect("serve queue lock");
                    state = s;
                } else if state.shutting_down {
                    return;
                } else {
                    state = shared.work_ready.wait(state).expect("serve queue lock");
                }
            }
        };
        execute_batch(&mut runners, batch, &shared.metrics);
    }
}

/// Runs one formed batch and distributes per-request replies.
fn execute_batch(runners: &mut [Runner<'_>], batch: Vec<Request>, metrics: &Metrics) {
    let n = batch.len();
    debug_assert!(n >= 1 && n <= runners.len());
    let result = if n == 1 {
        runners[0].execute(&batch[0].inputs, RunOptions::default())
    } else {
        // Coalesce along axis 0: input position i of the batched run is
        // the concatenation of every request's tensor i, in queue order.
        let coalesce = |i: usize| {
            let rows: Vec<Tensor> = batch.iter().map(|req| req.inputs[i].clone()).collect();
            Tensor::concat_batch(&rows)
        };
        (0..batch[0].inputs.len())
            .map(coalesce)
            .collect::<Result<Vec<_>, _>>()
            .and_then(|coalesced| runners[n - 1].execute(&coalesced, RunOptions::default()))
    };
    let completed = Instant::now();
    match result {
        Ok(out) => {
            // Split every output back into per-request rows; row j
            // belongs to request j because concat preserved queue order.
            let split: Result<Vec<Vec<Tensor>>, _> = out
                .outputs()
                .iter()
                .map(Tensor::split_batch)
                .collect::<Result<Vec<_>, _>>();
            match split {
                Ok(per_output_rows) => {
                    metrics.record_batch(n as u64);
                    for (j, req) in batch.into_iter().enumerate() {
                        let outputs: Vec<Tensor> =
                            per_output_rows.iter().map(|rows| rows[j].clone()).collect();
                        let micros = completed.duration_since(req.enqueued_at).as_micros() as u64;
                        metrics.record_latency(micros);
                        let _ = req.reply.send(Ok(outputs));
                    }
                }
                Err(e) => fail_batch(batch, metrics, &e.into()),
            }
        }
        Err(e) => fail_batch(batch, metrics, &e.into()),
    }
}

/// Answers every request in a failed batch with the same typed error.
fn fail_batch(batch: Vec<Request>, metrics: &Metrics, error: &ServeError) {
    metrics.add_failed(batch.len() as u64);
    for req in batch {
        let _ = req.reply.send(Err(error.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::zoo;

    fn demo_graph() -> Graph {
        zoo::tiny_cnn("serve-test", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
    }

    fn demo_input(seed: u64) -> Tensor {
        Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
    }

    #[test]
    fn zero_capacity_config_is_rejected() {
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_workers_config_is_rejected() {
        let cfg = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wrong_input_arity_is_typed_invalid_input() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let err = server.submit(vec![], None).unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput(_)));
        let err = server
            .submit(vec![demo_input(1), demo_input(2)], None)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput(_)));
    }

    #[test]
    fn wrong_input_shape_is_typed_invalid_input() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let bad = Tensor::random(Shape::nchw(1, 1, 4, 4), 3, 1.0);
        assert!(matches!(
            server.submit(vec![bad], None).unwrap_err(),
            ServeError::InvalidInput(_)
        ));
    }

    #[test]
    fn single_request_round_trips() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let out = server
            .submit(vec![demo_input(11)], None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape(), &Shape::nf(1, 3));
        let m = server.shutdown();
        assert_eq!(m.served, 1);
        assert!(m.accounted_for());
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        server.begin_shutdown();
        assert_eq!(
            server.submit(vec![demo_input(1)], None).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn purge_expired_replies_and_counts() {
        let metrics = Metrics::default();
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let mut state = QueueState {
            queue: VecDeque::new(),
            shutting_down: false,
        };
        state.queue.push_back(Request {
            inputs: vec![],
            deadline: Some(now - Duration::from_millis(1)),
            enqueued_at: now,
            reply: tx,
        });
        assert_eq!(purge_expired(&mut state, &metrics, now), 1);
        assert!(state.queue.is_empty());
        assert_eq!(rx.recv().unwrap(), Err(ServeError::DeadlineExceeded));
        assert_eq!(metrics.snapshot().timed_out, 1);
    }
}
