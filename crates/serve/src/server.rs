//! The serving front-end: bounded queue → dynamic batcher → workers.
//!
//! [`Server::start`] compiles one graph per admissible batch size
//! (`1..=max_batch`, via [`Graph::with_batch`]) and spawns a worker
//! pool. Each worker owns one arena-backed [`Runner`] per batch size,
//! so steady-state serving performs no allocation beyond the request
//! queue itself.
//!
//! The dynamic batcher coalesces single-sample submissions along axis 0
//! under two closure rules: a batch executes as soon as `max_batch`
//! requests are queued, or once the oldest queued request has lingered
//! for `max_linger`. Because every kernel reduces batch rows
//! independently in identical element order (the bit-identical batching
//! contract, see `Tensor::split_batch`), a coalesced batch returns
//! exactly the bytes each request would have received alone.
//!
//! Fault tolerance (DESIGN.md §7) wraps the execution path in four
//! layers, outermost first:
//!
//! 1. **supervision** — a worker thread that dies outside panic
//!    isolation is respawned by its own crash guard, up to
//!    [`ResilienceConfig::respawn_budget`];
//! 2. **panic isolation** — per-batch `catch_unwind` converts panics to
//!    [`ServeError::WorkerCrashed`] so the thread and its queue survive;
//! 3. **retry** — transiently failed batches re-execute under the
//!    bounded-backoff [`RetryPolicy`], respecting request deadlines;
//! 4. **quarantine** — deterministically failing batches are bisected
//!    to isolate poisoned requests ([`ServeError::Quarantined`]) while
//!    their neighbours are served.
//!
//! A [`GoldenPolicy`] additionally routes sampled (input, output) pairs
//! through the §IV-B robustness service (golden model copy) to detect —
//! and optionally repair — outputs corrupted by weight bit flips.

use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::resilience::{splitmix64, ChaosState, FaultPlan, Health, ResilienceConfig, RetryPolicy};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, PoisonError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vedliot_nnir::exec::{Parallelism, RunOptions, Runner};
use vedliot_nnir::{Graph, NnirError, Shape, Tensor};
use vedliot_obs::{SpanOutcome, SpanRecord, TraceRing};
use vedliot_safety::robustness::{OutputVerdict, RobustnessService};

/// Batch-closure policy for the dynamic batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait for companions before
    /// its (possibly partial) batch executes.
    pub max_linger: Duration,
}

impl BatchPolicy {
    /// Degenerate policy: every request executes alone, immediately.
    #[must_use]
    pub fn sequential() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_linger: Duration::ZERO,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_linger: Duration::from_micros(500),
        }
    }
}

/// Golden-check policy: route sampled (input, output) pairs through a
/// [`RobustnessService`] holding an uncorrupted copy of the model taken
/// at [`Server::start`] (paper §IV-B — the robustness service "holds a
/// copy of the DL model and can verify the correctness of the output
/// data"). Divergences surface as
/// [`MetricsSnapshot::golden_mismatches`]; with `repair` the diverged
/// reply is replaced by the golden output.
///
/// Requires a single-input, single-output model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenPolicy {
    /// Check every `period`-th served request (1 = check everything).
    pub period: u64,
    /// Maximum absolute output difference tolerated before a pair
    /// counts as diverged.
    pub tolerance: f32,
    /// Replace diverged outputs with the golden copy's answer instead
    /// of serving the corrupted one.
    pub repair: bool,
}

impl Default for GoldenPolicy {
    fn default() -> Self {
        GoldenPolicy {
            period: 8,
            tolerance: 1e-4,
            repair: true,
        }
    }
}

/// Request-lifecycle tracing policy: every request gets a
/// [`SpanRecord`] timeline (enqueue → queue-wait → batch-linger →
/// execute → reply) written into a bounded lock-free ring at reply
/// time. Read the ring with [`Server::trace_spans`].
///
/// Tracing off (`ServeConfig::trace = None`, the default) costs zero
/// extra clock reads on the request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePolicy {
    /// Spans retained in the ring; once full, new spans overwrite the
    /// oldest slots.
    pub capacity: usize,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy { capacity: 1024 }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Bounded submission-queue capacity; submissions beyond it are
    /// rejected with [`ServeError::Rejected`].
    pub queue_capacity: usize,
    /// Worker threads, each owning its own set of runners.
    pub workers: usize,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Intra-batch parallelism of each worker's runners. On single-core
    /// targets leave this [`Parallelism::Serial`]; batching, not
    /// threading, is the throughput lever there.
    pub parallelism: Parallelism,
    /// Fault-tolerance policy (panic isolation, retry, quarantine,
    /// supervision, degraded-mode load shedding).
    pub resilience: ResilienceConfig,
    /// Golden-copy output checking; `None` disables it.
    pub golden: Option<GoldenPolicy>,
    /// Chaos-injection test hook; `None` (the default) injects nothing.
    pub chaos: Option<FaultPlan>,
    /// Request-lifecycle tracing; `None` (the default) disables it.
    pub trace: Option<TracePolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 1,
            batch: BatchPolicy::default(),
            parallelism: Parallelism::Serial,
            resilience: ResilienceConfig::default(),
            golden: None,
            chaos: None,
            trace: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "workers must be at least 1".into(),
            ));
        }
        if self.batch.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        self.resilience.validate()?;
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
        }
        if let Some(golden) = &self.golden {
            if golden.period == 0 {
                return Err(ServeError::InvalidConfig(
                    "golden.period must be at least 1".into(),
                ));
            }
            if golden.tolerance.is_nan() || golden.tolerance < 0.0 {
                return Err(ServeError::InvalidConfig(
                    "golden.tolerance must be non-negative".into(),
                ));
            }
        }
        if let Some(trace) = &self.trace {
            if trace.capacity == 0 {
                return Err(ServeError::InvalidConfig(
                    "trace.capacity must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Per-request span scratch: stage timestamps (µs since the server
/// epoch) accumulated while the request moves through the pipeline,
/// folded into a [`SpanRecord`] at reply time. All zeros when tracing
/// is disabled — and never read.
#[derive(Debug, Clone, Copy, Default)]
struct SpanScratch {
    dequeue_us: u64,
    linger_us: u64,
    exec_start_us: u64,
    exec_end_us: u64,
    /// Batch size this request executed in.
    batch: u32,
    retries: u32,
    /// Whether `exec_start_us` has been stamped — 0 is a legal
    /// epoch-relative timestamp, so a flag is needed to stamp only the
    /// *first* attempt.
    started: bool,
}

/// One queued request.
struct Request {
    /// 1-based submission sequence number (chaos poison targeting).
    seq: u64,
    inputs: Vec<Tensor>,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    span: SpanScratch,
    reply: mpsc::Sender<Result<Vec<Tensor>, ServeError>>,
}

/// Queue state guarded by the server mutex.
struct QueueState {
    queue: VecDeque<Request>,
    shutting_down: bool,
}

/// State shared between the front door, the workers and the supervisor
/// crash guards.
struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers: new request, or shutdown.
    work_ready: Condvar,
    metrics: Metrics,
    /// Per-sample graph input shapes (batch dimension forced to 1).
    input_shapes: Vec<Shape>,
    policy: BatchPolicy,
    queue_capacity: usize,
    resilience: ResilienceConfig,
    /// Live chaos stream, if a fault plan is configured.
    chaos: Option<ChaosState>,
    /// Lock-free span ring, if tracing is configured.
    trace: Option<TraceRing>,
    /// Server start time: the zero point of every span timestamp.
    epoch: Instant,
    /// Golden-copy robustness service, if configured.
    golden: Option<Mutex<RobustnessService>>,
    golden_repair: bool,
    /// Next submission sequence number (1-based).
    next_seq: AtomicU64,
    /// Remaining worker respawns (may go negative under races; only
    /// positive values grant a respawn).
    respawns_left: AtomicI64,
    /// Monotonic worker-thread name counter.
    next_worker_id: AtomicUsize,
    /// Every live worker's join handle — original and respawned alike.
    /// Shutdown drains this until empty; a crashing worker pushes its
    /// replacement's handle *before* its own thread exits, so the drain
    /// cannot miss a respawn.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Microseconds from `epoch` to `t`, saturating at zero.
fn us_since(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

/// Records `req`'s lifecycle span into the trace ring (no-op when
/// tracing is disabled). Called immediately before the reply is sent,
/// so a redeemed ticket implies its span is already visible.
fn emit_span(shared: &Shared, req: &Request, outcome: SpanOutcome, reply_at: Instant) {
    let Some(ring) = &shared.trace else { return };
    let s = &req.span;
    ring.record(&SpanRecord {
        seq: req.seq,
        enqueue_us: us_since(shared.epoch, req.enqueued_at),
        dequeue_us: s.dequeue_us,
        exec_start_us: s.exec_start_us,
        exec_end_us: s.exec_end_us,
        reply_us: us_since(shared.epoch, reply_at),
        linger_us: s.linger_us,
        batch: s.batch,
        retries: s.retries,
        outcome,
    });
}

impl Shared {
    /// Locks the queue state, recovering from poisoning: a worker that
    /// panicked can never be allowed to wedge the whole server, and
    /// every mutation of `QueueState` is panic-free (pushes/pops of
    /// already-constructed values), so the state is always consistent.
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether the server counts as degraded at the given queue depth.
    /// A fraction of 1.0 disables depth-based degradation entirely —
    /// a queue at full capacity is ordinary backpressure, not distress.
    fn degraded(&self, queue_depth: usize) -> bool {
        self.metrics.worker_crashes() >= self.resilience.degraded_crash_threshold
            || (self.resilience.degraded_queue_fraction < 1.0
                && (queue_depth as f64)
                    >= self.resilience.degraded_queue_fraction * self.queue_capacity as f64)
    }

    /// The admission bound currently in force (shed while degraded).
    fn effective_capacity(&self, queue_depth: usize) -> usize {
        if self.degraded(queue_depth) {
            ((self.resilience.shed_to * self.queue_capacity as f64).ceil() as usize).max(1)
        } else {
            self.queue_capacity
        }
    }
}

/// Everything a worker thread needs — held in an `Arc` so a crash guard
/// can hand the same context to a replacement worker.
struct WorkerContext {
    shared: Arc<Shared>,
    graphs: Arc<Vec<Graph>>,
    parallelism: Parallelism,
}

/// Armed for the lifetime of a worker thread; if the thread unwinds
/// (a panic escaped the isolation boundary, or isolation is disabled),
/// the guard's drop is the supervisor: it counts the crash and respawns
/// a replacement while the budget lasts.
struct CrashGuard {
    ctx: Arc<WorkerContext>,
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // normal worker exit (drained shutdown)
        }
        let shared = &self.ctx.shared;
        // A worker dying while the server drains an empty queue is
        // indistinguishable from a normal exit: no work was lost and no
        // replacement is wanted, so it does not count as a crash.
        // try_lock: never risk deadlocking a dying thread.
        let idle_drain = match shared.state.try_lock() {
            Ok(state) => state.shutting_down && state.queue.is_empty(),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                let state = p.into_inner();
                state.shutting_down && state.queue.is_empty()
            }
            Err(std::sync::TryLockError::WouldBlock) => false,
        };
        if idle_drain {
            return;
        }
        shared.metrics.inc_worker_crash();
        if shared.respawns_left.fetch_sub(1, Ordering::AcqRel) <= 0 {
            return; // budget exhausted: degrade instead of flapping
        }
        shared.metrics.inc_respawned();
        spawn_worker(&self.ctx);
        // The replacement may have queued work waiting already.
        shared.work_ready.notify_all();
    }
}

/// Spawns one worker thread over `ctx` and registers its handle for the
/// shutdown drain. Returns whether the spawn succeeded.
fn spawn_worker(ctx: &Arc<WorkerContext>) -> bool {
    let id = ctx.shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
    let worker_ctx = Arc::clone(ctx);
    let spawned = std::thread::Builder::new()
        .name(format!("vedliot-serve-{id}"))
        .spawn(move || {
            let _guard = CrashGuard {
                ctx: Arc::clone(&worker_ctx),
            };
            worker_loop(&worker_ctx);
        });
    match spawned {
        Ok(handle) => {
            ctx.shared
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
            true
        }
        Err(_) => false,
    }
}

/// Handle for one submitted request. Redeem it with [`Ticket::wait`].
#[must_use = "an unredeemed ticket discards the request's result"]
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Vec<Tensor>, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers.
    ///
    /// # Errors
    ///
    /// Propagates the server's typed verdict for this request, or
    /// [`ServeError::Disconnected`] if a worker died without replying.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Like [`Ticket::wait`] but gives up after `timeout`.
    ///
    /// Dropping the ticket afterwards orphans the request, never the
    /// server: a worker answering an orphaned request sends into a
    /// closed channel, which is ignored, and the request still counts
    /// in exactly one metrics bucket (the `accounted_for` invariant is
    /// property-tested under random timeout/fault schedules in
    /// `tests/chaos.rs`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] on timeout or a dead worker;
    /// otherwise the server's verdict.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<Tensor>, ServeError> {
        self.rx
            .recv_timeout(timeout)
            .unwrap_or(Err(ServeError::Disconnected))
    }
}

/// Batched model server.
///
/// ```
/// use std::time::Duration;
/// use vedliot_nnir::{zoo, Shape, Tensor};
/// use vedliot_serve::{ServeConfig, Server};
///
/// let graph = zoo::tiny_cnn("demo", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap();
/// let server = Server::start(&graph, ServeConfig::default()).unwrap();
/// let input = Tensor::random(Shape::nchw(1, 1, 8, 8), 7, 1.0);
/// let ticket = server.submit(vec![input], None).unwrap();
/// let outputs = ticket.wait().unwrap();
/// assert_eq!(outputs[0].shape(), &Shape::nf(1, 3));
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Compiles `graph` for batch sizes `1..=max_batch` and spawns the
    /// worker pool.
    ///
    /// When a chaos plan requests weight bit flips, the flips corrupt
    /// the *deployed* batch-compiled graphs only; the golden copy held
    /// by a [`GoldenPolicy`] is taken before the corruption.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero capacity, worker count
    /// or batch bound, an out-of-range resilience/chaos parameter, or a
    /// golden policy on a model that is not single-input single-output;
    /// [`ServeError::Execution`] if the graph fails validation or batch
    /// rewriting.
    pub fn start(graph: &Graph, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        graph.validate()?;
        // One graph per admissible batch size. Workers build their
        // runners against these; index k-1 serves batches of k.
        let mut graphs = Vec::with_capacity(config.batch.max_batch);
        for k in 1..=config.batch.max_batch {
            graphs.push(graph.with_batch(k)?);
        }
        // The golden copy is cloned before chaos corrupts the deployed
        // graphs: it is the uncorrupted reference of §IV-B.
        let golden = match &config.golden {
            Some(policy) => {
                if graph.inputs().len() != 1 || graph.outputs().len() != 1 {
                    return Err(ServeError::InvalidConfig(
                        "golden checking requires a single-input single-output model".into(),
                    ));
                }
                Some(Mutex::new(RobustnessService::new(
                    graph.with_batch(1)?,
                    policy.period,
                    policy.tolerance,
                )))
            }
            None => None,
        };
        if let Some(plan) = &config.chaos {
            if plan.weight_bit_flips > 0 {
                // Same seed on every batch variant: the weight tensors
                // are structurally identical, so the same logical bits
                // flip in each and batching stays output-consistent.
                for g in &mut graphs {
                    vedliot_safety::inject::flip_weight_bits(g, plan.weight_bit_flips, plan.seed)?;
                }
            }
        }
        let input_shapes: Vec<Shape> = graphs[0]
            .inputs()
            .iter()
            .map(|&id| {
                graphs[0]
                    .tensor_shape(id)
                    .expect("validated graph has input shapes")
                    .clone()
            })
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            metrics: Metrics::default(),
            input_shapes,
            policy: config.batch,
            queue_capacity: config.queue_capacity,
            resilience: config.resilience,
            chaos: config.chaos.map(ChaosState::new),
            trace: config.trace.map(|t| TraceRing::new(t.capacity)),
            epoch: Instant::now(),
            golden,
            golden_repair: config.golden.is_some_and(|g| g.repair),
            next_seq: AtomicU64::new(0),
            respawns_left: AtomicI64::new(i64::from(config.resilience.respawn_budget)),
            next_worker_id: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        });
        let ctx = Arc::new(WorkerContext {
            shared: Arc::clone(&shared),
            graphs: Arc::new(graphs),
            parallelism: config.parallelism,
        });
        for _ in 0..config.workers {
            assert!(spawn_worker(&ctx), "spawn serve worker");
        }
        Ok(Server { shared })
    }

    /// Submits one single-sample request (one tensor per graph input,
    /// batch dimension 1) with an optional execution deadline.
    ///
    /// Returns immediately with a [`Ticket`]; the request is answered
    /// by a worker, batched with whatever else is queued.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] on an input-signature mismatch,
    /// [`ServeError::Rejected`] when the queue is full — or, while
    /// [`Health::Degraded`], when it is fuller than the load-shedding
    /// bound — and [`ServeError::ShuttingDown`] after
    /// [`Server::shutdown`] began.
    pub fn submit(
        &self,
        inputs: Vec<Tensor>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        self.shared.metrics.inc_submitted();
        if inputs.len() != self.shared.input_shapes.len() {
            self.shared.metrics.inc_rejected();
            return Err(ServeError::InvalidInput(format!(
                "expected {} input tensors, got {}",
                self.shared.input_shapes.len(),
                inputs.len()
            )));
        }
        for (tensor, expected) in inputs.iter().zip(&self.shared.input_shapes) {
            if tensor.shape() != expected {
                self.shared.metrics.inc_rejected();
                return Err(ServeError::InvalidInput(format!(
                    "input shape {:?} does not match single-sample signature {:?}",
                    tensor.shape(),
                    expected
                )));
            }
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.lock_state();
            if state.shutting_down {
                self.shared.metrics.inc_rejected();
                return Err(ServeError::ShuttingDown);
            }
            let bound = self.shared.effective_capacity(state.queue.len());
            if state.queue.len() >= bound {
                self.shared.metrics.inc_rejected();
                return Err(ServeError::Rejected { capacity: bound });
            }
            let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
            state.queue.push_back(Request {
                seq,
                inputs,
                deadline,
                enqueued_at: Instant::now(),
                span: SpanScratch::default(),
                reply: tx,
            });
            self.shared.metrics.queue_pushed();
        }
        self.shared.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Current serving statistics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The request-lifecycle spans currently held in the trace ring,
    /// oldest first. Empty unless [`ServeConfig::trace`] was set. A
    /// span is recorded immediately *before* its reply is sent, so a
    /// request whose ticket has been redeemed is guaranteed visible
    /// here (until the ring overwrites it).
    #[must_use]
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.shared
            .trace
            .as_ref()
            .map(TraceRing::snapshot)
            .unwrap_or_default()
    }

    /// Current health state: [`Health::Draining`] once shutdown began,
    /// [`Health::Degraded`] when the worker-crash count or queue depth
    /// crossed its configured threshold, [`Health::Serving`] otherwise.
    #[must_use]
    pub fn health(&self) -> Health {
        let (shutting_down, depth) = {
            let state = self.shared.lock_state();
            (state.shutting_down, state.queue.len())
        };
        if shutting_down {
            Health::Draining
        } else if self.shared.degraded(depth) {
            Health::Degraded
        } else {
            Health::Serving
        }
    }

    /// Graceful shutdown: refuses new submissions, drains every queued
    /// request (each still gets a typed reply), joins the workers —
    /// including any the supervisor respawned — and returns the final
    /// statistics.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.begin_shutdown();
        self.join_workers();
        self.shared.metrics.snapshot()
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.lock_state();
        state.shutting_down = true;
        drop(state);
        self.shared.work_ready.notify_all();
    }

    /// Joins every worker handle. The lock is released around each
    /// join: a crashing worker's guard pushes its replacement's handle
    /// before the crashed thread exits, so re-checking until the vector
    /// is empty observes every respawn.
    fn join_workers(&self) {
        loop {
            let handle = self
                .shared
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` already drained the handles; a plain drop still
        // stops and joins the pool so no thread outlives the server.
        self.begin_shutdown();
        self.join_workers();
    }
}

/// Replies to every queued request whose deadline has already expired
/// and drops it from the queue. Returns how many were purged.
///
/// `trace` carries the span ring and the server epoch; a request purged
/// here never executed, so its span collapses every post-queue stage to
/// the purge instant (queue-wait accounts for its whole lifetime).
fn purge_expired(
    state: &mut QueueState,
    metrics: &Metrics,
    trace: Option<(&TraceRing, Instant)>,
    now: Instant,
) -> usize {
    let before = state.queue.len();
    // VecDeque has no retain-with-side-effect order guarantee problem
    // here: replies are independent, order is irrelevant.
    state.queue.retain(|req| {
        let expired = req.deadline.is_some_and(|d| now >= d);
        if expired {
            metrics.inc_timed_out();
            if let Some((ring, epoch)) = trace {
                let t = us_since(epoch, now);
                ring.record(&SpanRecord {
                    seq: req.seq,
                    enqueue_us: us_since(epoch, req.enqueued_at),
                    dequeue_us: t,
                    exec_start_us: t,
                    exec_end_us: t,
                    reply_us: t,
                    linger_us: 0,
                    batch: 0,
                    retries: 0,
                    outcome: SpanOutcome::TimedOut,
                });
            }
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded));
        }
        !expired
    });
    let purged = before - state.queue.len();
    metrics.queue_popped(purged as u64);
    purged
}

/// Worker body: form a batch under the lock, execute it outside.
fn worker_loop(ctx: &WorkerContext) {
    let shared = &*ctx.shared;
    // Runners are built once and reused for the worker's lifetime, so
    // every batch after the first hits warm arenas and cached weights.
    let mut runners: Vec<Runner<'_>> = ctx
        .graphs
        .iter()
        .map(|g| {
            Runner::builder()
                .parallelism(ctx.parallelism)
                .build(g)
                .expect("batch graph was verified at Server::start")
        })
        .collect();
    loop {
        // Chaos hard kill: strictly before the lock is taken and while
        // no requests are held, so a dying worker cannot poison the
        // queue or lose a batch — only supervision is exercised.
        if let Some(chaos) = &shared.chaos {
            if chaos.kill_now() {
                panic!("chaos: worker killed at wakeup");
            }
        }
        let batch = {
            let mut state = shared.lock_state();
            loop {
                let now = Instant::now();
                let trace = shared.trace.as_ref().map(|r| (r, shared.epoch));
                purge_expired(&mut state, &shared.metrics, trace, now);
                if let Some(oldest) = state.queue.front() {
                    let full = state.queue.len() >= shared.policy.max_batch;
                    let linger_until = oldest.enqueued_at + shared.policy.max_linger;
                    if full || state.shutting_down || now >= linger_until {
                        let take = state.queue.len().min(shared.policy.max_batch);
                        let mut batch = state.queue.drain(..take).collect::<Vec<_>>();
                        shared.metrics.queue_popped(take as u64);
                        shared.metrics.inflight_add(take as u64);
                        if shared.trace.is_some() {
                            // Stamp the dequeue and attribute the part
                            // of the wait the batcher *chose* (up to
                            // max_linger) to the linger stage.
                            let dequeue_us = us_since(shared.epoch, now);
                            for req in &mut batch {
                                req.span.dequeue_us = dequeue_us;
                                req.span.linger_us =
                                    now.saturating_duration_since(req.enqueued_at)
                                        .min(shared.policy.max_linger)
                                        .as_micros() as u64;
                                req.span.batch = take as u32;
                            }
                        }
                        break batch;
                    }
                    // Wait for companions, a shutdown, or the linger
                    // window to elapse — whichever comes first.
                    let (s, _) = shared
                        .work_ready
                        .wait_timeout(state, linger_until - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = s;
                } else if state.shutting_down {
                    return;
                } else {
                    state = shared
                        .work_ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        let salt = splitmix64(batch.first().map_or(0, |r| r.seq));
        run_batch(ctx, &mut runners, batch, false, salt);
    }
}

/// Runs one formed batch through the resilience layers: retry transient
/// failures under the backoff policy, send deterministic failures to
/// quarantine bisection, reply to every request exactly once.
///
/// `quarantining` marks that this (sub-)batch is part of a bisection:
/// a single request failing deterministically there is the isolated
/// poison and fails as [`ServeError::Quarantined`].
fn run_batch(
    ctx: &WorkerContext,
    runners: &mut [Runner<'_>],
    mut batch: Vec<Request>,
    quarantining: bool,
    salt: u64,
) {
    let shared = &*ctx.shared;
    let policy: RetryPolicy = shared.resilience.retry;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if shared.trace.is_some() {
            // Stamp the first attempt's start; retries and bisection
            // sub-batches keep the original start so the execute stage
            // covers the request's whole time on a runner.
            let now_us = us_since(shared.epoch, Instant::now());
            for req in &mut batch {
                if !req.span.started {
                    req.span.exec_start_us = now_us;
                    req.span.started = true;
                }
            }
        }
        let result = attempt_execute(ctx, runners, &batch);
        if shared.trace.is_some() {
            let now_us = us_since(shared.epoch, Instant::now());
            for req in &mut batch {
                req.span.exec_end_us = now_us;
            }
        }
        let error = match result {
            Ok(rows) => {
                reply_ok(ctx, batch, rows);
                return;
            }
            Err(e) => e,
        };
        if error.class().is_transient() && attempt < policy.max_attempts {
            shared.metrics.inc_retry();
            for req in &mut batch {
                req.span.retries += 1;
            }
            // Respect remaining deadlines: purge what already expired,
            // and never sleep past the earliest deadline still in the
            // batch.
            purge_batch_expired(&mut batch, shared);
            if batch.is_empty() {
                return;
            }
            let mut delay = policy.backoff(attempt, salt);
            if let Some(earliest) = batch.iter().filter_map(|r| r.deadline).min() {
                delay = delay.min(earliest.saturating_duration_since(Instant::now()));
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            purge_batch_expired(&mut batch, shared);
            if batch.is_empty() {
                return;
            }
            continue;
        }
        if !error.class().is_transient() && shared.resilience.quarantine {
            if batch.len() > 1 {
                // Bisect: the poisoned request is in one half; the
                // other half (and the poisoned half's innocent
                // remainder, recursively) still gets served.
                let right = batch.split_off(batch.len() / 2);
                run_batch(ctx, runners, batch, true, splitmix64(salt ^ 1));
                run_batch(ctx, runners, right, true, splitmix64(salt ^ 2));
                return;
            }
            if quarantining {
                // Bisection bottomed out: this request is the poison.
                shared.metrics.add_quarantined(batch.len() as u64);
                shared.metrics.inflight_sub(batch.len() as u64);
                let replied = Instant::now();
                for req in batch {
                    emit_span(shared, &req, SpanOutcome::Quarantined, replied);
                    let _ = req.reply.send(Err(ServeError::Quarantined {
                        detail: error.to_string(),
                    }));
                }
                return;
            }
        }
        fail_batch(batch, shared, &error);
        return;
    }
}

/// One execution attempt: chaos hooks, the panic-isolation boundary,
/// and the batched forward pass. Returns per-request output rows.
fn attempt_execute(
    ctx: &WorkerContext,
    runners: &mut [Runner<'_>],
    batch: &[Request],
) -> Result<Vec<Vec<Tensor>>, ServeError> {
    let shared = &*ctx.shared;
    if let Some(chaos) = &shared.chaos {
        // A poisoned request fails any batch containing it, the same
        // deterministic way every time — the quarantine target.
        if let Some(req) = batch.iter().find(|r| chaos.poisoned(r.seq)) {
            return Err(ServeError::Execution(NnirError::ExecutionFailure(format!(
                "chaos: poisoned request #{}",
                req.seq
            ))));
        }
    }
    let guarded = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(chaos) = &shared.chaos {
            if chaos.panic_now() {
                panic!("chaos: injected worker panic");
            }
        }
        execute_core(runners, batch)
    }));
    match guarded {
        Ok(result) => result,
        Err(payload) => {
            if shared.resilience.isolate_panics {
                shared.metrics.inc_panic_absorbed();
                Err(ServeError::WorkerCrashed {
                    detail: panic_detail(payload.as_ref()),
                })
            } else {
                // Baseline behaviour: the panic kills the worker (and
                // silently takes the batch with it — the failure mode
                // this module exists to remove).
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Best-effort stringification of a panic payload.
fn panic_detail(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Coalesce → execute → split back into per-request output rows.
fn execute_core(
    runners: &mut [Runner<'_>],
    batch: &[Request],
) -> Result<Vec<Vec<Tensor>>, ServeError> {
    let n = batch.len();
    debug_assert!(n >= 1 && n <= runners.len());
    if n == 1 {
        let out = runners[0].execute(&batch[0].inputs, RunOptions::default())?;
        return Ok(vec![out.into_outputs()]);
    }
    // Coalesce along axis 0: input position i of the batched run is
    // the concatenation of every request's tensor i, in queue order.
    let coalesced = (0..batch[0].inputs.len())
        .map(|i| {
            let rows: Vec<Tensor> = batch.iter().map(|req| req.inputs[i].clone()).collect();
            Tensor::concat_batch(&rows)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let out = runners[n - 1].execute(&coalesced, RunOptions::default())?;
    // Split every output back into per-request rows; row j belongs to
    // request j because concat preserved queue order.
    let per_output_rows: Vec<Vec<Tensor>> = out
        .outputs()
        .iter()
        .map(Tensor::split_batch)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((0..n)
        .map(|j| per_output_rows.iter().map(|rows| rows[j].clone()).collect())
        .collect())
}

/// Answers every request in a successful batch, running sampled golden
/// checks (and repairs) first.
fn reply_ok(ctx: &WorkerContext, batch: Vec<Request>, mut rows: Vec<Vec<Tensor>>) {
    let shared = &*ctx.shared;
    let completed = Instant::now();
    if let Some(service) = &shared.golden {
        let mut service = service.lock().unwrap_or_else(PoisonError::into_inner);
        for (req, outputs) in batch.iter().zip(rows.iter_mut()) {
            // The golden check is an observer: its own failure must
            // never fail a request that executed successfully.
            if let Ok(check) = service.check(&req.inputs[0], &outputs[0]) {
                if matches!(check.verdict, OutputVerdict::Diverged { .. }) {
                    shared.metrics.inc_golden_mismatch();
                    if shared.golden_repair {
                        if let Some(golden) = check.golden {
                            outputs[0] = golden;
                        }
                    }
                }
            }
        }
    }
    shared.metrics.record_batch(batch.len() as u64);
    shared.metrics.inflight_sub(batch.len() as u64);
    for (req, outputs) in batch.into_iter().zip(rows) {
        let micros = completed.duration_since(req.enqueued_at).as_micros() as u64;
        shared.metrics.record_latency(micros);
        // The golden check above ran between exec-end and `completed`,
        // so its cost lands in the span's reply stage.
        emit_span(shared, &req, SpanOutcome::Ok, completed);
        let _ = req.reply.send(Ok(outputs));
    }
}

/// Replies `DeadlineExceeded` to every request in the batch whose
/// deadline has passed and removes it (mid-retry counterpart of
/// [`purge_expired`]; these requests *did* dequeue and execute, so
/// their spans keep the real stage timestamps).
fn purge_batch_expired(batch: &mut Vec<Request>, shared: &Shared) {
    let now = Instant::now();
    batch.retain(|req| {
        let expired = req.deadline.is_some_and(|d| now >= d);
        if expired {
            shared.metrics.inc_timed_out();
            shared.metrics.inflight_sub(1);
            emit_span(shared, req, SpanOutcome::TimedOut, now);
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded));
        }
        !expired
    });
}

/// Answers every request in a failed batch with the same typed error.
fn fail_batch(batch: Vec<Request>, shared: &Shared, error: &ServeError) {
    shared.metrics.add_failed(batch.len() as u64);
    shared.metrics.inflight_sub(batch.len() as u64);
    let replied = Instant::now();
    for req in batch {
        emit_span(shared, &req, SpanOutcome::Failed, replied);
        let _ = req.reply.send(Err(error.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::zoo;

    fn demo_graph() -> Graph {
        zoo::tiny_cnn("serve-test", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
    }

    fn demo_input(seed: u64) -> Tensor {
        Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
    }

    #[test]
    fn zero_capacity_config_is_rejected() {
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_workers_config_is_rejected() {
        let cfg = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_chaos_probability_is_rejected() {
        let cfg = ServeConfig {
            chaos: Some(FaultPlan {
                panic_per_batch: 2.0,
                ..FaultPlan::quiet(1)
            }),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn golden_policy_requires_single_io_model() {
        let cfg = ServeConfig {
            golden: Some(GoldenPolicy {
                period: 0,
                ..GoldenPolicy::default()
            }),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wrong_input_arity_is_typed_invalid_input() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let err = server.submit(vec![], None).unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput(_)));
        let err = server
            .submit(vec![demo_input(1), demo_input(2)], None)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput(_)));
    }

    #[test]
    fn wrong_input_shape_is_typed_invalid_input() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let bad = Tensor::random(Shape::nchw(1, 1, 4, 4), 3, 1.0);
        assert!(matches!(
            server.submit(vec![bad], None).unwrap_err(),
            ServeError::InvalidInput(_)
        ));
    }

    #[test]
    fn single_request_round_trips() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        assert_eq!(server.health(), Health::Serving);
        let out = server
            .submit(vec![demo_input(11)], None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape(), &Shape::nf(1, 3));
        let m = server.shutdown();
        assert_eq!(m.served, 1);
        assert!(m.accounted_for());
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        server.begin_shutdown();
        assert_eq!(server.health(), Health::Draining);
        assert_eq!(
            server.submit(vec![demo_input(1)], None).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn purge_expired_replies_and_counts() {
        let metrics = Metrics::default();
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let mut state = QueueState {
            queue: VecDeque::new(),
            shutting_down: false,
        };
        state.queue.push_back(Request {
            seq: 1,
            inputs: vec![],
            deadline: Some(now - Duration::from_millis(1)),
            enqueued_at: now,
            span: SpanScratch::default(),
            reply: tx,
        });
        assert_eq!(purge_expired(&mut state, &metrics, None, now), 1);
        assert!(state.queue.is_empty());
        assert_eq!(rx.recv().unwrap(), Err(ServeError::DeadlineExceeded));
        assert_eq!(metrics.snapshot().timed_out, 1);
    }

    #[test]
    fn degraded_crash_threshold_sheds_load() {
        // Crash-threshold degradation with a shed bound of half the
        // queue: after one (injected) crash the server admits at most
        // 2 queued requests instead of 4.
        let server = Server::start(
            &demo_graph(),
            ServeConfig {
                queue_capacity: 4,
                batch: BatchPolicy {
                    max_batch: 4,
                    max_linger: Duration::from_secs(30),
                },
                resilience: ResilienceConfig {
                    degraded_crash_threshold: 1,
                    shed_to: 0.5,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(server.health(), Health::Serving);
        server.shared.metrics.inc_worker_crash();
        assert_eq!(server.health(), Health::Degraded);
        let t1 = server.submit(vec![demo_input(1)], None).unwrap();
        let t2 = server.submit(vec![demo_input(2)], None).unwrap();
        // Shed bound ceil(0.5 * 4) = 2: the third submission is shed.
        let err = server.submit(vec![demo_input(3)], None).unwrap_err();
        assert_eq!(err, ServeError::Rejected { capacity: 2 });
        let m = {
            let handle = std::thread::spawn(move || server.shutdown());
            assert!(t1.wait().is_ok());
            assert!(t2.wait().is_ok());
            handle.join().unwrap()
        };
        assert!(m.accounted_for());
        assert_eq!(m.rejected, 1);
    }
}
