//! The serving gateway: a registry of per-model worker pools behind one
//! typed front door.
//!
//! [`Server::start`] boots the gateway with one model (registered as
//! `"default"`); [`Server::load`] / [`Server::unload`] grow and shrink
//! the zoo at runtime without stopping traffic. Each model gets its own
//! [`pool`](crate::pool): priority queues, worker threads, metrics,
//! chaos stream and golden service — isolation is per tenant, while the
//! gateway enforces the global queue capacity and hosts the shared span
//! ring.
//!
//! Clients submit through [`Server::submit_request`] with a typed
//! [`SubmitRequest`] naming the model and [`Priority`] class. The old
//! positional `submit(inputs, deadline)` survives as a `#[deprecated]`
//! shim that routes to the default model at [`Priority::Normal`].
//!
//! The per-pool serving pipeline — dynamic batching under the
//! bit-identical batching contract, four-layer fault tolerance (panic
//! isolation, bounded-backoff retry, quarantine bisection, supervised
//! respawn) and golden-copy output checking — is documented in
//! [`crate::pool`]; the priority admission/eviction protocol is there
//! too.

use crate::error::ServeError;
use crate::metrics::MetricsSnapshot;
use crate::pool::{GatewayShared, ModelPool, SloShared};
use crate::resilience::{FaultPlan, Health, ResilienceConfig};
use crate::routing::{ModelConfig, SubmitRequest};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};
use vedliot_nnir::exec::Parallelism;
use vedliot_nnir::{Graph, Tensor};
use vedliot_obs::{
    BurnWindows, CauseId, Event, EventJournal, EventKind, Export, Exportable, Objective, Slo,
    SloEngine, SloState, SloTransition, SpanRecord, TraceRing,
};

/// Key [`Server::start`] registers its boot model under.
pub const DEFAULT_MODEL: &str = "default";

/// Batch-closure policy for the dynamic batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest number of requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Longest the oldest queued request may wait for companions before
    /// its (possibly partial) batch executes.
    pub max_linger: Duration,
}

impl BatchPolicy {
    /// Degenerate policy: every request executes alone, immediately.
    #[must_use]
    pub fn sequential() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_linger: Duration::ZERO,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_linger: Duration::from_micros(500),
        }
    }
}

/// Golden-check policy: route sampled (input, output) pairs through a
/// robustness service holding an uncorrupted copy of the model taken at
/// load time (paper §IV-B — the robustness service "holds a copy of the
/// DL model and can verify the correctness of the output data").
/// Divergences surface as [`MetricsSnapshot::golden_mismatches`]; with
/// `repair` the diverged reply is replaced by the golden output.
///
/// Requires a single-input, single-output model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenPolicy {
    /// Check every `period`-th served request (1 = check everything).
    pub period: u64,
    /// Maximum absolute output difference tolerated before a pair
    /// counts as diverged.
    pub tolerance: f32,
    /// Replace diverged outputs with the golden copy's answer instead
    /// of serving the corrupted one.
    pub repair: bool,
}

impl Default for GoldenPolicy {
    fn default() -> Self {
        GoldenPolicy {
            period: 8,
            tolerance: 1e-4,
            repair: true,
        }
    }
}

/// Request-lifecycle tracing policy: every request gets a
/// [`SpanRecord`] timeline (enqueue → queue-wait → batch-linger →
/// execute → reply) written into a bounded lock-free ring at reply
/// time, labelled with the model id and priority class. Read the ring
/// with [`Server::trace_spans`].
///
/// Tracing off (`ServeConfig::trace = None`, the default) costs zero
/// extra clock reads on the request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePolicy {
    /// Spans retained in the ring; once full, new spans overwrite the
    /// oldest slots.
    pub capacity: usize,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy { capacity: 1024 }
    }
}

/// Flight-recorder policy: the gateway appends typed, causally
/// correlated [`Event`]s (admission, shedding, displacement, retries,
/// quarantines, worker crashes, model load/unload, health transitions)
/// into a bounded [`EventJournal`]. Read it with
/// [`Server::journal_events`]; answer "what shed this request" with
/// [`Server::journal_chain`].
///
/// Off (`ServeConfig::journal = None`, the default) costs zero branches
/// on the request path beyond one `Option` check per emission site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalPolicy {
    /// Events retained in the ring; once full, new events overwrite the
    /// oldest slots (sequence numbers keep citations unambiguous).
    pub capacity: usize,
}

impl Default for JournalPolicy {
    fn default() -> Self {
        JournalPolicy { capacity: 4096 }
    }
}

/// Burn-rate SLO policy: declared objectives evaluated as multi-window
/// burn rates over the stream of request outcomes.
///
/// The engine's clock is the **submission sequence number** (not wall
/// time), so seeded replays evaluate bit-identically: the same request
/// outcomes in the same order produce the same burns and the same
/// alerts. Evaluation happens only at explicit
/// [`Server::evaluate_slo`] calls — the engine never evaluates behind
/// the caller's back, which is what makes burn-driven degradation
/// deterministic under replay (experiment E28).
///
/// With `drive_health`, a firing alert flips admission to degraded mode
/// (the same shedding [`ResilienceConfig::shed_to`] governs) until a
/// later evaluation clears it — health driven by the error *budget*
/// instead of raw queue depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Availability objective: at most `1 - target` of requests may
    /// fail. `None` skips the objective.
    pub availability: Option<f64>,
    /// Latency objective: at most 1% of requests may exceed this bound
    /// (µs). `None` skips the objective.
    pub p99_max_us: Option<u64>,
    /// Burn windows, in submission-seq units, shared by every
    /// objective.
    pub windows: BurnWindows,
    /// Whether a firing alert drives [`Health::Degraded`] admission.
    pub drive_health: bool,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            availability: Some(0.99),
            p99_max_us: None,
            windows: BurnWindows {
                short: 25,
                long: 100,
                threshold: 2.0,
            },
            drive_health: false,
        }
    }
}

impl SloPolicy {
    /// The declared objectives, in stable order.
    pub(crate) fn objectives(&self) -> Vec<Objective> {
        let mut objectives = Vec::new();
        if let Some(target) = self.availability {
            objectives.push(Objective::new(
                "availability",
                Slo::Availability { target },
                self.windows,
            ));
        }
        if let Some(max_us) = self.p99_max_us {
            objectives.push(Objective::new(
                "p99_latency",
                Slo::LatencyP99 { max_us },
                self.windows,
            ));
        }
        objectives
    }
}

/// Gateway configuration.
///
/// `#[non_exhaustive]`: construct it with [`ServeConfig::builder`] (or
/// start from [`ServeConfig::default`] inside this crate) — fields may
/// be added without a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Bounded gateway-wide queue capacity, shared by every loaded
    /// model; submissions beyond it are rejected with
    /// [`ServeError::Rejected`] (unless they can displace queued
    /// lower-priority work in their own pool).
    pub queue_capacity: usize,
    /// Worker threads for the default model's pool.
    pub workers: usize,
    /// Dynamic batching policy for the default model.
    pub batch: BatchPolicy,
    /// Intra-batch parallelism of each worker's runners, gateway-wide.
    /// On single-core targets leave this [`Parallelism::Serial`];
    /// batching, not threading, is the throughput lever there.
    pub parallelism: Parallelism,
    /// Fault-tolerance policy (panic isolation, retry, quarantine,
    /// supervision, degraded-mode load shedding), applied to every
    /// pool.
    pub resilience: ResilienceConfig,
    /// Golden-copy output checking for the default model.
    pub golden: Option<GoldenPolicy>,
    /// Chaos-injection test hook for the default model; `None` (the
    /// default) injects nothing.
    pub chaos: Option<FaultPlan>,
    /// Request-lifecycle tracing; `None` (the default) disables it.
    pub trace: Option<TracePolicy>,
    /// Flight recorder; `None` (the default) disables it.
    pub journal: Option<JournalPolicy>,
    /// Burn-rate SLO engine; `None` (the default) disables it.
    pub slo: Option<SloPolicy>,
    /// Deadline floor: the shortest deadline headroom clients are
    /// promised. When set, every loaded model's `max_linger` must stay
    /// at or below it — a batcher that lingers longer than the deadline
    /// floor would time out well-formed requests by policy.
    pub deadline_floor: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            workers: 1,
            batch: BatchPolicy::default(),
            parallelism: Parallelism::Serial,
            resilience: ResilienceConfig::default(),
            golden: None,
            chaos: None,
            trace: None,
            journal: None,
            slo: None,
            deadline_floor: None,
        }
    }
}

impl ServeConfig {
    /// A validating builder — the only way to construct a
    /// [`ServeConfig`] outside this crate.
    #[must_use]
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "workers must be at least 1".into(),
            ));
        }
        self.resilience.validate()?;
        if let Some(trace) = &self.trace {
            if trace.capacity == 0 {
                return Err(ServeError::InvalidConfig(
                    "trace.capacity must be at least 1".into(),
                ));
            }
        }
        if let Some(journal) = &self.journal {
            if journal.capacity == 0 {
                return Err(ServeError::InvalidConfig(
                    "journal.capacity must be at least 1".into(),
                ));
            }
        }
        if let Some(slo) = &self.slo {
            let objectives = slo.objectives();
            if objectives.is_empty() {
                return Err(ServeError::InvalidConfig(
                    "slo policy declares no objectives".into(),
                ));
            }
            for objective in &objectives {
                objective.validate().map_err(ServeError::InvalidConfig)?;
            }
        }
        validate_model_config(&self.default_model_config(), self.deadline_floor)
    }

    /// The default model's pool configuration implied by the gateway
    /// config (weight 1, weight-derived quota).
    pub(crate) fn default_model_config(&self) -> ModelConfig {
        let mut cfg = ModelConfig::default()
            .workers(self.workers)
            .batch(self.batch);
        cfg.golden = self.golden;
        cfg.chaos = self.chaos;
        cfg
    }
}

/// Validates one model's pool configuration against the gateway's
/// deadline floor.
fn validate_model_config(
    cfg: &ModelConfig,
    deadline_floor: Option<Duration>,
) -> Result<(), ServeError> {
    if cfg.workers == 0 {
        return Err(ServeError::InvalidConfig(
            "model workers must be at least 1".into(),
        ));
    }
    if cfg.weight == 0 {
        return Err(ServeError::InvalidConfig(
            "model weight must be at least 1".into(),
        ));
    }
    if cfg.quota == Some(0) {
        return Err(ServeError::InvalidConfig(
            "model quota must be at least 1".into(),
        ));
    }
    if cfg.batch.max_batch == 0 {
        return Err(ServeError::InvalidConfig(
            "max_batch must be at least 1".into(),
        ));
    }
    if let Some(floor) = deadline_floor {
        if cfg.batch.max_linger > floor {
            return Err(ServeError::InvalidConfig(format!(
                "max_linger {:?} exceeds the deadline floor {floor:?}",
                cfg.batch.max_linger
            )));
        }
    }
    if let Some(chaos) = &cfg.chaos {
        chaos.validate()?;
    }
    if let Some(golden) = &cfg.golden {
        if golden.period == 0 {
            return Err(ServeError::InvalidConfig(
                "golden.period must be at least 1".into(),
            ));
        }
        if golden.tolerance.is_nan() || golden.tolerance < 0.0 {
            return Err(ServeError::InvalidConfig(
                "golden.tolerance must be non-negative".into(),
            ));
        }
    }
    Ok(())
}

/// Validating builder for [`ServeConfig`]; see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the gateway-wide queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the default model's worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the default model's batching policy.
    #[must_use]
    pub fn batch(mut self, batch: BatchPolicy) -> Self {
        self.config.batch = batch;
        self
    }

    /// Sets the gateway-wide intra-batch parallelism.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the gateway-wide resilience policy.
    #[must_use]
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Enables golden-copy output checking for the default model.
    #[must_use]
    pub fn golden(mut self, golden: GoldenPolicy) -> Self {
        self.config.golden = Some(golden);
        self
    }

    /// Arms a chaos fault plan for the default model.
    #[must_use]
    pub fn chaos(mut self, chaos: FaultPlan) -> Self {
        self.config.chaos = Some(chaos);
        self
    }

    /// Enables request-lifecycle tracing.
    #[must_use]
    pub fn trace(mut self, trace: TracePolicy) -> Self {
        self.config.trace = Some(trace);
        self
    }

    /// Enables the flight recorder.
    #[must_use]
    pub fn journal(mut self, journal: JournalPolicy) -> Self {
        self.config.journal = Some(journal);
        self
    }

    /// Enables the burn-rate SLO engine.
    #[must_use]
    pub fn slo(mut self, slo: SloPolicy) -> Self {
        self.config.slo = Some(slo);
        self
    }

    /// Sets the deadline floor (see [`ServeConfig::deadline_floor`]).
    #[must_use]
    pub fn deadline_floor(mut self, floor: Duration) -> Self {
        self.config.deadline_floor = Some(floor);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero capacity, worker count
    /// or batch bound, an out-of-range resilience/chaos/golden
    /// parameter, or a `max_linger` above the deadline floor.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Handle for one submitted request. Redeem it with [`Ticket::wait`].
#[must_use = "an unredeemed ticket discards the request's result"]
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<Vec<Tensor>, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers.
    ///
    /// # Errors
    ///
    /// Propagates the server's typed verdict for this request, or
    /// [`ServeError::Disconnected`] if a worker died without replying.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Like [`Ticket::wait`] but gives up after `timeout`.
    ///
    /// Dropping the ticket afterwards orphans the request, never the
    /// server: a worker answering an orphaned request sends into a
    /// closed channel, which is ignored, and the request still counts
    /// in exactly one metrics bucket (the `accounted_for` invariant is
    /// property-tested under random timeout/fault schedules in
    /// `tests/chaos.rs`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] on timeout or a dead worker;
    /// otherwise the server's verdict.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<Tensor>, ServeError> {
        self.rx
            .recv_timeout(timeout)
            .unwrap_or(Err(ServeError::Disconnected))
    }
}

/// Multi-tenant batched model gateway.
///
/// ```
/// use vedliot_nnir::{zoo, Shape, Tensor};
/// use vedliot_serve::{Priority, ServeConfig, Server, SubmitRequest};
///
/// let graph = zoo::tiny_cnn("demo", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap();
/// let config = ServeConfig::builder().build().unwrap();
/// let server = Server::start(&graph, config).unwrap();
/// let input = Tensor::random(Shape::nchw(1, 1, 8, 8), 7, 1.0);
/// let ticket = server
///     .submit_request(SubmitRequest::new(vec![input]).priority(Priority::High))
///     .unwrap();
/// let outputs = ticket.wait().unwrap();
/// assert_eq!(outputs[0].shape(), &Shape::nf(1, 3));
/// server.shutdown();
/// ```
pub struct Server {
    gateway: Arc<GatewayShared>,
    /// Loaded pools in load order; the first entry is the default
    /// model.
    pools: RwLock<Vec<Arc<ModelPool>>>,
    /// Final snapshots of unloaded pools — aggregate accounting
    /// survives an unload.
    retired: Mutex<Vec<MetricsSnapshot>>,
    next_model_id: AtomicUsize,
    parallelism: Parallelism,
    resilience: ResilienceConfig,
    deadline_floor: Option<Duration>,
    shutting_down: AtomicBool,
}

impl Server {
    /// Boots the gateway and loads `graph` as the `"default"` model
    /// (compiled for batch sizes `1..=max_batch`, workers spawned).
    ///
    /// When a chaos plan requests weight bit flips, the flips corrupt
    /// the *deployed* batch-compiled graphs only; the golden copy held
    /// by a [`GoldenPolicy`] is taken before the corruption.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero capacity, worker count
    /// or batch bound, an out-of-range resilience/chaos parameter, or a
    /// golden policy on a model that is not single-input single-output;
    /// [`ServeError::Execution`] if the graph fails validation or batch
    /// rewriting.
    pub fn start(graph: &Graph, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let journal = config
            .journal
            .map(|p| Arc::new(EventJournal::new(p.capacity)));
        let slo = match config.slo {
            Some(policy) => {
                let mut engine =
                    SloEngine::new(policy.objectives()).map_err(ServeError::InvalidConfig)?;
                if let Some(journal) = &journal {
                    engine = engine.with_journal(Arc::clone(journal));
                }
                Some(SloShared {
                    engine: Mutex::new(engine),
                    last_at: AtomicU64::new(0),
                    burning: AtomicBool::new(false),
                    drive_health: policy.drive_health,
                    degraded_cause: AtomicU64::new(0),
                })
            }
            None => None,
        };
        let gateway = Arc::new(GatewayShared {
            total_queued: AtomicUsize::new(0),
            queue_capacity: config.queue_capacity,
            total_weight: AtomicU64::new(0),
            trace: config.trace.map(|t| TraceRing::new(t.capacity)),
            journal,
            slo,
            epoch: Instant::now(),
        });
        let server = Server {
            gateway,
            pools: RwLock::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            next_model_id: AtomicUsize::new(0),
            parallelism: config.parallelism,
            resilience: config.resilience,
            deadline_floor: config.deadline_floor,
            shutting_down: AtomicBool::new(false),
        };
        server.load(DEFAULT_MODEL, graph, config.default_model_config())?;
        Ok(server)
    }

    /// Loads `graph` under `key` as a new tenant: compiles its batch
    /// variants, spawns its pool and registers it for routing. Hot:
    /// traffic to other models is never paused.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an invalid model config or a
    /// key that is already loaded; [`ServeError::ShuttingDown`] once
    /// shutdown began; [`ServeError::Execution`] if the graph fails
    /// validation or batch rewriting.
    pub fn load(&self, key: &str, graph: &Graph, cfg: ModelConfig) -> Result<(), ServeError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        validate_model_config(&cfg, self.deadline_floor)?;
        let mut pools = self.pools.write().unwrap_or_else(PoisonError::into_inner);
        if pools.iter().any(|p| p.key == key) {
            return Err(ServeError::InvalidConfig(format!(
                "model '{key}' is already loaded"
            )));
        }
        let id = self.next_model_id.fetch_add(1, Ordering::Relaxed);
        let pool = ModelPool::start(
            key,
            id as u16,
            graph,
            &cfg,
            self.parallelism,
            self.resilience,
            Arc::clone(&self.gateway),
        )?;
        self.gateway
            .total_weight
            .fetch_add(u64::from(cfg.weight), Ordering::Relaxed);
        self.gateway.journal_append(
            self.gateway.now_us(),
            EventKind::ModelLoaded,
            CauseId::model(id as u64),
            CauseId::NONE,
            u64::from(cfg.weight),
        );
        pools.push(pool);
        Ok(())
    }

    /// Unloads the model registered under `key`: new submissions to it
    /// are refused immediately ([`ServeError::UnknownModel`]), queued
    /// requests drain with typed replies, its workers are joined, and
    /// its final statistics are returned (and folded into the gateway
    /// aggregate forever). If the default model is unloaded, the next
    /// still-loaded model (in load order) becomes the default.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if no such model is loaded.
    pub fn unload(&self, key: &str) -> Result<MetricsSnapshot, ServeError> {
        let pool = {
            let mut pools = self.pools.write().unwrap_or_else(PoisonError::into_inner);
            let idx = pools.iter().position(|p| p.key == key).ok_or_else(|| {
                ServeError::UnknownModel {
                    model: key.to_string(),
                }
            })?;
            pools.remove(idx)
        };
        pool.begin_shutdown();
        pool.join_workers();
        self.gateway
            .total_weight
            .fetch_sub(u64::from(pool.weight), Ordering::Relaxed);
        let snapshot = pool.snapshot();
        self.gateway.journal_append(
            self.gateway.now_us(),
            EventKind::ModelUnloaded,
            CauseId::model(u64::from(pool.id)),
            CauseId::NONE,
            0,
        );
        self.retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(snapshot.clone());
        Ok(snapshot)
    }

    /// Keys of the currently loaded models, in load order (the first is
    /// the default).
    #[must_use]
    pub fn models(&self) -> Vec<String> {
        self.pools
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|p| p.key.clone())
            .collect()
    }

    /// Submits one typed request (one single-sample tensor per graph
    /// input). Returns immediately with a [`Ticket`]; the request is
    /// answered by its model's pool, batched with whatever else that
    /// pool has queued — never with another model's requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unloaded model key,
    /// [`ServeError::InvalidInput`] on an input-signature mismatch,
    /// [`ServeError::Rejected`] when the gateway queue is full,
    /// [`ServeError::QuotaExceeded`] when the model's queue share is
    /// exhausted, [`ServeError::ShedLowPriority`] when degraded
    /// admission sheds the request, and [`ServeError::ShuttingDown`]
    /// after [`Server::shutdown`] began. (The quota/capacity refusals
    /// apply only when no strictly-lower-priority request could be
    /// displaced instead.)
    pub fn submit_request(&self, request: SubmitRequest) -> Result<Ticket, ServeError> {
        let pool = {
            let pools = self.pools.read().unwrap_or_else(PoisonError::into_inner);
            let found = match &request.model {
                Some(key) => pools.iter().find(|p| &p.key == key),
                None => pools.first(),
            };
            match found {
                Some(pool) => Arc::clone(pool),
                None => {
                    return Err(ServeError::UnknownModel {
                        model: request.model.unwrap_or_else(|| DEFAULT_MODEL.to_string()),
                    })
                }
            }
        };
        pool.submit(request.inputs, request.priority, request.deadline)
    }

    /// Submits one single-sample request to the default model at
    /// [`Priority::Normal`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit_request`].
    #[deprecated(
        note = "use submit_request(SubmitRequest::new(inputs).deadline(..)) — \
                the typed builder also selects the model and priority class"
    )]
    pub fn submit(
        &self,
        inputs: Vec<Tensor>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        let mut request = SubmitRequest::new(inputs);
        if let Some(d) = deadline {
            request = request.deadline(d);
        }
        self.submit_request(request)
    }

    /// Gateway-wide serving statistics: every live pool's counters plus
    /// the retained final snapshots of unloaded models, merged. The
    /// accounting partition (`accounted_for`) holds for the aggregate
    /// exactly as for each pool.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut aggregate = MetricsSnapshot::empty();
        for snapshot in self
            .retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            aggregate.merge(snapshot);
        }
        for pool in self
            .pools
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            aggregate.merge(&pool.snapshot());
        }
        aggregate
    }

    /// One model's current statistics.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if no such model is loaded.
    pub fn model_metrics(&self, key: &str) -> Result<MetricsSnapshot, ServeError> {
        self.with_pool(key, super::pool::ModelPool::snapshot)
    }

    /// The request-lifecycle spans currently held in the shared trace
    /// ring, oldest first — all models interleaved; the span's `model`
    /// field is the model's load-order id. Empty unless
    /// [`ServeConfig::trace`] was set. A span is recorded immediately
    /// *before* its reply is sent, so a request whose ticket has been
    /// redeemed is guaranteed visible here (until the ring overwrites
    /// it).
    #[must_use]
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.gateway
            .trace
            .as_ref()
            .map(TraceRing::snapshot)
            .unwrap_or_default()
    }

    /// The gateway's flight recorder, if [`ServeConfig::journal`] was
    /// set — share it with exporters or a fleet that journals into the
    /// same ring.
    #[must_use]
    pub fn journal(&self) -> Option<Arc<EventJournal>> {
        self.gateway.journal.as_ref().map(Arc::clone)
    }

    /// Every retained journal event, in sequence order. Empty unless
    /// [`ServeConfig::journal`] was set.
    #[must_use]
    pub fn journal_events(&self) -> Vec<Event> {
        self.gateway
            .journal
            .as_ref()
            .map(|j| j.snapshot())
            .unwrap_or_default()
    }

    /// The causal chain of `id` — "what shed request 42" is
    /// `journal_chain(CauseId::request(42))`; the walk follows `cause`
    /// citations upward until it reaches root-cause events.
    #[must_use]
    pub fn journal_chain(&self, id: CauseId) -> Vec<Event> {
        self.gateway
            .journal
            .as_ref()
            .map(|j| j.chain(id))
            .unwrap_or_default()
    }

    /// Evaluates every declared SLO objective at the engine's current
    /// clock (the largest recorded submission seq) and returns the
    /// fire/clear transitions. With [`SloPolicy::drive_health`], a
    /// firing alert flips admission to degraded mode here — and a
    /// clear restores it — with `HealthDegraded`/`HealthRecovered`
    /// journal events citing the alert, so burn-driven shedding is
    /// causally accounted end to end.
    ///
    /// Evaluation happens *only* here: callers control the evaluation
    /// points, which is what makes seeded replays bit-deterministic.
    /// No-op (empty) unless [`ServeConfig::slo`] was set.
    pub fn evaluate_slo(&self) -> Vec<SloTransition> {
        let Some(slo) = &self.gateway.slo else {
            return Vec::new();
        };
        let now = slo.last_at.load(Ordering::Relaxed);
        let (transitions, firing, alert_cause) = {
            let mut engine = slo.engine.lock().unwrap_or_else(PoisonError::into_inner);
            let transitions = engine.evaluate(now);
            (transitions, engine.firing(), engine.firing_cause())
        };
        let was_burning = slo.burning.load(Ordering::Relaxed);
        if firing && !was_burning {
            let cause = if alert_cause > 0 {
                CauseId::event(alert_cause)
            } else {
                CauseId::NONE
            };
            let seq = self.gateway.journal_append(
                now,
                EventKind::HealthDegraded,
                CauseId::model(0),
                cause,
                0,
            );
            slo.degraded_cause.store(seq, Ordering::Relaxed);
            slo.burning.store(true, Ordering::Relaxed);
        } else if !firing && was_burning {
            let degraded = slo.degraded_cause.load(Ordering::Relaxed);
            let cause = if degraded > 0 {
                CauseId::event(degraded)
            } else {
                CauseId::NONE
            };
            self.gateway.journal_append(
                now,
                EventKind::HealthRecovered,
                CauseId::model(0),
                cause,
                0,
            );
            slo.burning.store(false, Ordering::Relaxed);
        }
        transitions
    }

    /// Point-in-time burn/firing state of every declared objective (as
    /// of the last [`evaluate_slo`](Self::evaluate_slo)). Empty unless
    /// [`ServeConfig::slo`] was set.
    #[must_use]
    pub fn slo_states(&self) -> Vec<SloState> {
        self.gateway
            .slo
            .as_ref()
            .map(|s| {
                s.engine
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .states()
            })
            .unwrap_or_default()
    }

    /// The SLO engine's exporter view (subsystem `slo`), if configured.
    #[must_use]
    pub fn slo_export(&self) -> Option<Export> {
        self.gateway.slo.as_ref().map(|s| {
            s.engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .export()
        })
    }

    /// Gateway health: [`Health::Draining`] once shutdown began,
    /// [`Health::Degraded`] when *any* loaded pool is degraded,
    /// [`Health::Serving`] otherwise.
    #[must_use]
    pub fn health(&self) -> Health {
        if self.shutting_down.load(Ordering::Acquire) {
            return Health::Draining;
        }
        let pools = self.pools.read().unwrap_or_else(PoisonError::into_inner);
        if pools.iter().any(|p| p.health() == Health::Degraded) {
            Health::Degraded
        } else {
            Health::Serving
        }
    }

    /// One model's health.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if no such model is loaded.
    pub fn model_health(&self, key: &str) -> Result<Health, ServeError> {
        self.with_pool(key, ModelPool::health)
    }

    /// Graceful shutdown: refuses new submissions, drains every pool's
    /// queued requests (each still gets a typed reply), joins all
    /// workers — including any the supervisors respawned — and returns
    /// the final gateway-wide statistics.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.begin_shutdown();
        self.join_workers();
        self.metrics()
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let pools = self.live_pools();
        for pool in &pools {
            pool.begin_shutdown();
        }
    }

    fn join_workers(&self) {
        let pools = self.live_pools();
        for pool in &pools {
            pool.join_workers();
        }
    }

    fn live_pools(&self) -> Vec<Arc<ModelPool>> {
        self.pools
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(Arc::clone)
            .collect()
    }

    fn with_pool<T>(&self, key: &str, f: impl FnOnce(&ModelPool) -> T) -> Result<T, ServeError> {
        let pools = self.pools.read().unwrap_or_else(PoisonError::into_inner);
        pools
            .iter()
            .find(|p| p.key == key)
            .map(|p| f(p))
            .ok_or_else(|| ServeError::UnknownModel {
                model: key.to_string(),
            })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` already drained the pools; a plain drop still
        // stops and joins them so no thread outlives the server.
        self.begin_shutdown();
        self.join_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::Health;
    use vedliot_nnir::zoo;
    use vedliot_nnir::Shape;

    fn demo_graph() -> Graph {
        zoo::tiny_cnn("serve-test", Shape::nchw(1, 1, 8, 8), &[4], 3).unwrap()
    }

    fn demo_input(seed: u64) -> Tensor {
        Tensor::random(Shape::nchw(1, 1, 8, 8), seed, 1.0)
    }

    #[test]
    fn builder_rejects_zero_capacity_and_workers() {
        assert!(matches!(
            ServeConfig::builder().queue_capacity(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeConfig::builder().workers(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeConfig::builder()
                .batch(BatchPolicy {
                    max_batch: 0,
                    max_linger: Duration::ZERO,
                })
                .build(),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn builder_rejects_linger_above_the_deadline_floor() {
        let err = ServeConfig::builder()
            .batch(BatchPolicy {
                max_batch: 8,
                max_linger: Duration::from_millis(10),
            })
            .deadline_floor(Duration::from_millis(5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(msg) if msg.contains("deadline floor")));
        // At the floor exactly is fine.
        assert!(ServeConfig::builder()
            .batch(BatchPolicy {
                max_batch: 8,
                max_linger: Duration::from_millis(5),
            })
            .deadline_floor(Duration::from_millis(5))
            .build()
            .is_ok());
    }

    #[test]
    fn invalid_chaos_probability_is_rejected() {
        let cfg = ServeConfig {
            chaos: Some(FaultPlan {
                panic_per_batch: 2.0,
                ..FaultPlan::quiet(1)
            }),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_golden_period_is_rejected() {
        let cfg = ServeConfig {
            golden: Some(GoldenPolicy {
                period: 0,
                ..GoldenPolicy::default()
            }),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::start(&demo_graph(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wrong_input_arity_and_shape_are_typed_invalid_input() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let err = server
            .submit_request(SubmitRequest::new(vec![]))
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput(_)));
        let bad = Tensor::random(Shape::nchw(1, 1, 4, 4), 3, 1.0);
        assert!(matches!(
            server
                .submit_request(SubmitRequest::new(vec![bad]))
                .unwrap_err(),
            ServeError::InvalidInput(_)
        ));
    }

    #[test]
    fn single_request_round_trips() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        assert_eq!(server.health(), Health::Serving);
        assert_eq!(server.models(), vec![DEFAULT_MODEL.to_string()]);
        let out = server
            .submit_request(SubmitRequest::new(vec![demo_input(11)]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape(), &Shape::nf(1, 3));
        let m = server.shutdown();
        assert_eq!(m.served, 1);
        assert_eq!(m.served_by_priority, [0, 1, 0]);
        assert!(m.accounted_for());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_submit_routes_to_default_at_normal() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let out = server
            .submit(vec![demo_input(5)], None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out[0].shape(), &Shape::nf(1, 3));
        let m = server.shutdown();
        assert_eq!(m.submitted_by_priority, [0, 1, 0]);
        assert!(m.accounted_for());
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        server.begin_shutdown();
        assert_eq!(server.health(), Health::Draining);
        assert_eq!(
            server
                .submit_request(SubmitRequest::new(vec![demo_input(1)]))
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        assert_eq!(
            server.load("late", &demo_graph(), ModelConfig::default()),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn unknown_model_is_a_typed_refusal() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let err = server
            .submit_request(SubmitRequest::new(vec![demo_input(1)]).model("missing"))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownModel {
                model: "missing".into()
            }
        );
        assert!(server.model_metrics("missing").is_err());
        assert!(server.model_health("missing").is_err());
        server.shutdown();
    }

    #[test]
    fn load_routes_and_unload_drains() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        // Second tenant with a distinct class count so routing is
        // observable in the output shape.
        let other = zoo::tiny_cnn("other", Shape::nchw(1, 1, 8, 8), &[4], 5).unwrap();
        server
            .load("other", &other, ModelConfig::default().weight(3))
            .unwrap();
        assert_eq!(server.models(), vec!["default".to_string(), "other".into()]);
        // Duplicate keys are refused.
        assert!(matches!(
            server.load("other", &other, ModelConfig::default()),
            Err(ServeError::InvalidConfig(_))
        ));
        let out = server
            .submit_request(SubmitRequest::new(vec![demo_input(2)]).model("other"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out[0].shape(), &Shape::nf(1, 5), "routed to 'other'");
        let out = server
            .submit_request(SubmitRequest::new(vec![demo_input(3)]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out[0].shape(), &Shape::nf(1, 3), "default still default");
        // Unload returns the tenant's final accounting and folds it
        // into the aggregate.
        let final_other = server.unload("other").unwrap();
        assert_eq!(final_other.served, 1);
        assert!(final_other.accounted_for());
        assert_eq!(server.models(), vec!["default".to_string()]);
        assert_eq!(
            server
                .submit_request(SubmitRequest::new(vec![demo_input(4)]).model("other"))
                .unwrap_err(),
            ServeError::UnknownModel {
                model: "other".into()
            }
        );
        assert!(server.unload("other").is_err());
        let m = server.shutdown();
        // default: 2 submissions (one refused as UnknownModel never
        // reached a pool); other: 1. Aggregate keeps the unloaded
        // tenant's counters.
        assert_eq!(m.served, 2);
        assert!(m.accounted_for());
    }

    #[test]
    fn default_falls_to_next_model_after_unload() {
        let server = Server::start(&demo_graph(), ServeConfig::default()).unwrap();
        let other = zoo::tiny_cnn("other", Shape::nchw(1, 1, 8, 8), &[4], 5).unwrap();
        server
            .load("other", &other, ModelConfig::default())
            .unwrap();
        server.unload(DEFAULT_MODEL).unwrap();
        let out = server
            .submit_request(SubmitRequest::new(vec![demo_input(1)]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out[0].shape(), &Shape::nf(1, 5), "'other' became default");
        server.shutdown();
    }

    #[test]
    fn degraded_crash_threshold_sheds_lowest_priority_first() {
        // Crash-threshold degradation with a shed bound of half the
        // quota: Normal admission shrinks to 2 slots and the third
        // Normal submission is shed — the new typed refusal replaces
        // the old `Rejected{capacity}` answer.
        let server = Server::start(
            &demo_graph(),
            ServeConfig {
                queue_capacity: 4,
                batch: BatchPolicy {
                    max_batch: 4,
                    max_linger: Duration::from_secs(30),
                },
                resilience: ResilienceConfig {
                    degraded_crash_threshold: 1,
                    shed_to: 0.5,
                    ..ResilienceConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(server.health(), Health::Serving);
        server
            .with_pool(DEFAULT_MODEL, |pool| pool.metrics.inc_worker_crash())
            .unwrap();
        assert_eq!(server.health(), Health::Degraded);
        assert_eq!(server.model_health(DEFAULT_MODEL), Ok(Health::Degraded));
        let t1 = server
            .submit_request(SubmitRequest::new(vec![demo_input(1)]))
            .unwrap();
        let t2 = server
            .submit_request(SubmitRequest::new(vec![demo_input(2)]))
            .unwrap();
        // Shed bound ceil(0.5 * 4) = 2: the third Normal submission is
        // shed (no lower-priority work to displace).
        let err = server
            .submit_request(SubmitRequest::new(vec![demo_input(3)]))
            .unwrap_err();
        assert_eq!(err, ServeError::ShedLowPriority);
        let m = {
            let handle = std::thread::spawn(move || server.shutdown());
            assert!(t1.wait().is_ok());
            assert!(t2.wait().is_ok());
            handle.join().unwrap()
        };
        assert!(m.accounted_for());
        assert_eq!(m.rejected, 1);
        assert_eq!(m.shed_by_priority, [0, 1, 0]);
    }
}
