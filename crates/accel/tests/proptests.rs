//! Property-based tests of the performance model: results must respect
//! basic physical monotonicities for arbitrary plausible platforms.

use proptest::prelude::*;
use vedliot_accel::catalog::{AcceleratorClass, AcceleratorSpec};
use vedliot_accel::perf::PerfModel;
use vedliot_nnir::{zoo, DataType, Shape};

fn spec(class: AcceleratorClass, peak_gops: f64, tdp: f64, bw: f64) -> AcceleratorSpec {
    AcceleratorSpec {
        name: format!("synthetic-{class}"),
        vendor: "prop".into(),
        class,
        peak_gops: vec![(DataType::I8, peak_gops)],
        tdp_w: tdp,
        idle_w: tdp * 0.2,
        mem_bw_gbps: bw,
        on_chip_kib: 1024,
        fig4_platform: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More peak throughput never slows a workload down (all else equal).
    #[test]
    fn more_peak_never_slower(
        peak_lo in 100.0f64..2_000.0,
        factor in 1.0f64..20.0,
        bw in 5.0f64..200.0,
    ) {
        let model = zoo::tiny_cnn("p", Shape::nchw(1, 3, 32, 32), &[16, 32], 4).unwrap();
        let slow = PerfModel::new(spec(AcceleratorClass::Asic, peak_lo, 10.0, bw))
            .run(&model)
            .unwrap();
        let fast = PerfModel::new(spec(AcceleratorClass::Asic, peak_lo * factor, 10.0, bw))
            .run(&model)
            .unwrap();
        prop_assert!(fast.latency_ms <= slow.latency_ms + 1e-9);
    }

    /// More bandwidth never slows a workload down.
    #[test]
    fn more_bandwidth_never_slower(
        bw_lo in 1.0f64..50.0,
        factor in 1.0f64..10.0,
        peak in 200.0f64..5_000.0,
    ) {
        let model = zoo::mobilenet_v3_large(10).unwrap();
        let slow = PerfModel::new(spec(AcceleratorClass::Fpga, peak, 10.0, bw_lo))
            .run(&model)
            .unwrap();
        let fast = PerfModel::new(spec(AcceleratorClass::Fpga, peak, 10.0, bw_lo * factor))
            .run(&model)
            .unwrap();
        prop_assert!(fast.latency_ms <= slow.latency_ms + 1e-9);
    }

    /// Throughput (inferences/s) never decreases with batch size, and
    /// power stays within [idle, tdp] at every batch.
    #[test]
    fn batch_monotonicity_and_power_envelope(
        peak in 200.0f64..20_000.0,
        bw in 5.0f64..200.0,
        class_idx in 0usize..6,
    ) {
        let class = AcceleratorClass::ALL[class_idx];
        let platform = spec(class, peak, 15.0, bw);
        let model = zoo::tiny_cnn("p", Shape::nchw(1, 3, 32, 32), &[16, 32], 4).unwrap();
        let runs = PerfModel::new(platform.clone())
            .batch_sweep(&model, &[1, 2, 4, 8])
            .unwrap();
        for pair in runs.windows(2) {
            prop_assert!(
                pair[1].throughput_ips >= pair[0].throughput_ips * 0.999,
                "throughput dropped with batch on {class}"
            );
        }
        for run in &runs {
            prop_assert!(run.avg_power_w >= platform.idle_w - 1e-9);
            prop_assert!(run.avg_power_w <= platform.tdp_w + 1e-9);
            prop_assert!(run.utilization <= 1.0);
            prop_assert!(run.achieved_gops <= peak + 1e-6);
        }
    }

    /// Energy per inference equals power x latency / batch, always.
    #[test]
    fn energy_identity(
        peak in 200.0f64..5_000.0,
        bw in 5.0f64..100.0,
        batch in 1usize..6,
    ) {
        let model = zoo::tiny_cnn("p", Shape::nchw(1, 3, 16, 16), &[8], 2)
            .unwrap()
            .with_batch(batch)
            .unwrap();
        let run = PerfModel::new(spec(AcceleratorClass::Gpu, peak, 20.0, bw))
            .run(&model)
            .unwrap();
        let expected = run.avg_power_w * (run.latency_ms / 1e3) / batch as f64;
        prop_assert!((run.energy_per_inference_j - expected).abs() <= expected * 1e-9 + 1e-12);
    }
}
