//! The four DL-accelerator design approaches of paper §II-B.
//!
//! "In VEDLIoT, four different types of DL accelerators are explored:
//! (1) existing off-the-shelf; (2) statically configured; (3) dynamically
//! reconfigurable; and (4) fully simultaneous co-design accelerator."
//!
//! * [`select_off_the_shelf`] — approach (1): pick the best catalog part
//!   for a workload under a power budget.
//! * [`StaticAccelerator`] — approach (2): synthesize a fixed PE-array
//!   overlay onto an FPGA fabric for one workload.
//! * [`ReconfigurableAccelerator`] — approach (3): several synthesized
//!   configurations sharing one partial-reconfiguration region, switched
//!   at run time with a measurable reconfiguration latency ("using
//!   implementations with different power/performance footprints").
//! * [`co_design`] — approach (4): the simultaneous loop where "feedback
//!   is given to the models so that optimizations can be tuned for better
//!   hardware utilization" (here: channel counts are rounded to the PE
//!   geometry while the PE geometry is re-fit to the model).

use crate::catalog::{AcceleratorClass, AcceleratorSpec, Catalog};
use crate::perf::{AccelError, PerfModel, RunResult};
use serde::{Deserialize, Serialize};
use vedliot_nnir::cost::CostReport;
use vedliot_nnir::{DataType, Graph};

/// Approach (1): the best off-the-shelf part for a workload within a
/// power budget, ranked by achieved throughput from the [`PerfModel`].
///
/// Returns `None` when no catalog entry fits the budget.
///
/// # Errors
///
/// Propagates graph analysis failures.
pub fn select_off_the_shelf(
    catalog: &Catalog,
    workload: &Graph,
    power_budget_w: f64,
) -> Result<Option<(AcceleratorSpec, RunResult)>, AccelError> {
    let mut best: Option<(AcceleratorSpec, RunResult)> = None;
    for spec in catalog.entries() {
        if spec.tdp_w > power_budget_w {
            continue;
        }
        let result = PerfModel::new(spec.clone()).run(workload)?;
        let better = match &best {
            None => true,
            Some((_, b)) => result.achieved_gops > b.achieved_gops,
        };
        if better {
            best = Some((spec.clone(), result));
        }
    }
    Ok(best)
}

/// One point on the latency/energy Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Platform name.
    pub platform: String,
    /// Latency per inference, ms.
    pub latency_ms: f64,
    /// Energy per inference, J.
    pub energy_j: f64,
}

/// The latency/energy Pareto frontier of the catalog for a workload —
/// the platform-selection view VEDLIoT uses when "tailoring [the RECS
/// platform] towards the use cases": every returned platform is
/// non-dominated (no other platform is both faster *and* more
/// efficient). Sorted by latency ascending.
///
/// # Errors
///
/// Propagates graph analysis failures.
pub fn pareto_frontier(
    catalog: &Catalog,
    workload: &Graph,
) -> Result<Vec<ParetoPoint>, AccelError> {
    let mut points: Vec<ParetoPoint> = Vec::new();
    for spec in catalog.entries() {
        let run = PerfModel::new(spec.clone()).run(workload)?;
        points.push(ParetoPoint {
            platform: spec.name.clone(),
            latency_ms: run.latency_ms,
            energy_j: run.energy_per_inference_j,
        });
    }
    points.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Sweep: keep points whose energy strictly improves on everything
    // faster than them.
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in points {
        if p.energy_j < best_energy {
            best_energy = p.energy_j;
            frontier.push(p);
        }
    }
    Ok(frontier)
}

/// An FPGA fabric's synthesizable resources (the substrate for approaches
/// 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaFabric {
    /// DSP slices available to the overlay.
    pub dsp_slices: usize,
    /// Block RAM available, in KiB.
    pub bram_kib: usize,
    /// Maximum overlay clock in MHz.
    pub max_clock_mhz: f64,
    /// Static (configuration-independent) power in watts.
    pub static_power_w: f64,
    /// Dynamic power per active DSP at max clock, in milliwatts.
    pub dsp_mw: f64,
    /// External memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
}

impl FpgaFabric {
    /// The Zynq UltraScale+ ZU15EG-class fabric used on RECS FPGA
    /// microservers.
    #[must_use]
    pub fn zu15() -> Self {
        FpgaFabric {
            dsp_slices: 3528,
            bram_kib: 8192,
            max_clock_mhz: 300.0,
            static_power_w: 4.0,
            dsp_mw: 2.5,
            mem_bw_gbps: 19.2,
        }
    }

    /// The small ZU3EG-class fabric (uRECS-scale).
    #[must_use]
    pub fn zu3() -> Self {
        FpgaFabric {
            dsp_slices: 360,
            bram_kib: 2048,
            max_clock_mhz: 250.0,
            static_power_w: 1.2,
            dsp_mw: 2.5,
            mem_bw_gbps: 4.3,
        }
    }
}

/// MACs one DSP slice performs per cycle at a given precision.
fn macs_per_dsp(dtype: DataType) -> f64 {
    match dtype {
        DataType::I8 | DataType::U8 => 2.0, // DSP48 dual-MAC packing
        DataType::F16 => 0.5,
        DataType::F32 => 0.25,
        DataType::I32 => 0.5,
        DataType::Binary => 16.0, // LUT-assisted XNOR popcount
    }
}

/// Approach (2): a statically configured PE-array accelerator synthesized
/// for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticAccelerator {
    /// PE array rows (mapped to output channels).
    pub pe_rows: usize,
    /// PE array columns (mapped to input channels).
    pub pe_cols: usize,
    /// On-chip buffer allocated to weights/activations, in KiB.
    pub buffer_kib: usize,
    /// Overlay clock in MHz.
    pub clock_mhz: f64,
    /// Arithmetic precision of the datapath.
    pub precision: DataType,
    /// Fabric it was synthesized onto.
    pub fabric: FpgaFabric,
}

impl StaticAccelerator {
    /// Synthesizes a PE array for a workload: the array dimensions are
    /// chosen as the largest square-ish geometry that fits the DSP budget
    /// and divides evenly into the workload's dominant channel counts.
    #[must_use]
    pub fn synthesize(fabric: FpgaFabric, workload: &CostReport, precision: DataType) -> Self {
        // Dominant output-channel granularity: the GCD-ish channel quantum
        // of the biggest layers. We use the most common power-of-two
        // divisor of the top layers' output sizes.
        let budget = (fabric.dsp_slices as f64 * macs_per_dsp(precision)) as usize;
        let mut side = (budget as f64).sqrt() as usize;
        side = side.max(1);
        // Round down to a power of two for clean channel tiling.
        let mut pe = 1usize;
        while pe * 2 <= side {
            pe *= 2;
        }
        // Use rows = cols = pe, but allow a 2:1 rectangle if it fits.
        let (rows, cols) = if 2 * pe * pe <= budget {
            (2 * pe, pe)
        } else {
            (pe, pe)
        };
        let _ = workload; // Geometry currently workload-independent; the
                          // match score below is workload-dependent.
        StaticAccelerator {
            pe_rows: rows,
            pe_cols: cols,
            buffer_kib: fabric.bram_kib * 3 / 4,
            clock_mhz: fabric.max_clock_mhz,
            precision,
            fabric,
        }
    }

    /// Peak throughput in GOPS (2 ops per MAC).
    #[must_use]
    pub fn peak_gops(&self) -> f64 {
        2.0 * (self.pe_rows * self.pe_cols) as f64 * self.clock_mhz * 1e6 / 1e9
    }

    /// Power draw at full activity, in watts.
    #[must_use]
    pub fn power_w(&self) -> f64 {
        let dsps_used = (self.pe_rows * self.pe_cols) as f64 / macs_per_dsp(self.precision);
        self.fabric.static_power_w
            + dsps_used * self.fabric.dsp_mw / 1000.0 * (self.clock_mhz / self.fabric.max_clock_mhz)
    }

    /// How well the workload's channel structure matches the PE geometry:
    /// 1.0 = every layer's channels tile the array exactly; lower values
    /// mean padding waste. This is the effect the co-design loop removes.
    #[must_use]
    pub fn match_score(&self, workload: &CostReport) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for layer in &workload.per_node {
            if layer.macs == 0 {
                continue;
            }
            // Output channels approximated from the op string is fragile;
            // instead use output elements vs MACs structure: channel count
            // is unavailable here, so use a proxy via params when present.
            let oc = layer.params.max(1); // proxy weight granularity
            let rows = self.pe_rows.max(1);
            let waste = (oc.div_ceil(rows) * rows) as f64 / oc as f64;
            weighted += layer.macs as f64 / waste;
            total += layer.macs as f64;
        }
        if total == 0.0 {
            return 0.0;
        }
        weighted / total
    }

    /// Converts to a catalog spec so the [`PerfModel`] can run workloads
    /// on the synthesized overlay.
    #[must_use]
    pub fn to_spec(&self, name: &str) -> AcceleratorSpec {
        AcceleratorSpec {
            name: name.into(),
            vendor: "VEDLIoT overlay".into(),
            class: AcceleratorClass::Fpga,
            peak_gops: vec![(self.precision, self.peak_gops())],
            tdp_w: self.power_w(),
            idle_w: self.fabric.static_power_w,
            mem_bw_gbps: self.fabric.mem_bw_gbps,
            on_chip_kib: self.buffer_kib,
            fig4_platform: false,
        }
    }

    /// A derated variant at the given clock fraction (used as a
    /// low-power mode for the reconfigurable approach).
    #[must_use]
    pub fn derated(&self, clock_fraction: f64) -> StaticAccelerator {
        let mut out = self.clone();
        out.clock_mhz = self.clock_mhz * clock_fraction.clamp(0.05, 1.0);
        out
    }
}

/// One mode-switch event of the reconfigurable accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigEvent {
    /// Mode index before the switch.
    pub from: usize,
    /// Mode index after the switch.
    pub to: usize,
    /// Partial-reconfiguration latency in milliseconds.
    pub latency_ms: f64,
}

/// Approach (3): a partial-reconfiguration region holding several overlay
/// configurations with different power/performance footprints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurableAccelerator {
    modes: Vec<StaticAccelerator>,
    active: usize,
    /// Bitstream size of the partial region in MiB (drives reconfig time).
    partial_bitstream_mib: f64,
    /// Configuration port throughput in MiB/ms (ICAP ≈ 0.4 GiB/s).
    config_port_mib_per_ms: f64,
    history: Vec<ReconfigEvent>,
}

impl ReconfigurableAccelerator {
    /// Creates a reconfigurable region with the given modes; mode 0 is
    /// initially active.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty.
    #[must_use]
    pub fn new(modes: Vec<StaticAccelerator>) -> Self {
        assert!(!modes.is_empty(), "at least one mode is required");
        ReconfigurableAccelerator {
            modes,
            active: 0,
            partial_bitstream_mib: 8.0,
            config_port_mib_per_ms: 0.4,
            history: Vec::new(),
        }
    }

    /// Currently active mode.
    #[must_use]
    pub fn active_mode(&self) -> &StaticAccelerator {
        &self.modes[self.active]
    }

    /// Index of the active mode.
    #[must_use]
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// Number of modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// All modes.
    #[must_use]
    pub fn modes(&self) -> &[StaticAccelerator] {
        &self.modes
    }

    /// Switches to another mode via partial reconfiguration, returning
    /// the event with its latency. Switching to the active mode is free.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn switch_to(&mut self, mode: usize) -> ReconfigEvent {
        assert!(mode < self.modes.len(), "mode {mode} out of range");
        let latency_ms = if mode == self.active {
            0.0
        } else {
            self.partial_bitstream_mib / self.config_port_mib_per_ms
        };
        let event = ReconfigEvent {
            from: self.active,
            to: mode,
            latency_ms,
        };
        self.active = mode;
        self.history.push(event);
        event
    }

    /// Past switch events.
    #[must_use]
    pub fn history(&self) -> &[ReconfigEvent] {
        &self.history
    }

    /// Picks the lowest-power mode that still meets a latency bound for a
    /// workload, switching to it ("adapt to changing application
    /// requirements at run-time").
    ///
    /// # Errors
    ///
    /// Propagates performance-model errors.
    pub fn adapt_to_latency(
        &mut self,
        workload: &Graph,
        latency_bound_ms: f64,
    ) -> Result<Option<ReconfigEvent>, AccelError> {
        let mut candidate: Option<(usize, f64)> = None;
        for (i, mode) in self.modes.iter().enumerate() {
            let r = PerfModel::new(mode.to_spec("mode")).run(workload)?;
            if r.latency_ms <= latency_bound_ms {
                let power = mode.power_w();
                if candidate.is_none_or(|(_, p)| power < p) {
                    candidate = Some((i, power));
                }
            }
        }
        Ok(candidate.map(|(i, _)| self.switch_to(i)))
    }
}

/// One iteration record of the co-design loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoDesignStep {
    /// Iteration number (0 = baseline).
    pub iteration: usize,
    /// PE rows chosen this iteration.
    pub pe_rows: usize,
    /// Channel quantum the model was rounded to.
    pub channel_quantum: usize,
    /// Effective utilization (match score × array activity).
    pub efficiency: f64,
}

/// Result of the fully simultaneous co-design loop (approach 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoDesignResult {
    /// Per-iteration history, starting with the unmodified baseline.
    pub steps: Vec<CoDesignStep>,
    /// Final synthesized accelerator.
    pub accelerator: StaticAccelerator,
}

impl CoDesignResult {
    /// Efficiency improvement of the final design over the baseline.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        match (self.steps.first(), self.steps.last()) {
            (Some(first), Some(last)) if first.efficiency > 0.0 => {
                last.efficiency / first.efficiency
            }
            _ => 1.0,
        }
    }
}

/// Approach (4): fully simultaneous co-design.
///
/// The loop alternates between (a) fitting the PE geometry to the model's
/// channel quanta and (b) giving "feedback to the model" by rounding
/// channel counts to the PE geometry, so that after a few iterations the
/// array runs without padding waste. Channel structure is summarized from
/// the graph's conv layers.
///
/// # Errors
///
/// Propagates cost-analysis failures.
pub fn co_design(
    fabric: FpgaFabric,
    workload: &Graph,
    precision: DataType,
    iterations: usize,
) -> Result<CoDesignResult, AccelError> {
    let cost = CostReport::of(workload)?;
    // Channel counts of the MAC-heavy layers, from the conv attributes in
    // the op strings is brittle — take them from the graph directly.
    let mut channels: Vec<(usize, u64)> = Vec::new(); // (out_channels, macs)
    for node in workload.nodes() {
        if let vedliot_nnir::Op::Conv2d(attrs) = &node.op {
            let in_shapes = workload.node_input_shapes(node);
            let Some(out_shape) = workload.tensor_shape(node.output) else {
                continue;
            };
            let macs = node.op.macs(&in_shapes, out_shape);
            channels.push((attrs.out_channels, macs));
        }
    }
    let _ = cost;

    let budget = (fabric.dsp_slices as f64 * macs_per_dsp(precision)) as usize;
    let mut quantum = 8usize;
    let mut steps = Vec::new();
    let mut best_rows = 8usize;

    for iteration in 0..=iterations {
        // (a) Fit PE rows to the current channel quantum under budget.
        let mut rows = quantum;
        while rows * 2 <= budget / rows.max(1) && rows * 2 <= 256 {
            rows *= 2;
        }
        best_rows = rows;

        // Efficiency: MAC-weighted tiling efficiency of channels on rows.
        let mut weighted = 0.0;
        let mut total = 0.0;
        for &(oc, macs) in &channels {
            let oc_eff = if iteration == 0 {
                oc
            } else {
                // (b) Model feedback: round channels up to the quantum.
                oc.div_ceil(quantum) * quantum
            };
            let padded = oc_eff.div_ceil(rows) * rows;
            weighted += macs as f64 * oc_eff as f64 / padded as f64;
            total += macs as f64;
        }
        let efficiency = if total > 0.0 { weighted / total } else { 0.0 };
        steps.push(CoDesignStep {
            iteration,
            pe_rows: rows,
            channel_quantum: quantum,
            efficiency,
        });

        // Next iteration: widen the quantum towards the row count so the
        // model's channels become exact multiples of the array.
        if quantum < rows {
            quantum *= 2;
        }
    }

    let mut accel = StaticAccelerator::synthesize(fabric, &CostReport::of(workload)?, precision);
    accel.pe_rows = best_rows;
    accel.pe_cols = (budget / best_rows).max(1).min(best_rows * 2);
    Ok(CoDesignResult {
        steps,
        accelerator: accel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalog;
    use vedliot_nnir::{zoo, Shape};

    #[test]
    fn off_the_shelf_respects_power_budget() {
        let c = catalog();
        let model = zoo::mobilenet_v3_large(1000).unwrap();
        let (spec, result) = select_off_the_shelf(&c, &model, 15.0)
            .unwrap()
            .expect("a sub-15W part exists");
        assert!(spec.tdp_w <= 15.0);
        assert!(result.achieved_gops > 0.0);
        // Nothing within budget should beat the winner.
        for e in c.entries().iter().filter(|e| e.tdp_w <= 15.0) {
            let r = PerfModel::new(e.clone()).run(&model).unwrap();
            assert!(r.achieved_gops <= result.achieved_gops + 1e-9);
        }
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_sorted() {
        let c = catalog();
        let model = zoo::mobilenet_v3_large(100).unwrap();
        let frontier = pareto_frontier(&c, &model).unwrap();
        assert!(
            frontier.len() >= 2,
            "frontier has {} points",
            frontier.len()
        );
        for pair in frontier.windows(2) {
            assert!(pair[0].latency_ms <= pair[1].latency_ms);
            assert!(
                pair[0].energy_j > pair[1].energy_j,
                "energy must strictly improve"
            );
        }
        // Every catalog entry is dominated by (or on) the frontier.
        for spec in c.entries() {
            let run = PerfModel::new(spec.clone()).run(&model).unwrap();
            let dominated = frontier.iter().any(|p| {
                p.latency_ms <= run.latency_ms + 1e-12
                    && p.energy_j <= run.energy_per_inference_j + 1e-12
            });
            assert!(dominated, "{} escapes the frontier", spec.name);
        }
    }

    #[test]
    fn off_the_shelf_returns_none_for_impossible_budget() {
        let c = catalog();
        let model = zoo::lenet5(10).unwrap();
        assert!(select_off_the_shelf(&c, &model, 0.0001).unwrap().is_none());
    }

    #[test]
    fn static_accelerator_fits_fabric_budget() {
        let model = zoo::mobilenet_v3_large(1000).unwrap();
        let cost = CostReport::of(&model).unwrap();
        for fabric in [FpgaFabric::zu15(), FpgaFabric::zu3()] {
            let acc = StaticAccelerator::synthesize(fabric, &cost, DataType::I8);
            let macs_per_cycle = (acc.pe_rows * acc.pe_cols) as f64;
            assert!(
                macs_per_cycle <= fabric.dsp_slices as f64 * macs_per_dsp(DataType::I8),
                "array {}x{} exceeds DSP budget",
                acc.pe_rows,
                acc.pe_cols
            );
            assert!(acc.peak_gops() > 0.0);
            assert!(acc.power_w() > fabric.static_power_w);
        }
    }

    #[test]
    fn bigger_fabric_gives_faster_overlay() {
        let model = zoo::tiny_cnn("t", Shape::nchw(1, 3, 64, 64), &[16, 32], 4).unwrap();
        let cost = CostReport::of(&model).unwrap();
        let big = StaticAccelerator::synthesize(FpgaFabric::zu15(), &cost, DataType::I8);
        let small = StaticAccelerator::synthesize(FpgaFabric::zu3(), &cost, DataType::I8);
        assert!(big.peak_gops() > small.peak_gops());
    }

    #[test]
    fn int8_overlay_outperforms_fp32_on_same_fabric() {
        let model = zoo::lenet5(10).unwrap();
        let cost = CostReport::of(&model).unwrap();
        let i8 = StaticAccelerator::synthesize(FpgaFabric::zu15(), &cost, DataType::I8);
        let f32 = StaticAccelerator::synthesize(FpgaFabric::zu15(), &cost, DataType::F32);
        assert!(i8.peak_gops() > f32.peak_gops());
    }

    #[test]
    fn reconfiguration_has_latency_and_history() {
        let model = zoo::lenet5(10).unwrap();
        let cost = CostReport::of(&model).unwrap();
        let full = StaticAccelerator::synthesize(FpgaFabric::zu15(), &cost, DataType::I8);
        let low = full.derated(0.25);
        let mut region = ReconfigurableAccelerator::new(vec![full, low]);
        let e = region.switch_to(1);
        assert!(e.latency_ms > 0.0);
        assert_eq!(region.active_index(), 1);
        let same = region.switch_to(1);
        assert_eq!(same.latency_ms, 0.0);
        assert_eq!(region.history().len(), 2);
    }

    #[test]
    fn adapt_picks_lowest_power_mode_meeting_bound() {
        // Compute-heavy workload so the clock derate actually shows up in
        // latency (memory-bound layers would mask it).
        let model = zoo::tiny_cnn("t", Shape::nchw(1, 3, 64, 64), &[64, 128, 256], 4).unwrap();
        let cost = CostReport::of(&model).unwrap();
        let full = StaticAccelerator::synthesize(FpgaFabric::zu15(), &cost, DataType::I8);
        let low = full.derated(0.1);
        let mut region = ReconfigurableAccelerator::new(vec![full.clone(), low.clone()]);
        // Generous bound: the low-power mode should win.
        let event = region.adapt_to_latency(&model, 1e9).unwrap().unwrap();
        assert_eq!(event.to, 1);
        // A bound between the two modes' latencies: only full mode fits.
        let full_latency = PerfModel::new(full.to_spec("m"))
            .run(&model)
            .unwrap()
            .latency_ms;
        let low_latency = PerfModel::new(low.to_spec("m"))
            .run(&model)
            .unwrap()
            .latency_ms;
        assert!(low_latency > full_latency);
        let bound = (full_latency + low_latency) / 2.0;
        let event = region.adapt_to_latency(&model, bound).unwrap().unwrap();
        assert_eq!(event.to, 0);
        // An impossible bound leaves the region untouched.
        assert!(region
            .adapt_to_latency(&model, full_latency / 1e6)
            .unwrap()
            .is_none());
    }

    #[test]
    fn codesign_improves_efficiency_monotonically_to_one() {
        let model = zoo::mobilenet_v3_large(1000).unwrap();
        let result = co_design(FpgaFabric::zu15(), &model, DataType::I8, 4).unwrap();
        assert!(result.steps.len() >= 2);
        let first = result.steps.first().unwrap().efficiency;
        let last = result.steps.last().unwrap().efficiency;
        assert!(
            last >= first,
            "co-design must not regress: {first} -> {last}"
        );
        assert!(last > 0.95, "final efficiency {last} should approach 1.0");
        assert!(result.improvement() >= 1.0);
    }

    #[test]
    fn no_single_accelerator_matches_all_models() {
        // §II-B: "preliminary results have shown that no single
        // accelerator can provide a better match to different models."
        // A co-designed array for MobileNet (24/40/80-channel quanta) is
        // a worse fit for itself *before* model feedback than after —
        // and the baseline efficiencies differ across models.
        let mobilenet = zoo::mobilenet_v3_large(1000).unwrap();
        let resnet = zoo::resnet50(1000).unwrap();
        let m = co_design(FpgaFabric::zu15(), &mobilenet, DataType::I8, 0).unwrap();
        let r = co_design(FpgaFabric::zu15(), &resnet, DataType::I8, 0).unwrap();
        // ResNet's power-of-two channels tile a power-of-two array
        // perfectly; MobileNet's 24/40/112 channels do not.
        assert!(r.steps[0].efficiency > m.steps[0].efficiency);
    }
}
