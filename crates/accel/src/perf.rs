//! Roofline performance and power model — the machinery behind Fig. 4.
//!
//! The paper measured YoloV4 throughput (GOPS) and power across ten
//! platforms at batch sizes 1/4/8. Those measurements are reproduced here
//! with an analytical model that captures the three effects visible in
//! the figure:
//!
//! 1. **Roofline**: each layer is either compute-bound (MACs over peak
//!    throughput at the chosen precision) or memory-bound (weight +
//!    activation traffic over DRAM bandwidth).
//! 2. **Batch-dependent utilization**: GPUs are badly under-utilized at
//!    batch 1 and improve towards batch 8, FPGAs/dataflow parts are batch
//!    insensitive, CPUs barely change — which is why the B1→B8 spread in
//!    Fig. 4 is large for GPUs and small elsewhere.
//! 3. **Pipeline fill**: layers too small to fill the machine get further
//!    de-rated (kernel-launch / systolic-fill overhead), so very large
//!    parts don't reach peak on small layers.
//!
//! Power is modelled as idle + dynamic power proportional to achieved
//! utilization, clamped to TDP, which reproduces the "more batch = more
//! throughput *and* more power" pattern of the figure.

use crate::catalog::{AcceleratorClass, AcceleratorSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use vedliot_nnir::cost::CostReport;
use vedliot_nnir::profile::RunProfile;
use vedliot_nnir::{DataType, Graph, NnirError};

/// Error produced by the performance model.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// The accelerator does not support the requested precision.
    PrecisionUnsupported {
        /// Platform name.
        platform: String,
        /// The unsupported datatype.
        dtype: DataType,
    },
    /// The workload graph was malformed.
    Graph(NnirError),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::PrecisionUnsupported { platform, dtype } => {
                write!(f, "{platform} does not support {dtype}")
            }
            AccelError::Graph(e) => write!(f, "workload graph error: {e}"),
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Graph(e) => Some(e),
            AccelError::PrecisionUnsupported { .. } => None,
        }
    }
}

impl From<NnirError> for AccelError {
    fn from(e: NnirError) -> Self {
        AccelError::Graph(e)
    }
}

/// Which roof limited a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by arithmetic throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

/// Per-layer timing record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Layer name from the graph.
    pub name: String,
    /// MACs executed.
    pub macs: u64,
    /// Time on the compute roof in microseconds.
    pub compute_us: f64,
    /// Time on the memory roof in microseconds.
    pub memory_us: f64,
    /// Actual layer latency (max of the roofs).
    pub latency_us: f64,
    /// Modelled memory traffic (weights + activations) in bytes at the
    /// run's precision.
    #[serde(default)]
    pub bytes: u64,
    /// Which roof limited the layer.
    pub bound: Bound,
}

impl LayerTiming {
    /// Arithmetic intensity in operations per byte of modelled traffic
    /// (2·MACs over weight + activation bytes). Quantizing to INT8
    /// shrinks the traffic 4× vs FP32, so intensity rises 4× — the
    /// roofline argument for the INT8 execution path.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            2.0 * self.macs as f64 / self.bytes as f64
        }
    }
}

/// Result of running one workload on one platform at one batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Platform name.
    pub platform: String,
    /// Workload model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Precision the workload executed at.
    pub precision: DataType,
    /// End-to-end latency for the whole batch in milliseconds.
    pub latency_ms: f64,
    /// Inferences per second (batch / latency).
    pub throughput_ips: f64,
    /// Achieved GOPS (total ops / latency) — the y-axis of Fig. 4.
    pub achieved_gops: f64,
    /// Average power draw in watts — the second series of Fig. 4.
    pub avg_power_w: f64,
    /// Energy per inference in joules.
    pub energy_per_inference_j: f64,
    /// Achieved fraction of peak throughput.
    pub utilization: f64,
    /// Per-layer breakdown.
    pub per_layer: Vec<LayerTiming>,
}

impl RunResult {
    /// Achieved efficiency in GOPS per watt.
    #[must_use]
    pub fn gops_per_watt(&self) -> f64 {
        if self.avg_power_w <= 0.0 {
            return 0.0;
        }
        self.achieved_gops / self.avg_power_w
    }

    /// Whole-model arithmetic intensity: total modelled operations over
    /// total modelled memory traffic, in ops per byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes: u64 = self.per_layer.iter().map(|l| l.bytes).sum();
        if bytes == 0 {
            0.0
        } else {
            self.per_layer
                .iter()
                .map(|l| 2.0 * l.macs as f64)
                .sum::<f64>()
                / bytes as f64
        }
    }

    /// Fraction of execution *time* spent in memory-bound layers.
    #[must_use]
    pub fn memory_bound_fraction(&self) -> f64 {
        let total: f64 = self.per_layer.iter().map(|l| l.latency_us).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.per_layer
            .iter()
            .filter(|l| l.bound == Bound::Memory)
            .map(|l| l.latency_us)
            .sum::<f64>()
            / total
    }
}

/// One layer's measured execution joined against the roofline
/// prediction (see [`PerfModel::compare_profile`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerComparison {
    /// Layer name (match key between profile and prediction).
    pub name: String,
    /// Measured kernel duration in microseconds.
    pub measured_us: f64,
    /// Roofline-predicted latency in microseconds.
    pub predicted_us: f64,
    /// Achieved GOPS from the measurement.
    pub measured_gops: f64,
    /// Predicted GOPS from the roofline.
    pub predicted_gops: f64,
    /// Which roof the model says limits this layer.
    pub bound: Bound,
}

impl LayerComparison {
    /// Measured over predicted latency: > 1 means the layer ran slower
    /// than the model predicts for this platform.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.predicted_us <= 0.0 {
            return 0.0;
        }
        self.measured_us / self.predicted_us
    }
}

/// A measured profile joined against one platform's prediction —
/// Fig. 4's measured-vs-theoretical comparison, per layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileComparison {
    /// Platform the prediction was made for.
    pub platform: String,
    /// Workload model name (from the measured profile).
    pub model: String,
    /// Measured wall time of the profiled pass in microseconds.
    pub measured_total_us: f64,
    /// Predicted end-to-end latency in microseconds.
    pub predicted_total_us: f64,
    /// Per-layer join, in prediction order.
    pub per_layer: Vec<LayerComparison>,
}

impl fmt::Display for ProfileComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {}: measured {:.0} us vs predicted {:.0} us",
            self.model, self.platform, self.measured_total_us, self.predicted_total_us
        )?;
        for l in &self.per_layer {
            writeln!(
                f,
                "  {:<12} measured {:>10.1} us ({:>8.3} GOPS)  predicted {:>10.1} us ({:>8.3} GOPS)  {:?}-bound",
                l.name, l.measured_us, l.measured_gops, l.predicted_us, l.predicted_gops, l.bound
            )?;
        }
        Ok(())
    }
}

/// Class-specific utilization parameters.
struct UtilParams {
    /// Utilization of the compute roof at batch 1.
    base: f64,
    /// Asymptotic utilization at large batch.
    max: f64,
    /// Batches-to-half-saturation of the batch ramp.
    half_sat: f64,
    /// Seconds of work needed to fill the machine's pipeline.
    fill_s: f64,
}

fn util_params(class: AcceleratorClass) -> UtilParams {
    match class {
        AcceleratorClass::Cpu => UtilParams {
            base: 0.12,
            max: 0.16,
            half_sat: 4.0,
            fill_s: 1e-6,
        },
        AcceleratorClass::Gpu => UtilParams {
            base: 0.28,
            max: 0.65,
            half_sat: 3.0,
            fill_s: 10e-6,
        },
        AcceleratorClass::EmbeddedGpu => UtilParams {
            base: 0.16,
            max: 0.50,
            half_sat: 3.0,
            fill_s: 8e-6,
        },
        AcceleratorClass::Fpga => UtilParams {
            base: 0.50,
            max: 0.60,
            half_sat: 1.0,
            fill_s: 5e-6,
        },
        AcceleratorClass::Asic => UtilParams {
            base: 0.35,
            max: 0.60,
            half_sat: 2.0,
            fill_s: 10e-6,
        },
        AcceleratorClass::Microcontroller => UtilParams {
            base: 0.55,
            max: 0.65,
            half_sat: 1.0,
            fill_s: 1e-6,
        },
    }
}

/// The analytical performance/power model for one accelerator.
///
/// ```
/// use vedliot_accel::{catalog, perf::PerfModel};
/// use vedliot_nnir::zoo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = zoo::mobilenet_v3_large(1000)?;
/// let nx = catalog::catalog().find("Xavier NX").expect("entry").clone();
/// let b1 = PerfModel::new(nx.clone()).run(&model)?;
/// let b8 = PerfModel::new(nx).run(&model.with_batch(8)?)?;
/// // Larger batches improve achieved throughput on embedded GPUs.
/// assert!(b8.achieved_gops > b1.achieved_gops);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    spec: AcceleratorSpec,
    precision: Option<DataType>,
}

impl PerfModel {
    /// Model for a platform at its best supported precision (the paper's
    /// methodology: "the tests were executed using INT8, FP16 or FP32"
    /// depending on hardware support).
    #[must_use]
    pub fn new(spec: AcceleratorSpec) -> Self {
        PerfModel {
            spec,
            precision: None,
        }
    }

    /// Forces a specific precision.
    #[must_use]
    pub fn with_precision(mut self, dtype: DataType) -> Self {
        self.precision = Some(dtype);
        self
    }

    /// The platform being modelled.
    #[must_use]
    pub fn spec(&self) -> &AcceleratorSpec {
        &self.spec
    }

    /// Runs a workload graph (at the graph's own batch size).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::PrecisionUnsupported`] if a forced precision
    /// is not in the platform's datasheet, or [`AccelError::Graph`] if the
    /// graph fails cost analysis.
    pub fn run(&self, graph: &Graph) -> Result<RunResult, AccelError> {
        let precision = match self.precision {
            Some(d) => d,
            None => self.spec.best_precision(),
        };
        let peak_gops =
            self.spec
                .peak_gops_at(precision)
                .ok_or_else(|| AccelError::PrecisionUnsupported {
                    platform: self.spec.name.clone(),
                    dtype: precision,
                })?;
        let cost = CostReport::of(graph)?;
        let batch = cost.batch.max(1);

        let p = util_params(self.spec.class);
        let batch_util =
            p.base + (p.max - p.base) * ((batch as f64 - 1.0) / (batch as f64 - 1.0 + p.half_sat));
        let peak_ops_per_s = peak_gops * 1e9;
        let bytes_per_elem = precision.bytes() as f64;
        let bw_bytes_per_s = self.spec.mem_bw_gbps * 1e9;

        let mut per_layer = Vec::with_capacity(cost.per_node.len());
        let mut total_s = 0.0f64;
        for layer in &cost.per_node {
            let ops = 2.0 * layer.macs as f64 + layer.elementwise as f64;
            if ops == 0.0 {
                continue;
            }
            // Pipeline-fill de-rating: layers smaller than the fill window
            // cannot reach the batch utilization.
            let fill_ops = peak_ops_per_s * p.fill_s;
            let fill_factor = ops / (ops + fill_ops);
            let util = (batch_util * fill_factor).max(1e-4);
            let compute_s = ops / (peak_ops_per_s * util);

            // Memory roof: weights once + input/output activations.
            let weight_bytes = layer.params as f64 * bytes_per_elem;
            let act_bytes = (layer.input_elems + layer.output_elems) as f64 * bytes_per_elem;
            let traffic_bytes = weight_bytes + act_bytes;
            let memory_s = traffic_bytes / bw_bytes_per_s;

            let latency_s = compute_s.max(memory_s);
            total_s += latency_s;
            // Bound classification compares against the *ideal* compute
            // roof (no fill derate): a layer is memory-bound when its
            // arithmetic intensity falls below the machine balance, not
            // merely because it is too small to fill the pipeline.
            let ideal_compute_s = ops / (peak_ops_per_s * batch_util);
            per_layer.push(LayerTiming {
                name: layer.name.clone(),
                macs: layer.macs,
                compute_us: compute_s * 1e6,
                memory_us: memory_s * 1e6,
                latency_us: latency_s * 1e6,
                bytes: traffic_bytes as u64,
                bound: if ideal_compute_s >= memory_s {
                    Bound::Compute
                } else {
                    Bound::Memory
                },
            });
        }

        let total_ops = cost.total_ops() as f64;
        let achieved_ops_per_s = if total_s > 0.0 {
            total_ops / total_s
        } else {
            0.0
        };
        let utilization = (achieved_ops_per_s / peak_ops_per_s).min(1.0);

        // Power: idle + dynamic. Memory-bound phases still draw a floor of
        // dynamic power (DRAM + control), so the dynamic term is bounded
        // below by 30% whenever the device is busy.
        let dynamic_fraction = utilization.max(0.30_f64.min(batch_util));
        let avg_power_w = (self.spec.idle_w
            + (self.spec.tdp_w - self.spec.idle_w) * dynamic_fraction)
            .min(self.spec.tdp_w);

        let latency_ms = total_s * 1e3;
        let throughput_ips = if total_s > 0.0 {
            batch as f64 / total_s
        } else {
            0.0
        };
        let energy_per_inference_j = if throughput_ips > 0.0 {
            avg_power_w / throughput_ips
        } else {
            0.0
        };

        Ok(RunResult {
            platform: self.spec.name.clone(),
            model: cost.model.clone(),
            batch,
            precision,
            latency_ms,
            throughput_ips,
            achieved_gops: achieved_ops_per_s / 1e9,
            avg_power_w,
            energy_per_inference_j,
            utilization,
            per_layer,
        })
    }

    /// The *naive* performance estimate: total ops over vendor peak
    /// throughput, no utilization/roofline modelling. This is the model
    /// the ablation bench compares against — it predicts identical GOPS
    /// at every batch size and wildly optimistic latencies, i.e. it
    /// cannot reproduce Fig. 4's shape at all.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_naive(&self, graph: &Graph) -> Result<RunResult, AccelError> {
        let precision = match self.precision {
            Some(d) => d,
            None => self.spec.best_precision(),
        };
        let peak_gops =
            self.spec
                .peak_gops_at(precision)
                .ok_or_else(|| AccelError::PrecisionUnsupported {
                    platform: self.spec.name.clone(),
                    dtype: precision,
                })?;
        let cost = CostReport::of(graph)?;
        let total_ops = cost.total_ops() as f64;
        let total_s = total_ops / (peak_gops * 1e9);
        let batch = cost.batch.max(1);
        Ok(RunResult {
            platform: self.spec.name.clone(),
            model: cost.model.clone(),
            batch,
            precision,
            latency_ms: total_s * 1e3,
            throughput_ips: batch as f64 / total_s,
            achieved_gops: peak_gops,
            avg_power_w: self.spec.tdp_w,
            energy_per_inference_j: self.spec.tdp_w * total_s / batch as f64,
            utilization: 1.0,
            per_layer: Vec::new(),
        })
    }

    /// Joins a *measured* per-op profile (from
    /// `Runner::execute` with `RunOptions::profile`) against this
    /// platform's roofline prediction for the same graph — Fig. 4 as a
    /// live per-layer report instead of a purely analytical one.
    ///
    /// Layers are matched by name; predicted layers with no measured
    /// counterpart (or vice versa) are skipped, so the comparison is
    /// meaningful even when the cost model elides zero-op layers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn compare_profile(
        &self,
        graph: &Graph,
        profile: &RunProfile,
    ) -> Result<ProfileComparison, AccelError> {
        let predicted = self.run(graph)?;
        let mut per_layer = Vec::with_capacity(predicted.per_layer.len());
        for layer in &predicted.per_layer {
            let Some(node) = profile.per_node.iter().find(|n| n.name == layer.name) else {
                continue;
            };
            let measured_us = node.duration_ns as f64 / 1e3;
            let ops = node.ops() as f64;
            per_layer.push(LayerComparison {
                name: layer.name.clone(),
                measured_us,
                predicted_us: layer.latency_us,
                // ops / (µs · 1000) = ops per ns = GOPS.
                measured_gops: if measured_us > 0.0 {
                    ops / (measured_us * 1e3)
                } else {
                    0.0
                },
                predicted_gops: if layer.latency_us > 0.0 {
                    ops / (layer.latency_us * 1e3)
                } else {
                    0.0
                },
                bound: layer.bound,
            });
        }
        Ok(ProfileComparison {
            platform: predicted.platform,
            model: profile.model.clone(),
            measured_total_us: profile.wall_ns as f64 / 1e3,
            predicted_total_us: predicted.latency_ms * 1e3,
            per_layer,
        })
    }

    /// Runs a workload at each batch size (rebatching the graph), the
    /// B1/B4/B8 sweep of Fig. 4.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`run`](Self::run) or rebatching.
    pub fn batch_sweep(
        &self,
        graph: &Graph,
        batches: &[usize],
    ) -> Result<Vec<RunResult>, AccelError> {
        batches
            .iter()
            .map(|&b| {
                let g = graph.with_batch(b)?;
                self.run(&g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalog;
    use vedliot_nnir::zoo;

    fn yolo_small() -> Graph {
        // 416 is the paper's size but slow to rebuild repeatedly in tests;
        // the model is built once per test here.
        zoo::yolov4(416, 80).unwrap()
    }

    #[test]
    fn gpu_beats_cpu_on_yolov4() {
        let c = catalog();
        let yolo = yolo_small();
        let gpu = PerfModel::new(c.find("GTX 1660").unwrap().clone())
            .run(&yolo)
            .unwrap();
        let cpu = PerfModel::new(c.find("EPYC 3451").unwrap().clone())
            .run(&yolo)
            .unwrap();
        assert!(
            gpu.achieved_gops > 2.0 * cpu.achieved_gops,
            "gpu {} vs cpu {}",
            gpu.achieved_gops,
            cpu.achieved_gops
        );
    }

    #[test]
    fn batch_scaling_is_large_on_gpu_small_on_cpu() {
        let c = catalog();
        let yolo = yolo_small();
        let gpu = PerfModel::new(c.find("GTX 1660").unwrap().clone());
        let cpu = PerfModel::new(c.find("EPYC 3451").unwrap().clone());
        let g = gpu.batch_sweep(&yolo, &[1, 8]).unwrap();
        let p = cpu.batch_sweep(&yolo, &[1, 8]).unwrap();
        let gpu_gain = g[1].achieved_gops / g[0].achieved_gops;
        let cpu_gain = p[1].achieved_gops / p[0].achieved_gops;
        assert!(gpu_gain > 1.5, "gpu B8/B1 gain {gpu_gain}");
        assert!(cpu_gain < 1.3, "cpu B8/B1 gain {cpu_gain}");
        assert!(gpu_gain > cpu_gain);
    }

    #[test]
    fn power_stays_between_idle_and_tdp() {
        let c = catalog();
        let yolo = yolo_small();
        for spec in c.fig4_platforms() {
            let r = PerfModel::new((*spec).clone()).run(&yolo).unwrap();
            assert!(
                r.avg_power_w >= spec.idle_w && r.avg_power_w <= spec.tdp_w,
                "{}: {} W outside [{}, {}]",
                spec.name,
                r.avg_power_w,
                spec.idle_w,
                spec.tdp_w
            );
        }
    }

    #[test]
    fn higher_batch_draws_more_power_on_gpu() {
        let c = catalog();
        let yolo = yolo_small();
        let sweep = PerfModel::new(c.find("Xavier NX").unwrap().clone())
            .batch_sweep(&yolo, &[1, 4, 8])
            .unwrap();
        assert!(sweep[2].avg_power_w >= sweep[0].avg_power_w);
        assert!(sweep[2].achieved_gops > sweep[0].achieved_gops);
    }

    #[test]
    fn unsupported_precision_is_an_error() {
        let c = catalog();
        let yolo = zoo::tiny_cnn("t", vedliot_nnir::Shape::nchw(1, 3, 32, 32), &[8], 2).unwrap();
        let err = PerfModel::new(c.find("GTX 1660").unwrap().clone())
            .with_precision(DataType::Binary)
            .run(&yolo);
        assert!(matches!(err, Err(AccelError::PrecisionUnsupported { .. })));
    }

    #[test]
    fn agx_low_power_mode_is_slower_but_cheaper() {
        let c = catalog();
        let yolo = yolo_small();
        let hi = PerfModel::new(c.find("Xavier AGX (30W)").unwrap().clone())
            .run(&yolo)
            .unwrap();
        let lo = PerfModel::new(c.find("Xavier AGX (10W)").unwrap().clone())
            .run(&yolo)
            .unwrap();
        assert!(hi.achieved_gops > lo.achieved_gops);
        assert!(hi.avg_power_w > lo.avg_power_w);
    }

    #[test]
    fn mobilenet_is_more_memory_bound_than_resnet() {
        // The §III claim: theoretical FLOP reductions (depthwise convs)
        // do not translate proportionally, because those layers hit the
        // memory roof.
        let c = catalog();
        // ZU15: high sustained utilization, modest DRAM bandwidth — the
        // regime where depthwise layers hit the memory roof.
        let fpga = PerfModel::new(c.find("Zynq ZU15").unwrap().clone());
        let mobilenet = fpga.run(&zoo::mobilenet_v3_large(1000).unwrap()).unwrap();
        let resnet = fpga.run(&zoo::resnet50(1000).unwrap()).unwrap();
        assert!(
            mobilenet.memory_bound_fraction() > resnet.memory_bound_fraction(),
            "mobilenet {} vs resnet {}",
            mobilenet.memory_bound_fraction(),
            resnet.memory_bound_fraction()
        );
    }

    #[test]
    fn utilization_never_exceeds_one() {
        let c = catalog();
        let small = zoo::lenet5(10).unwrap();
        for spec in c.entries().iter().take(12) {
            let r = PerfModel::new(spec.clone()).run(&small).unwrap();
            assert!(r.utilization <= 1.0);
        }
    }

    #[test]
    fn naive_model_cannot_reproduce_fig4_shape() {
        // The ablation DESIGN.md calls out: the naive peak-GOPS model
        // predicts no batch effect and much lower latency than the
        // utilization model — so the Fig. 4 B1/B4/B8 spread vanishes.
        let c = catalog();
        let yolo = yolo_small();
        let pm = PerfModel::new(c.find("GTX 1660").unwrap().clone());
        let naive_b1 = pm.run_naive(&yolo).unwrap();
        let naive_b8 = pm.run_naive(&yolo.with_batch(8).unwrap()).unwrap();
        assert!((naive_b8.achieved_gops - naive_b1.achieved_gops).abs() < 1e-9);
        let real_b1 = pm.run(&yolo).unwrap();
        assert!(naive_b1.latency_ms < real_b1.latency_ms / 2.0);
        assert!(real_b1.achieved_gops < naive_b1.achieved_gops);
    }

    #[test]
    fn compare_profile_joins_measurement_to_prediction() {
        use vedliot_nnir::exec::{RunOptions, Runner};
        use vedliot_nnir::{Shape, Tensor};
        let c = catalog();
        let g = zoo::lenet5(10).unwrap();
        let input = Tensor::random(Shape::nchw(1, 1, 28, 28), 5, 1.0);
        let mut runner = Runner::builder().build(&g).unwrap();
        runner
            .execute(std::slice::from_ref(&input), RunOptions::default())
            .unwrap();
        let profile = runner
            .execute(&[input], RunOptions::new().profile(true))
            .unwrap()
            .into_profile()
            .unwrap();
        let pm = PerfModel::new(c.find("Xavier NX").unwrap().clone());
        let cmp = pm.compare_profile(&g, &profile).unwrap();
        assert_eq!(cmp.platform, "Xavier NX");
        assert_eq!(cmp.model, g.name());
        // Every predicted (non-zero-op) layer found its measurement.
        let predicted = pm.run(&g).unwrap();
        assert_eq!(cmp.per_layer.len(), predicted.per_layer.len());
        for l in &cmp.per_layer {
            assert!(l.predicted_us > 0.0, "{}", l.name);
            assert!(l.predicted_gops > 0.0, "{}", l.name);
        }
        assert!(cmp.measured_total_us > 0.0);
        assert!(cmp.to_string().contains("Xavier NX"));
    }

    #[test]
    fn int8_quadruples_arithmetic_intensity_over_fp32() {
        // Same graph, same platform: INT8 moves 4x fewer bytes per op,
        // so modelled arithmetic intensity rises exactly 4x per layer
        // and for the whole model.
        let c = catalog();
        let m = zoo::mobilenet_v3_large(1000).unwrap();
        let spec = c.find("Xavier AGX (30W)").unwrap().clone();
        let f32_run = PerfModel::new(spec.clone())
            .with_precision(DataType::F32)
            .run(&m)
            .unwrap();
        let i8_run = PerfModel::new(spec)
            .with_precision(DataType::I8)
            .run(&m)
            .unwrap();
        let ratio = i8_run.arithmetic_intensity() / f32_run.arithmetic_intensity();
        assert!((ratio - 4.0).abs() < 1e-6, "model intensity ratio {ratio}");
        for (f, i) in f32_run.per_layer.iter().zip(&i8_run.per_layer) {
            assert_eq!(f.name, i.name);
            assert_eq!(f.bytes, 4 * i.bytes, "{}", f.name);
            if i.macs > 0 {
                assert!(
                    (i.arithmetic_intensity() - 4.0 * f.arithmetic_intensity()).abs() < 1e-6,
                    "{}",
                    i.name
                );
            }
        }
    }

    #[test]
    fn energy_per_inference_is_consistent() {
        let c = catalog();
        let m = zoo::mobilenet_v3_large(1000).unwrap();
        let r = PerfModel::new(c.find("Myriad").unwrap().clone())
            .run(&m)
            .unwrap();
        let expected = r.avg_power_w * (r.latency_ms / 1e3) / r.batch as f64;
        assert!((r.energy_per_inference_j - expected).abs() / expected < 1e-6);
    }
}
