//! Memory-hierarchy study (paper §II-B).
//!
//! "An in-depth study of how the memory is utilized in current
//! accelerators and exploring new approaches for the memory hierarchy for
//! future DL accelerators is performed." This module models DRAM traffic
//! of a layer under output-stationary tiling with a given on-chip buffer,
//! and sweeps buffer sizes to expose the traffic/buffer trade-off curve.

use serde::{Deserialize, Serialize};
use vedliot_nnir::cost::CostReport;
use vedliot_nnir::{DataType, Graph, NnirError};

/// DRAM traffic estimate for one layer under a given buffer size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Layer name.
    pub name: String,
    /// Weight bytes fetched from DRAM (with re-fetch when tiled).
    pub weight_bytes: u64,
    /// Input activation bytes fetched.
    pub input_bytes: u64,
    /// Output activation bytes written.
    pub output_bytes: u64,
    /// Number of weight tiles the layer was split into.
    pub tiles: usize,
}

impl TrafficReport {
    /// Total DRAM traffic in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }
}

/// Whole-model DRAM traffic under one buffer size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTraffic {
    /// On-chip buffer size in KiB.
    pub buffer_kib: usize,
    /// Per-layer reports.
    pub layers: Vec<TrafficReport>,
}

impl ModelTraffic {
    /// Total DRAM traffic in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(TrafficReport::total_bytes).sum()
    }

    /// Arithmetic intensity in MACs per DRAM byte for the given MAC count.
    #[must_use]
    pub fn intensity(&self, total_macs: u64) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            return 0.0;
        }
        total_macs as f64 / bytes as f64
    }
}

/// Estimates DRAM traffic for every layer of a graph, given an on-chip
/// buffer of `buffer_kib` KiB and activations/weights stored at `dtype`.
///
/// The model is output-stationary: output activations are written once;
/// if a layer's weights exceed half the buffer, weights are processed in
/// tiles and the *input* activations are re-fetched once per tile —
/// the classic buffer/bandwidth trade-off future memory hierarchies
/// attack.
///
/// # Errors
///
/// Propagates cost-analysis failures.
pub fn model_traffic(
    graph: &Graph,
    buffer_kib: usize,
    dtype: DataType,
) -> Result<ModelTraffic, NnirError> {
    let cost = CostReport::of(graph)?;
    let buffer_bytes = (buffer_kib as u64) * 1024;
    let weight_budget = (buffer_bytes / 2).max(1);
    let elem = dtype.bytes() as u64;

    let mut layers = Vec::with_capacity(cost.per_node.len());
    for layer in &cost.per_node {
        if layer.macs == 0 && layer.params == 0 {
            continue;
        }
        let weight_bytes = layer.params as u64 * elem;
        let input_bytes = layer.input_elems as u64 * elem;
        let output_bytes = layer.output_elems as u64 * elem;
        let tiles = if weight_bytes == 0 {
            1
        } else {
            weight_bytes.div_ceil(weight_budget) as usize
        };
        layers.push(TrafficReport {
            name: layer.name.clone(),
            weight_bytes,
            input_bytes: input_bytes * tiles as u64,
            output_bytes,
            tiles,
        });
    }
    Ok(ModelTraffic { buffer_kib, layers })
}

/// Sweeps buffer sizes and returns `(buffer_kib, total_traffic_bytes)`
/// points — the curve the memory study plots.
///
/// # Errors
///
/// Propagates cost-analysis failures.
pub fn buffer_sweep(
    graph: &Graph,
    buffer_sizes_kib: &[usize],
    dtype: DataType,
) -> Result<Vec<(usize, u64)>, NnirError> {
    buffer_sizes_kib
        .iter()
        .map(|&kib| Ok((kib, model_traffic(graph, kib, dtype)?.total_bytes())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::zoo;

    #[test]
    fn bigger_buffers_never_increase_traffic() {
        let model = zoo::mobilenet_v3_large(1000).unwrap();
        let sweep = buffer_sweep(&model, &[64, 256, 1024, 4096, 16384], DataType::I8).unwrap();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "traffic increased from {} KiB to {} KiB",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn huge_buffer_reaches_compulsory_traffic() {
        // With an effectively unbounded buffer every byte is moved once:
        // traffic = weights + inputs + outputs.
        let model = zoo::lenet5(10).unwrap();
        let t = model_traffic(&model, 1 << 20, DataType::F32).unwrap();
        assert!(t.layers.iter().all(|l| l.tiles == 1));
        let compulsory: u64 = t
            .layers
            .iter()
            .map(|l| l.weight_bytes + l.input_bytes + l.output_bytes)
            .sum();
        assert_eq!(t.total_bytes(), compulsory);
    }

    #[test]
    fn tiny_buffer_forces_tiling_and_refetch() {
        let model = zoo::resnet50(1000).unwrap();
        let small = model_traffic(&model, 64, DataType::I8).unwrap();
        assert!(small.layers.iter().any(|l| l.tiles > 1));
        let big = model_traffic(&model, 1 << 20, DataType::I8).unwrap();
        assert!(small.total_bytes() > big.total_bytes());
    }

    #[test]
    fn quantization_cuts_traffic_proportionally() {
        let model = zoo::lenet5(10).unwrap();
        let f32t = model_traffic(&model, 1 << 20, DataType::F32).unwrap();
        let i8t = model_traffic(&model, 1 << 20, DataType::I8).unwrap();
        assert_eq!(f32t.total_bytes(), 4 * i8t.total_bytes());
    }

    #[test]
    fn intensity_increases_with_buffer() {
        let model = zoo::resnet50(1000).unwrap();
        let cost = vedliot_nnir::cost::CostReport::of(&model).unwrap();
        let small = model_traffic(&model, 64, DataType::I8).unwrap();
        let big = model_traffic(&model, 32768, DataType::I8).unwrap();
        assert!(big.intensity(cost.total_macs) > small.intensity(cost.total_macs));
    }
}
