//! Deep-learning accelerator models for the VEDLIoT reproduction.
//!
//! This crate rebuilds the hardware side of the paper's §II:
//!
//! * [`catalog`] — the accelerator survey behind **Fig. 3**: a datasheet
//!   database of DL accelerators from milliwatt microcontrollers to 400 W
//!   cloud parts, with peak performance, power and supported precisions.
//!   The paper's observation that "most architectures cluster around an
//!   energy efficiency of about 1 TOPS/W" is checked in tests.
//! * [`perf`] — the roofline + batch-dependent-utilization performance
//!   and power model behind **Fig. 4** (YoloV4 GOPS and Watt across ten
//!   platforms at batch 1/4/8). The model consumes per-layer MAC/memory
//!   footprints from [`vedliot_nnir::cost`].
//! * [`approaches`] — the four accelerator design approaches of §II-B:
//!   off-the-shelf selection, statically configured FPGA, dynamically
//!   (partially) reconfigurable FPGA, and fully simultaneous co-design.
//! * [`memory`] — the memory-hierarchy study: on-chip buffer tiling and
//!   DRAM traffic estimation for convolutional workloads.
//!
//! # Example
//!
//! ```
//! use vedliot_accel::{catalog, perf::PerfModel};
//! use vedliot_nnir::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let yolo = zoo::yolov4(416, 80)?;
//! let db = catalog::catalog();
//! let gpu = db.find("GTX 1660").expect("catalog entry");
//! let result = PerfModel::new(gpu.clone()).run(&yolo)?;
//! assert!(result.achieved_gops > 0.0);
//! assert!(result.avg_power_w <= gpu.tdp_w + 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod approaches;
pub mod catalog;
pub mod memory;
pub mod perf;

pub use catalog::{AcceleratorClass, AcceleratorSpec, Catalog};
pub use perf::{PerfModel, RunResult};
