//! Seeded fleet-level fault injection.
//!
//! A [`FleetFaultPlan`] is the rollout counterpart of the serving
//! layer's `FaultPlan` and the graph-level injectors in
//! `vedliot-safety`: one seed, a handful of rates, and every adversity
//! the rollout engine must survive — device crashes mid-download,
//! network partitions, bits flipped in transit (must be caught by chunk
//! hashes), bits flipped in installed weights (must be caught by golden
//! checks), crash-looping installs, and compromised devices presenting
//! forged attestations (must be quarantined, never installed to).
//!
//! All draws are made from salted [`DetRng`](vedliot_nnir::det::DetRng)
//! streams keyed by `(plan seed, device, tick)`, so a plan replays
//! identically and the convergence assertions in the harness are exact.

/// How a compromised device fails attestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompromiseKind {
    /// The device boots tampered firmware: its boot measurement is not
    /// the released one, so an honestly signed report is rejected.
    TamperedFirmware,
    /// An attacker without the device's fused key forges a report for a
    /// legitimate device identity: the HMAC cannot verify.
    ForgedSignature,
}

/// Seeded adversity schedule for one rollout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultPlan {
    /// Seed for every fault stream (independent of the fleet seed).
    pub seed: u64,
    /// Per-tick probability that an actively updating device crashes
    /// and reboots (downloads resume from the last verified chunk).
    pub crash_per_tick: f64,
    /// Per-chunk probability of a bit flipped in transit.
    pub transit_flip_rate: f64,
    /// Per-install probability that the written weights take bit flips
    /// (flash wear / rowhammer model) before the soak check runs.
    pub weight_flip_rate: f64,
    /// Number of bits flipped when a weight-flip strike lands.
    pub weight_flips: usize,
    /// Per-install probability of a crash-looping install.
    pub install_crash_rate: f64,
    /// Fraction of the fleet compromised at rollout start (forged or
    /// tampered attestation, split evenly by a seeded draw).
    pub compromised_rate: f64,
    /// Per-tick probability that a network partition event starts.
    pub partition_rate: f64,
    /// Devices cut off by one partition event.
    pub partition_span: usize,
    /// Duration of one partition event, in ticks.
    pub partition_ticks: u64,
}

impl FleetFaultPlan {
    /// No injected faults at all (links still follow their traces).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FleetFaultPlan {
            seed,
            crash_per_tick: 0.0,
            transit_flip_rate: 0.0,
            weight_flip_rate: 0.0,
            weight_flips: 0,
            install_crash_rate: 0.0,
            compromised_rate: 0.0,
            partition_rate: 0.0,
            partition_span: 0,
            partition_ticks: 0,
        }
    }

    /// The adversity profile E26 runs: everything at once, hard enough
    /// that ≥5% of the fleet crashes during the rollout.
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        FleetFaultPlan {
            seed,
            crash_per_tick: 0.002,
            transit_flip_rate: 0.02,
            weight_flip_rate: 0.03,
            weight_flips: 4,
            install_crash_rate: 0.01,
            compromised_rate: 0.01,
            partition_rate: 0.01,
            partition_span: 40,
            partition_ticks: 60,
        }
    }

    /// Checks every rate is a probability and spans are sane.
    ///
    /// # Errors
    ///
    /// Returns the first offending field by name.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("crash_per_tick", self.crash_per_tick),
            ("transit_flip_rate", self.transit_flip_rate),
            ("weight_flip_rate", self.weight_flip_rate),
            ("install_crash_rate", self.install_crash_rate),
            ("compromised_rate", self.compromised_rate),
            ("partition_rate", self.partition_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} = {rate} is not a probability"));
            }
        }
        if self.weight_flip_rate > 0.0 && self.weight_flips == 0 {
            return Err("weight_flip_rate > 0 but weight_flips = 0".into());
        }
        if self.partition_rate > 0.0 && (self.partition_span == 0 || self.partition_ticks == 0) {
            return Err("partition_rate > 0 but partition span/duration is zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(FleetFaultPlan::quiet(1).validate(), Ok(()));
        assert_eq!(FleetFaultPlan::hostile(1).validate(), Ok(()));
    }

    #[test]
    fn bad_rates_are_named() {
        let mut plan = FleetFaultPlan::quiet(1);
        plan.transit_flip_rate = 1.5;
        let err = plan.validate().unwrap_err();
        assert!(err.contains("transit_flip_rate"), "{err}");

        let mut plan = FleetFaultPlan::hostile(1);
        plan.weight_flips = 0;
        assert!(plan.validate().is_err());

        let mut plan = FleetFaultPlan::hostile(1);
        plan.partition_span = 0;
        assert!(plan.validate().is_err());
    }
}
