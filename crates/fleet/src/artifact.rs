//! Packed OTA model artifacts: a graph plus its explicit weights,
//! serialized into hash-chained chunks sized for lossy links.
//!
//! The textual graph format deliberately excludes explicit weights (it
//! exchanges architectures, like ONNX without initializers), so an OTA
//! image needs its own container: the architecture dump with weights
//! swapped for seeded placeholders, followed by a binary weight section
//! keyed by node index. [`unpack`](ModelArtifact::unpack) materializes
//! the placeholder weights once to recover tensor shapes, then replaces
//! their data with the stored floats — shape agreement is structural,
//! never trusted from the wire.
//!
//! Integrity is per chunk *and* end-to-end: every chunk carries a
//! SHA-256 in the [`Manifest`], and the manifest root chains those
//! hashes in order, so a device can reject a corrupted chunk the moment
//! it arrives (and re-request just that chunk) while still proving the
//! assembled payload is exactly the released image.

use vedliot_nnir::exec::Runner;
use vedliot_nnir::graph::{Graph, WeightInit};
use vedliot_nnir::tensor::Tensor;
use vedliot_nnir::textual;
use vedliot_nnir::NnirError;
use vedliot_trust::hash::sha256;

/// Container magic: VEDLIoT OTA, format 1.
const MAGIC: &[u8; 6] = b"VOTA1\n";

/// Errors from packing, unpacking, or verifying an artifact.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The graph could not be serialized or parsed in textual form.
    Text(textual::TextFormatError),
    /// Graph-level failure (weight materialization, tensor rebuild).
    Graph(NnirError),
    /// The payload violates the container format.
    Malformed(String),
    /// A chunk's hash does not match the manifest.
    ChunkHashMismatch {
        /// Index of the offending chunk.
        index: u32,
    },
    /// The chained root over all chunks does not match the manifest.
    RootMismatch,
    /// The version string contains a newline (the header is line-based).
    BadVersionName,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Text(e) => write!(f, "artifact text section: {e}"),
            ArtifactError::Graph(e) => write!(f, "artifact graph: {e}"),
            ArtifactError::Malformed(why) => write!(f, "malformed artifact: {why}"),
            ArtifactError::ChunkHashMismatch { index } => {
                write!(f, "chunk {index} failed its hash check")
            }
            ArtifactError::RootMismatch => write!(f, "assembled payload root mismatch"),
            ArtifactError::BadVersionName => write!(f, "version string must not contain newlines"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<textual::TextFormatError> for ArtifactError {
    fn from(e: textual::TextFormatError) -> Self {
        ArtifactError::Text(e)
    }
}

impl From<NnirError> for ArtifactError {
    fn from(e: NnirError) -> Self {
        ArtifactError::Graph(e)
    }
}

/// The signed-off description of a release: per-chunk hashes plus a
/// chained root. Delivered to devices over the attested control channel
/// (out of band of the bulk chunk transfer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Human-readable version label (`"v2"`, `"resnet8-int8-r3"`, ...).
    pub version: String,
    /// Total payload size in bytes.
    pub payload_bytes: usize,
    /// SHA-256 of each chunk, in order.
    pub chunk_hashes: Vec<[u8; 32]>,
    /// Hash chain over `chunk_hashes` in order — the release identity.
    pub root: [u8; 32],
}

impl Manifest {
    /// Number of chunks in the release.
    #[must_use]
    pub fn chunk_count(&self) -> u32 {
        u32::try_from(self.chunk_hashes.len()).unwrap_or(u32::MAX)
    }

    /// Folds the per-chunk hashes into the chained root:
    /// `root_i = sha256(root_{i-1} || h_i)`, seeded from the version
    /// label so two releases with identical bytes still differ.
    #[must_use]
    pub fn chain_root(version: &str, chunk_hashes: &[[u8; 32]]) -> [u8; 32] {
        let mut acc = sha256(version.as_bytes());
        for h in chunk_hashes {
            let mut buf = [0u8; 64];
            buf[..32].copy_from_slice(&acc);
            buf[32..].copy_from_slice(h);
            acc = sha256(&buf);
        }
        acc
    }
}

/// One transfer unit of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Position in the payload.
    pub index: u32,
    /// Raw bytes (last chunk may be short).
    pub payload: Vec<u8>,
}

impl Chunk {
    /// Verifies this chunk against the manifest entry for its index.
    #[must_use]
    pub fn verify(&self, manifest: &Manifest) -> bool {
        manifest
            .chunk_hashes
            .get(self.index as usize)
            .is_some_and(|expected| &sha256(&self.payload) == expected)
    }
}

/// A packed release: manifest plus chunked payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelArtifact {
    /// Release manifest.
    pub manifest: Manifest,
    /// Payload chunks, in order.
    pub chunks: Vec<Chunk>,
}

impl ModelArtifact {
    /// Packs a graph (explicit weights and all) into a chunked,
    /// hash-chained artifact.
    ///
    /// # Errors
    ///
    /// Fails if the version label is multi-line, if the architecture
    /// cannot be serialized, or `chunk_bytes` is zero.
    pub fn pack(version: &str, graph: &Graph, chunk_bytes: usize) -> Result<Self, ArtifactError> {
        if version.contains('\n') {
            return Err(ArtifactError::BadVersionName);
        }
        if chunk_bytes == 0 {
            return Err(ArtifactError::Malformed("chunk_bytes must be > 0".into()));
        }
        // Strip explicit weights for the architecture dump; record them
        // in the binary section keyed by node index.
        let mut arch = graph.clone();
        let mut weight_records: Vec<(u32, Vec<Tensor>)> = Vec::new();
        for (idx, node) in arch.nodes_mut().iter_mut().enumerate() {
            if let WeightInit::Explicit(tensors) = &node.weights {
                let idx = u32::try_from(idx)
                    .map_err(|_| ArtifactError::Malformed("node index overflow".into()))?;
                weight_records.push((idx, tensors.clone()));
                node.weights = WeightInit::Seeded(0);
            }
        }
        let text = textual::write(&arch)?;

        let mut payload = Vec::with_capacity(text.len() + 64);
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(version.as_bytes());
        payload.push(b'\n');
        payload.extend_from_slice(&(text.len() as u64).to_le_bytes());
        payload.extend_from_slice(text.as_bytes());
        payload.extend_from_slice(&(weight_records.len() as u32).to_le_bytes());
        for (idx, tensors) in &weight_records {
            payload.extend_from_slice(&idx.to_le_bytes());
            payload.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
            for t in tensors {
                payload.extend_from_slice(&(t.data().len() as u64).to_le_bytes());
                for v in t.data() {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
        }

        let chunks: Vec<Chunk> = payload
            .chunks(chunk_bytes)
            .enumerate()
            .map(|(i, c)| Chunk {
                index: i as u32,
                payload: c.to_vec(),
            })
            .collect();
        let chunk_hashes: Vec<[u8; 32]> = chunks.iter().map(|c| sha256(&c.payload)).collect();
        let root = Manifest::chain_root(version, &chunk_hashes);
        Ok(ModelArtifact {
            manifest: Manifest {
                version: version.to_string(),
                payload_bytes: payload.len(),
                chunk_hashes,
                root,
            },
            chunks,
        })
    }

    /// Reassembles the payload bytes (no verification).
    #[must_use]
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.manifest.payload_bytes);
        for c in &self.chunks {
            out.extend_from_slice(&c.payload);
        }
        out
    }

    /// Total payload size in bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.manifest.payload_bytes
    }

    /// Verifies every chunk hash and the chained root.
    ///
    /// # Errors
    ///
    /// Returns the first failing chunk, or [`ArtifactError::RootMismatch`]
    /// if the per-chunk hashes pass but the chained root differs (a
    /// manifest/payload mix-up).
    pub fn verify(&self) -> Result<(), ArtifactError> {
        if self.chunks.len() != self.manifest.chunk_hashes.len() {
            return Err(ArtifactError::Malformed(format!(
                "{} chunks but {} manifest hashes",
                self.chunks.len(),
                self.manifest.chunk_hashes.len()
            )));
        }
        for c in &self.chunks {
            if !c.verify(&self.manifest) {
                return Err(ArtifactError::ChunkHashMismatch { index: c.index });
            }
        }
        let root = Manifest::chain_root(&self.manifest.version, &self.manifest.chunk_hashes);
        if root != self.manifest.root {
            return Err(ArtifactError::RootMismatch);
        }
        Ok(())
    }

    /// Verifies integrity, parses the payload, and reattaches explicit
    /// weights — the full install path a device runs before activation.
    ///
    /// # Errors
    ///
    /// Any integrity or format violation; nothing partial is returned.
    pub fn unpack(&self) -> Result<Graph, ArtifactError> {
        self.verify()?;
        let payload = self.payload();
        let mut r = Reader::new(&payload);
        if r.take(MAGIC.len())? != MAGIC.as_slice() {
            return Err(ArtifactError::Malformed("bad magic".into()));
        }
        let version = r.line()?;
        if version != self.manifest.version {
            return Err(ArtifactError::Malformed(format!(
                "payload labeled {version:?} but manifest says {:?}",
                self.manifest.version
            )));
        }
        let text_len = usize::try_from(r.u64()?)
            .map_err(|_| ArtifactError::Malformed("text length overflow".into()))?;
        let text = std::str::from_utf8(r.take(text_len)?)
            .map_err(|_| ArtifactError::Malformed("graph text is not UTF-8".into()))?;
        let mut graph = textual::read(text)?;

        // Materialize the placeholder weights once to learn shapes,
        // then substitute the stored floats.
        let shapes: Vec<Option<Vec<Tensor>>> = {
            let exec = Runner::builder().build(&graph)?;
            graph
                .nodes()
                .iter()
                .map(|n| {
                    if matches!(n.weights, WeightInit::None) {
                        Ok(None)
                    } else {
                        exec.node_weights(n).map(Some)
                    }
                })
                .collect::<Result<_, NnirError>>()?
        };

        let record_count = r.u32()? as usize;
        for _ in 0..record_count {
            let node_idx = r.u32()? as usize;
            let tensor_count = r.u32()? as usize;
            let template = shapes
                .get(node_idx)
                .and_then(Option::as_ref)
                .ok_or_else(|| {
                    ArtifactError::Malformed(format!(
                        "weight record for weightless node {node_idx}"
                    ))
                })?;
            if template.len() != tensor_count {
                return Err(ArtifactError::Malformed(format!(
                    "node {node_idx}: {tensor_count} stored tensors, structure wants {}",
                    template.len()
                )));
            }
            let mut tensors = Vec::with_capacity(tensor_count);
            for t in template {
                let n = usize::try_from(r.u64()?)
                    .map_err(|_| ArtifactError::Malformed("tensor length overflow".into()))?;
                if n != t.data().len() {
                    return Err(ArtifactError::Malformed(format!(
                        "node {node_idx}: stored tensor has {n} floats, shape wants {}",
                        t.data().len()
                    )));
                }
                let mut data = Vec::with_capacity(n);
                for _ in 0..n {
                    let b = r.take(4)?;
                    data.push(f32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                }
                tensors.push(Tensor::from_vec(t.shape().clone(), data)?);
            }
            graph.nodes_mut()[node_idx].weights = WeightInit::Explicit(tensors);
        }
        if !r.at_end() {
            return Err(ArtifactError::Malformed(
                "trailing bytes after records".into(),
            ));
        }
        Ok(graph)
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ArtifactError::Malformed("truncated payload".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn line(&mut self) -> Result<String, ArtifactError> {
        let rest = &self.buf[self.pos..];
        let nl = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ArtifactError::Malformed("unterminated header line".into()))?;
        let s = std::str::from_utf8(&rest[..nl])
            .map_err(|_| ArtifactError::Malformed("header line is not UTF-8".into()))?
            .to_string();
        self.pos += nl + 1;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::exec::{RunOptions, Runner};
    use vedliot_nnir::shape::Shape;
    use vedliot_nnir::train::mlp;

    fn explicit_model() -> Graph {
        // Materialize the seeded weights so the graph carries Explicit
        // tensors, like a trained model about to ship.
        let mut g = mlp("ota-test", 6, &[5], 3).expect("mlp builds");
        let materialized: Vec<Option<Vec<Tensor>>> = {
            let exec = Runner::builder().build(&g).expect("valid graph");
            g.nodes()
                .iter()
                .map(|n| {
                    if matches!(n.weights, WeightInit::None) {
                        None
                    } else {
                        Some(exec.node_weights(n).expect("materializes"))
                    }
                })
                .collect()
        };
        for (node, w) in g.nodes_mut().iter_mut().zip(materialized) {
            if let Some(tensors) = w {
                node.weights = WeightInit::Explicit(tensors);
            }
        }
        g
    }

    fn probe_output(g: &Graph) -> Tensor {
        let input = Tensor::random(Shape::nf(1, 6), 11, 1.0);
        let mut runner = Runner::builder().build(g).expect("valid graph");
        runner
            .execute(std::slice::from_ref(&input), RunOptions::default())
            .expect("runs")
            .outputs()[0]
            .clone()
    }

    #[test]
    fn pack_unpack_round_trips_weights_exactly() {
        let g = explicit_model();
        let artifact = ModelArtifact::pack("v1", &g, 96).expect("packs");
        assert!(
            artifact.chunks.len() > 3,
            "model should span several chunks"
        );
        let back = artifact.unpack().expect("unpacks");
        // Same architecture, same explicit weights, same outputs.
        assert_eq!(g, back);
        let a = probe_output(&g);
        let b = probe_output(&back);
        assert_eq!(a.max_abs_diff(&b).expect("same shape"), 0.0);
    }

    #[test]
    fn every_flipped_bit_in_any_chunk_is_caught() {
        let g = explicit_model();
        let artifact = ModelArtifact::pack("v1", &g, 128).expect("packs");
        for (i, chunk) in artifact.chunks.iter().enumerate() {
            let mut evil = chunk.clone();
            let byte = (i * 7) % evil.payload.len();
            evil.payload[byte] ^= 1 << (i % 8);
            assert!(
                !evil.verify(&artifact.manifest),
                "flipped bit in chunk {i} slipped past the hash check"
            );
        }
        // And through the end-to-end path: a corrupted chunk fails unpack.
        let mut tampered = artifact.clone();
        tampered.chunks[1].payload[0] ^= 0x80;
        match tampered.unpack() {
            Err(ArtifactError::ChunkHashMismatch { index: 1 }) => {}
            other => panic!("expected chunk-1 hash mismatch, got {other:?}"),
        }
    }

    #[test]
    fn root_binds_chunk_order() {
        let g = explicit_model();
        let mut artifact = ModelArtifact::pack("v1", &g, 64).expect("packs");
        // Swap two chunks *and* their manifest hashes: per-chunk checks
        // pass, but the chained root no longer matches.
        artifact.chunks.swap(0, 1);
        artifact.manifest.chunk_hashes.swap(0, 1);
        let a = artifact.chunks[0].index;
        artifact.chunks[0].index = artifact.chunks[1].index;
        artifact.chunks[1].index = a;
        match artifact.verify() {
            Err(ArtifactError::RootMismatch) => {}
            other => panic!("expected root mismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_label_is_part_of_identity() {
        let g = explicit_model();
        let a = ModelArtifact::pack("v1", &g, 128).expect("packs");
        let b = ModelArtifact::pack("v2", &g, 128).expect("packs");
        assert_ne!(a.manifest.root, b.manifest.root);
        assert!(ModelArtifact::pack("v\n1", &g, 128).is_err());
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let g = explicit_model();
        let mut artifact = ModelArtifact::pack("v1", &g, 128).expect("packs");
        // Drop the last chunk and its hash, re-root so integrity passes,
        // leaving only the format check to catch the truncation.
        artifact.chunks.pop();
        artifact.manifest.chunk_hashes.pop();
        artifact.manifest.payload_bytes = artifact.payload().len();
        artifact.manifest.root =
            Manifest::chain_root(&artifact.manifest.version, &artifact.manifest.chunk_hashes);
        match artifact.unpack() {
            Err(ArtifactError::Malformed(_)) => {}
            other => panic!("expected malformed, got {other:?}"),
        }
    }
}
