//! Per-device OTA state machine.
//!
//! Each simulated device owns a root of trust, an A/B slot pair
//! (modelled as the active version index plus the previous one to fall
//! back to), a deterministic link trace from `recs::net`, and its own
//! salted RNG stream. The update lifecycle is:
//!
//! ```text
//! Running ──wave──▶ Downloading ──all chunks──▶ Verifying ──▶ Attesting
//!    ▲    assigned      │ ▲                                      │
//!    │                  ▼ │ resume                     pass      │ fail
//!    │              Rebooting                            ▼       ▼
//!    ├◀─────────── RolledBack ◀──soak fails── Soaking ◀── Installing
//!    │                                           │
//!    └◀──────────────── soak passes ─────────────┘        Quarantined
//! ```
//!
//! Downloads go to the inactive slot, so a device keeps serving its
//! current model while updating (the availability metric counts on
//! this); `Rebooting` and `Installing` are the only planned outage
//! phases. A failed soak (crash loop or golden-output divergence) flips
//! back to the previous slot — the rollback is local and immediate,
//! while *wave*-level rollback is the engine's call.

use vedliot_nnir::det::DetRng;
use vedliot_nnir::graph::Graph;
use vedliot_recs::net::{NetworkCondition, NetworkTrace};
use vedliot_trust::attestation::RootOfTrust;

use crate::fault::CompromiseKind;

/// Where a device is in the update lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Steady state: serving the active slot.
    Running,
    /// Fetching chunks into the inactive slot (still serving).
    Downloading {
        /// Next chunk index to fetch.
        next_chunk: u32,
        /// Failed attempts on that chunk (bounded by the retry policy).
        attempt: u32,
        /// No transfer before this tick (backoff / retry cool-down).
        backoff_until: u64,
    },
    /// Crashed; back at `until`. `resume` carries the download position
    /// (chunked resume — verified chunks are not re-fetched).
    Rebooting {
        /// Tick at which the device is back.
        until: u64,
        /// Download position to resume at, if it was mid-download.
        resume: Option<u32>,
    },
    /// Whole-image root verification of the downloaded slot.
    Verifying,
    /// Challenge/response attestation before install is authorized.
    Attesting,
    /// Writing the new image and rebooting into it (outage).
    Installing {
        /// Tick at which activation completes.
        until: u64,
    },
    /// Serving the new version under observation.
    Soaking {
        /// Tick at which the soak verdict is due.
        until: u64,
        /// Crashes observed so far this soak.
        crashes: u32,
        /// Fault injection: this install crash-loops.
        crash_loop: bool,
    },
    /// Soak failed; flipped back to the previous slot (terminal for
    /// this rollout, still serving).
    RolledBack,
    /// Attestation failed; cordoned off (terminal, not serving).
    Quarantined,
    /// Hit the wave deadline before finishing (terminal, still serving
    /// the old version; the partial download is abandoned).
    Abandoned,
}

impl Phase {
    /// Whether the device has reached a rollout-terminal state for the
    /// current wave (given the version it set out to install).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Phase::Running | Phase::RolledBack | Phase::Quarantined | Phase::Abandoned
        )
    }

    /// Stable numeric code for journal `DevicePhase` events (the
    /// `detail` field). Codes are part of the flight-recorder wire
    /// vocabulary — append-only, never renumber.
    #[must_use]
    pub fn code(&self) -> u64 {
        match self {
            Phase::Running => 0,
            Phase::Downloading { .. } => 1,
            Phase::Rebooting { .. } => 2,
            Phase::Verifying => 3,
            Phase::Attesting => 4,
            Phase::Installing { .. } => 5,
            Phase::Soaking { .. } => 6,
            Phase::RolledBack => 7,
            Phase::Quarantined => 8,
            Phase::Abandoned => 9,
        }
    }
}

/// One simulated edge device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Fleet-unique index.
    pub id: u32,
    /// Fused root of trust (enrolled with the fleet verifier).
    pub rot: RootOfTrust,
    /// `Some` if the fault plan compromised this device for the current
    /// rollout.
    pub compromise: Option<CompromiseKind>,
    /// Active slot: index into the fleet's version registry.
    pub active: usize,
    /// Previous slot (rollback target), if any.
    pub previous: Option<usize>,
    /// Copy-on-corrupt shadow of the active model: `Some` only when the
    /// installed weights took bit flips, so clean devices share the one
    /// verified image and golden checks on them are content-equality.
    pub corrupted: Option<Graph>,
    /// Every version index ever installed (activation history — the
    /// quarantine invariant is asserted against this).
    pub installed: Vec<usize>,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Link condition trace (indexed by tick, wrapping).
    pub trace: NetworkTrace,
    /// Device-local fault/jitter stream, re-salted per rollout.
    pub rng: DetRng,
    /// Set by the engine when the device crashed this tick (an outage
    /// tick even in otherwise-serving phases).
    pub crashed_this_tick: bool,
}

impl Device {
    /// Provisions a device: fused secrets and a link personality, both
    /// derived deterministically from the fleet seed.
    #[must_use]
    pub fn provision(id: u32, fleet_seed: u64, trace_len: usize) -> Self {
        let mut fuse = [0u8; 12];
        fuse[..8].copy_from_slice(&fleet_seed.to_le_bytes());
        fuse[8..].copy_from_slice(&id.to_le_bytes());
        let rot = RootOfTrust::provision(&fuse);
        let trace_seed = fleet_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(id));
        Device {
            id,
            rot,
            compromise: None,
            active: 0,
            previous: None,
            corrupted: None,
            installed: vec![0],
            phase: Phase::Running,
            trace: NetworkTrace::generate(trace_len, trace_seed),
            rng: DetRng::new(trace_seed),
            crashed_this_tick: false,
        }
    }

    /// Link condition at `tick`: the trace sample, unless the engine
    /// says this device is inside a partition.
    #[must_use]
    pub fn link_at(&self, tick: u64, partitioned: bool) -> NetworkCondition {
        if partitioned {
            return NetworkCondition::down();
        }
        let len = self.trace.len().max(1);
        self.trace.samples[(tick as usize) % len]
    }

    /// Whether the device serves inference traffic this tick.
    /// Downloads ride the inactive slot, so `Downloading`, `Verifying`
    /// and `Attesting` all still serve; planned outages (`Rebooting`,
    /// `Installing`), quarantine and crash ticks do not.
    #[must_use]
    pub fn is_serving(&self) -> bool {
        if self.crashed_this_tick {
            return false;
        }
        match self.phase {
            Phase::Running
            | Phase::Downloading { .. }
            | Phase::Verifying
            | Phase::Attesting
            | Phase::Soaking { .. }
            | Phase::RolledBack
            | Phase::Abandoned => true,
            Phase::Rebooting { .. } | Phase::Installing { .. } | Phase::Quarantined => false,
        }
    }

    /// Activates `version`: the old active slot becomes the rollback
    /// target and the activation is recorded in the install history.
    pub fn activate(&mut self, version: usize) {
        self.previous = Some(self.active);
        self.active = version;
        self.corrupted = None;
        self.installed.push(version);
    }

    /// Flips back to the previous slot (device-level rollback). The
    /// corrupted shadow, if any, is discarded with the bad slot.
    ///
    /// # Panics
    ///
    /// Panics if there is no previous slot — the engine only calls this
    /// after an activation.
    pub fn roll_back(&mut self) {
        let Some(previous) = self.previous.take() else {
            panic!("rollback without a previous slot")
        };
        self.active = previous;
        self.corrupted = None;
        self.phase = Phase::RolledBack;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioning_is_deterministic_and_unique() {
        let a = Device::provision(7, 42, 64);
        let b = Device::provision(7, 42, 64);
        assert_eq!(a.rot.device_id, b.rot.device_id);
        assert_eq!(a.trace, b.trace);
        let c = Device::provision(8, 42, 64);
        assert_ne!(a.rot.device_id, c.rot.device_id);
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn activation_and_rollback_manage_slots() {
        let mut d = Device::provision(0, 1, 8);
        d.activate(3);
        assert_eq!((d.active, d.previous), (3, Some(0)));
        assert_eq!(d.installed, vec![0, 3]);
        d.roll_back();
        assert_eq!((d.active, d.previous), (0, None));
        assert_eq!(d.phase, Phase::RolledBack);
        // History still records that 3 was installed once.
        assert_eq!(d.installed, vec![0, 3]);
    }

    #[test]
    fn serving_tracks_phase_and_crash_ticks() {
        let mut d = Device::provision(0, 1, 8);
        assert!(d.is_serving());
        d.phase = Phase::Downloading {
            next_chunk: 0,
            attempt: 0,
            backoff_until: 0,
        };
        assert!(d.is_serving(), "A/B download must not interrupt serving");
        d.phase = Phase::Installing { until: 5 };
        assert!(!d.is_serving());
        d.phase = Phase::Soaking {
            until: 5,
            crashes: 0,
            crash_loop: true,
        };
        assert!(d.is_serving());
        d.crashed_this_tick = true;
        assert!(!d.is_serving());
        d.crashed_this_tick = false;
        d.phase = Phase::Quarantined;
        assert!(!d.is_serving());
    }

    #[test]
    fn partition_overrides_the_trace() {
        let d = Device::provision(0, 1, 8);
        assert!(d.link_at(3, true).is_down());
        // The trace itself is mostly usable.
        let up = (0..8).filter(|&t| !d.link_at(t, false).is_down()).count();
        assert!(up > 0);
    }
}
