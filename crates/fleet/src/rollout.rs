//! The fleet and its health-gated wave rollout engine.
//!
//! A [`Fleet`] holds the device population, the version registry (each
//! entry a packed [`ModelArtifact`] plus a golden probe output and an
//! optional held-out accuracy), and the attestation [`Verifier`]. A
//! [`Rollout`] pushes one registered version to the whole fleet in
//! exponentially growing waves — canary cohort first — advancing only
//! while the per-wave [`FleetHealth`] gate holds, and rolling every
//! updated device back the moment a wave regresses.
//!
//! The simulation is tick-based and fully deterministic: device order
//! is fixed, every stochastic draw comes from a salted
//! [`DetRng`](vedliot_nnir::det::DetRng) stream, and durations from the
//! shared [`RetryPolicy`] are quantized to ticks. Two runs with the
//! same seeds produce byte-identical [`RolloutReport`]s — the property
//! the convergence harness (E26) asserts against.

use std::sync::Arc;
use std::time::Duration;

use vedliot_nnir::det::{splitmix64, DetRng};
use vedliot_nnir::exec::{RunOptions, Runner};
use vedliot_nnir::graph::Graph;
use vedliot_nnir::tensor::Tensor;
use vedliot_nnir::NnirError;
use vedliot_obs::export::{Export, Exportable, Metric};
use vedliot_obs::{CauseId, EventJournal, EventKind};
use vedliot_safety::inject::flip_weight_bits;
use vedliot_serve::resilience::RetryPolicy;
use vedliot_trust::attestation::{attest, RootOfTrust, SecureBootChain, Verifier};
use vedliot_trust::hash::sha256;

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::device::{Device, Phase};
use crate::fault::{CompromiseKind, FleetFaultPlan};

/// Salt for per-rollout device streams.
const DEVICE_SALT: u64 = 0x5EED_DE71_CE00_0001;
/// Salt for the partition event stream.
const PARTITION_SALT: u64 = 0x5EED_9A47_1710_0002;
/// Salt for retry-backoff jitter.
const BACKOFF_SALT: u64 = 0x5EED_BAC0_FF00_0003;
/// Salt for installed-weight bit-flip placement.
const FLIP_SALT: u64 = 0x5EED_F11B_B175_0004;

/// Fleet-level errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// Artifact packing/unpacking failed.
    Artifact(ArtifactError),
    /// Graph execution failed (golden probe, accuracy eval).
    Graph(NnirError),
    /// Configuration rejected, with the reason.
    Config(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Artifact(e) => write!(f, "artifact: {e}"),
            FleetError::Graph(e) => write!(f, "graph: {e}"),
            FleetError::Config(why) => write!(f, "fleet config: {why}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ArtifactError> for FleetError {
    fn from(e: ArtifactError) -> Self {
        FleetError::Artifact(e)
    }
}

impl From<NnirError> for FleetError {
    fn from(e: NnirError) -> Self {
        FleetError::Graph(e)
    }
}

/// Fleet construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of devices to provision.
    pub devices: usize,
    /// Seed for provisioning and every per-device stream.
    pub seed: u64,
    /// Length of each device's link trace (samples, wraps by tick).
    pub trace_len: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 256,
            seed: 0xF1EE7,
            trace_len: 512,
        }
    }
}

/// One entry in the fleet's version registry.
#[derive(Debug, Clone)]
pub struct VersionEntry {
    /// Human-readable label.
    pub name: String,
    /// The model as shipped (explicit weights).
    pub graph: Graph,
    /// Packed OTA artifact.
    pub artifact: ModelArtifact,
    /// Output of the released model on the fleet probe input — the
    /// reference for post-install golden checks.
    pub golden: Tensor,
    /// Held-out accuracy, if the fleet was given an eval set (feeds the
    /// canary accuracy gate).
    pub accuracy: Option<f64>,
}

/// Wave pacing, health gating and timing knobs for one rollout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutPolicy {
    /// Devices in wave 0 (the canary cohort).
    pub canary: usize,
    /// Wave size multiplier after each gated wave.
    pub wave_growth: usize,
    /// Minimum fraction of a wave's non-quarantined devices that must
    /// land healthy on the target for the rollout to continue.
    pub health_threshold: f64,
    /// Maximum tolerated drop in held-out accuracy vs the baseline
    /// version (canary accuracy gate; ignored without an eval set).
    pub max_accuracy_drop: f64,
    /// Chunk size artifacts are packed with, bytes.
    pub chunk_bytes: usize,
    /// Wall-clock milliseconds one tick represents (scales chunk
    /// throughput and retry backoff quantization).
    pub tick_ms: f64,
    /// Upper bound on chunks one device transfers per tick.
    pub max_chunks_per_tick: u32,
    /// Per-chunk retry budget and backoff (shared with the serving
    /// layer's resilience machinery).
    pub retry: RetryPolicy,
    /// Ticks a device cools down after exhausting the retry budget on
    /// one chunk, before starting a fresh attempt cycle.
    pub retry_cooldown_ticks: u64,
    /// Ticks a crash reboot takes.
    pub reboot_ticks: u64,
    /// Ticks an install (write + activate reboot) takes.
    pub install_ticks: u64,
    /// Ticks a device soaks on the new version before its verdict.
    pub soak_ticks: u64,
    /// Ticks after which a wave's stragglers are abandoned.
    pub wave_deadline_ticks: u64,
}

impl Default for RolloutPolicy {
    fn default() -> Self {
        RolloutPolicy {
            canary: 8,
            wave_growth: 4,
            health_threshold: 0.9,
            max_accuracy_drop: 0.05,
            chunk_bytes: 256,
            tick_ms: 100.0,
            max_chunks_per_tick: 4,
            retry: RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_millis(200),
                max_delay: Duration::from_secs(5),
                jitter: true,
            },
            retry_cooldown_ticks: 50,
            reboot_ticks: 8,
            install_ticks: 5,
            soak_ticks: 30,
            wave_deadline_ticks: 900,
        }
    }
}

impl RolloutPolicy {
    fn validate(&self) -> Result<(), FleetError> {
        if self.canary == 0 {
            return Err(FleetError::Config("canary wave must be non-empty".into()));
        }
        if self.wave_growth < 2 {
            return Err(FleetError::Config("wave_growth must be ≥ 2".into()));
        }
        if !(0.0..=1.0).contains(&self.health_threshold) {
            return Err(FleetError::Config("health_threshold not a fraction".into()));
        }
        if self.tick_ms <= 0.0 || self.chunk_bytes == 0 {
            return Err(FleetError::Config(
                "tick_ms and chunk_bytes must be positive".into(),
            ));
        }
        if self.wave_deadline_ticks <= self.install_ticks + self.soak_ticks {
            return Err(FleetError::Config(
                "wave deadline must exceed install + soak time".into(),
            ));
        }
        Ok(())
    }

    /// Quantizes a backoff duration to ticks (at least one).
    fn ticks(&self, d: Duration) -> u64 {
        ((d.as_secs_f64() * 1e3 / self.tick_ms).ceil() as u64).max(1)
    }
}

/// Monotone event counters for one rollout, exported through obs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Chunks delivered and hash-verified.
    pub chunks_delivered: u64,
    /// Chunk transfer attempts that failed and were retried.
    pub chunk_retries: u64,
    /// In-transit bit flips rejected by per-chunk hashes.
    pub artifact_flips_caught: u64,
    /// Downloads resumed from a checkpoint after a crash.
    pub resumed_downloads: u64,
    /// Downloads abandoned at the wave deadline.
    pub downloads_abandoned: u64,
    /// Device crashes (mid-download and crash-loop soak crashes).
    pub crashes: u64,
    /// Devices that passed attestation this rollout.
    pub attest_ok: u64,
    /// Devices quarantined on failed attestation.
    pub quarantined: u64,
    /// Successful installs (activations).
    pub installs: u64,
    /// Installs whose written weights took injected bit flips.
    pub weight_flips_injected: u64,
    /// Flipped installs caught by the golden soak check.
    pub weight_flips_caught: u64,
    /// Crash-looping installs detected during soak.
    pub crash_loops_detected: u64,
    /// Device-level rollbacks (failed soak → previous slot).
    pub device_rollbacks: u64,
    /// Wave-level rollbacks (gate failed → whole wave reverted).
    pub wave_rollbacks: u64,
    /// Device-ticks spent serving inference traffic.
    pub served_device_ticks: u64,
    /// Total device-ticks simulated.
    pub total_device_ticks: u64,
}

/// Aggregate fleet state, used both as the per-wave gate input and as
/// the whole-fleet summary in the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetHealth {
    /// Devices healthy on the target version.
    pub on_target: usize,
    /// Devices still on an older version (not attempted, abandoned, or
    /// rolled back).
    pub on_previous: usize,
    /// Devices that rolled back after a failed soak.
    pub rolled_back: usize,
    /// Devices abandoned at a wave deadline.
    pub abandoned: usize,
    /// Devices quarantined by attestation.
    pub quarantined: usize,
    /// Devices still mid-update (zero at rollout end).
    pub in_flight: usize,
}

impl FleetHealth {
    /// Fraction of attempted, non-quarantined devices that landed
    /// healthy on the target. Quarantine is a security outcome, not a
    /// health regression — a wave of mostly compromised devices should
    /// not look "unhealthy", it should look *contained*.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        let attempted = self.on_target + self.rolled_back + self.abandoned;
        if attempted == 0 {
            return 0.0;
        }
        self.on_target as f64 / attempted as f64
    }
}

/// Why a rollout ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// Every reachable, honest device converged on the target.
    Completed,
    /// A wave gate failed; every updated device was reverted.
    RolledBack {
        /// Index of the wave that tripped the gate.
        wave: usize,
    },
}

/// Per-wave record in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveReport {
    /// Wave index (0 = canary).
    pub index: usize,
    /// Devices assigned to the wave.
    pub size: usize,
    /// Wave-local health at gate time.
    pub health: FleetHealth,
    /// Gate verdict (health threshold and, on the canary, accuracy).
    pub gate_passed: bool,
    /// Tick the wave started at.
    pub started_tick: u64,
    /// Tick the wave's gate was decided at.
    pub ended_tick: u64,
}

/// The full, deterministic record of one rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutReport {
    /// Version label the rollout targeted.
    pub target: String,
    /// Registry index of the target.
    pub target_index: usize,
    /// How it ended.
    pub outcome: RolloutOutcome,
    /// Ticks from first chunk to convergence (or rollback).
    pub ticks: u64,
    /// Per-wave records.
    pub waves: Vec<WaveReport>,
    /// Event counters.
    pub counters: FleetCounters,
    /// Fleet-wide health at the end.
    pub health: FleetHealth,
    /// Fraction of device-ticks spent serving during the rollout.
    pub availability: f64,
}

impl Exportable for RolloutReport {
    fn export(&self) -> Export {
        let c = &self.counters;
        Export {
            subsystem: "fleet".into(),
            metrics: vec![
                Metric::gauge(
                    "convergence_ticks",
                    "Ticks from rollout start to convergence or rollback",
                    self.ticks as f64,
                )
                .with_label("target", self.target.clone()),
                Metric::gauge(
                    "availability",
                    "Fraction of device-ticks serving during the rollout",
                    self.availability,
                ),
                Metric::gauge(
                    "waves",
                    "Waves executed before the rollout ended",
                    self.waves.len() as f64,
                ),
                Metric::gauge(
                    "on_target",
                    "Devices healthy on the target version at the end",
                    self.health.on_target as f64,
                ),
                Metric::counter(
                    "chunks_delivered",
                    "Hash-verified chunks delivered",
                    c.chunks_delivered,
                ),
                Metric::counter("chunk_retries", "Chunk transfer retries", c.chunk_retries),
                Metric::counter(
                    "artifact_flips_caught",
                    "In-transit bit flips rejected by chunk hashes",
                    c.artifact_flips_caught,
                ),
                Metric::counter(
                    "resumed_downloads",
                    "Downloads resumed from a checkpoint after a crash",
                    c.resumed_downloads,
                ),
                Metric::counter("crashes", "Device crashes during the rollout", c.crashes),
                Metric::counter("installs", "Successful activations", c.installs),
                Metric::counter(
                    "weight_flips_caught",
                    "Corrupted installs caught by golden soak checks",
                    c.weight_flips_caught,
                ),
                Metric::counter(
                    "crash_loops_detected",
                    "Crash-looping installs detected during soak",
                    c.crash_loops_detected,
                ),
                Metric::counter(
                    "device_rollbacks",
                    "Device-level rollbacks",
                    c.device_rollbacks,
                ),
                Metric::counter("wave_rollbacks", "Wave-level rollbacks", c.wave_rollbacks),
                Metric::counter(
                    "quarantined",
                    "Devices quarantined by attestation",
                    c.quarantined,
                ),
            ],
        }
    }
}

/// The device population plus everything a rollout needs: version
/// registry, probe input, attestation verifier, released measurement.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    devices: Vec<Device>,
    versions: Vec<VersionEntry>,
    verifier: Verifier,
    released_measurement: [u8; 32],
    probe: Tensor,
    chunk_bytes: usize,
    /// Flight recorder, if attached — rollout/wave/device transitions
    /// journal into it with simulation ticks as timestamps, so "why did
    /// device 117 roll back" is one causal-chain query.
    journal: Option<Arc<EventJournal>>,
}

impl Fleet {
    /// Provisions `config.devices` devices, enrolls them with the
    /// verifier, boots the released firmware chain to pin the expected
    /// measurement, and registers `baseline` as version 0 (pre-loaded
    /// on every device).
    ///
    /// # Errors
    ///
    /// Propagates artifact packing or probe execution failures; rejects
    /// an empty fleet.
    pub fn new(
        config: FleetConfig,
        baseline: (&str, Graph),
        probe: Tensor,
        eval: Option<&vedliot_nnir::dataset::ClassificationSet>,
    ) -> Result<Self, FleetError> {
        Self::with_chunk_bytes(
            config,
            baseline,
            probe,
            eval,
            RolloutPolicy::default().chunk_bytes,
        )
    }

    /// [`Fleet::new`] with an explicit artifact chunk size.
    ///
    /// # Errors
    ///
    /// Same as [`Fleet::new`].
    pub fn with_chunk_bytes(
        config: FleetConfig,
        baseline: (&str, Graph),
        probe: Tensor,
        eval: Option<&vedliot_nnir::dataset::ClassificationSet>,
        chunk_bytes: usize,
    ) -> Result<Self, FleetError> {
        if config.devices == 0 {
            return Err(FleetError::Config("fleet must have devices".into()));
        }
        // Pin the released firmware measurement by actually booting the
        // release chain once (the same measurement honest devices report).
        let images: Vec<Vec<u8>> = ["bl2-r4", "trusted-os-r9", "model-runtime-r2"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let mut chain = SecureBootChain::new();
        for (name, image) in ["bl2", "trusted-os", "runtime"].iter().zip(&images) {
            chain.add_stage(*name, image);
        }
        let flash: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
        let released_measurement = match chain.boot(&flash) {
            vedliot_trust::attestation::BootOutcome::Trusted { boot_measurement } => {
                boot_measurement
            }
            other => {
                return Err(FleetError::Config(format!(
                    "release chain failed its own boot: {other:?}"
                )))
            }
        };

        let mut verifier = Verifier::new();
        verifier.expect_measurement(released_measurement);
        let devices: Vec<Device> = (0..config.devices)
            .map(|i| Device::provision(i as u32, config.seed, config.trace_len))
            .collect();
        for d in &devices {
            verifier.enroll(&d.rot);
        }

        let mut fleet = Fleet {
            config,
            devices,
            versions: Vec::new(),
            verifier,
            released_measurement,
            probe,
            chunk_bytes,
            journal: None,
        };
        fleet.register_version(baseline.0, baseline.1, eval)?;
        Ok(fleet)
    }

    /// Packs and registers a new model version; returns its registry
    /// index (the handle [`Rollout`] targets).
    ///
    /// # Errors
    ///
    /// Packing, pack/unpack self-check, golden probe, or accuracy
    /// evaluation failures.
    pub fn register_version(
        &mut self,
        name: &str,
        graph: Graph,
        eval: Option<&vedliot_nnir::dataset::ClassificationSet>,
    ) -> Result<usize, FleetError> {
        let artifact = ModelArtifact::pack(name, &graph, self.chunk_bytes)?;
        // Release-time self-check: the packed image must reproduce the
        // model exactly (devices then share this verified image,
        // content-addressed by the manifest root).
        let unpacked = artifact.unpack()?;
        let golden = run_probe(&unpacked, &self.probe)?;
        let reference = run_probe(&graph, &self.probe)?;
        if golden.max_abs_diff(&reference)? != 0.0 {
            return Err(FleetError::Config(format!(
                "packed artifact for {name} does not reproduce the model"
            )));
        }
        let accuracy = match eval {
            Some(set) => Some(vedliot_nnir::train::evaluate(&graph, set)?.accuracy()),
            None => None,
        };
        self.versions.push(VersionEntry {
            name: name.to_string(),
            graph,
            artifact,
            golden,
            accuracy,
        });
        Ok(self.versions.len() - 1)
    }

    /// Attaches a flight recorder: subsequent rollouts journal their
    /// wave and device transitions into it (timestamps are simulation
    /// ticks). Share the same journal with a serving gateway to get
    /// one causally-correlated record across both layers.
    pub fn attach_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = Some(journal);
    }

    /// The attached flight recorder, if any.
    #[must_use]
    pub fn journal(&self) -> Option<Arc<EventJournal>> {
        self.journal.as_ref().map(Arc::clone)
    }

    /// The version registry.
    #[must_use]
    pub fn versions(&self) -> &[VersionEntry] {
        &self.versions
    }

    /// The device population.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Fleet-wide health relative to `target`.
    #[must_use]
    pub fn health(&self, target: usize) -> FleetHealth {
        let mut h = FleetHealth::default();
        for d in &self.devices {
            match d.phase {
                Phase::Quarantined => h.quarantined += 1,
                Phase::RolledBack => h.rolled_back += 1,
                Phase::Abandoned => h.abandoned += 1,
                Phase::Running => {
                    if d.active == target {
                        h.on_target += 1;
                    } else {
                        h.on_previous += 1;
                    }
                }
                _ => h.in_flight += 1,
            }
        }
        h
    }

    /// Audits the post-rollout fleet against the safety invariants and
    /// returns every violation (empty = safe). Checked by the E26
    /// harness and the integration tests after *every* fault plan:
    ///
    /// 1. no device is stuck mid-update;
    /// 2. quarantined devices never installed the target;
    /// 3. no device serves weights that diverge from its version's
    ///    golden output (corrupted installs were caught and reverted);
    /// 4. on `Completed`, every non-quarantined device that wasn't
    ///    individually rolled back or abandoned runs the target;
    /// 5. on `RolledBack`, *no* device runs the target.
    #[must_use]
    pub fn audit(&self, report: &RolloutReport) -> Vec<String> {
        let mut violations = Vec::new();
        let target = report.target_index;
        for d in &self.devices {
            if !d.phase.is_terminal() {
                violations.push(format!("device {} stuck in {:?}", d.id, d.phase));
            }
            if d.phase == Phase::Quarantined && d.installed.contains(&target) {
                violations.push(format!("quarantined device {} installed the target", d.id));
            }
            if let Some(corrupted) = &d.corrupted {
                let golden = &self.versions[d.active].golden;
                match run_probe(corrupted, &self.probe).and_then(|out| out.max_abs_diff(golden)) {
                    // diff == 0.0 is an output-invisible flip: not a violation.
                    Ok(diff) => {
                        if diff != 0.0 {
                            violations.push(format!(
                                "device {} serves weights diverging from {}",
                                d.id, self.versions[d.active].name
                            ));
                        }
                    }
                    Err(e) => violations.push(format!("device {} probe failed: {e}", d.id)),
                }
            }
            match report.outcome {
                RolloutOutcome::Completed => {
                    let excused = matches!(
                        d.phase,
                        Phase::Quarantined | Phase::RolledBack | Phase::Abandoned
                    );
                    if !excused && d.active != target {
                        violations.push(format!(
                            "device {} missed the completed rollout (on {})",
                            d.id, self.versions[d.active].name
                        ));
                    }
                }
                RolloutOutcome::RolledBack { .. } => {
                    if d.active == target {
                        violations.push(format!("device {} still on the rolled-back target", d.id));
                    }
                }
            }
        }
        violations
    }
}

fn run_probe(graph: &Graph, probe: &Tensor) -> Result<Tensor, NnirError> {
    let mut runner = Runner::builder().build(graph)?;
    let out = runner.execute(std::slice::from_ref(probe), RunOptions::default())?;
    Ok(out.outputs()[0].clone())
}

/// Appends to an optionally attached journal; returns the event seq
/// (0 when no journal is attached).
fn jappend(
    journal: &Option<Arc<EventJournal>>,
    at: u64,
    kind: EventKind,
    subject: CauseId,
    cause: CauseId,
    detail: u64,
) -> u64 {
    journal
        .as_ref()
        .map_or(0, |j| j.append(at, kind, subject, cause, detail))
}

/// The `CauseId` citing journal event `seq` — `NONE` when the citation
/// target was never journalled (no journal attached).
fn cites(seq: u64) -> CauseId {
    if seq > 0 {
        CauseId::event(seq)
    } else {
        CauseId::NONE
    }
}

/// `DeviceRolledBack` detail codes: why the device reverted.
const ROLLBACK_SOAK_DEADLINE: u64 = 0;
const ROLLBACK_CRASH_LOOP: u64 = 1;
const ROLLBACK_GOLDEN_DIVERGED: u64 = 2;
const ROLLBACK_WAVE_REVERT: u64 = 3;

/// One staged, health-gated push of a registered version to the fleet.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Registry index of the version to push.
    pub target: usize,
    /// Pacing and gating knobs.
    pub policy: RolloutPolicy,
    /// Adversity schedule.
    pub fault: FleetFaultPlan,
}

/// An active network partition event.
struct Partition {
    offset: usize,
    span: usize,
    until: u64,
}

impl Rollout {
    /// Creates a rollout of `target` under `policy` and `fault`.
    #[must_use]
    pub fn new(target: usize, policy: RolloutPolicy, fault: FleetFaultPlan) -> Self {
        Rollout {
            target,
            policy,
            fault,
        }
    }

    /// Runs the rollout to a terminal state and returns the report.
    ///
    /// # Errors
    ///
    /// Rejects invalid policies/plans, unknown targets, and propagates
    /// fault-injection or probe execution failures.
    ///
    /// # Panics
    ///
    /// Never under a validated policy: internal draws are bounds-checked.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, fleet: &mut Fleet) -> Result<RolloutReport, FleetError> {
        self.policy.validate()?;
        self.fault.validate().map_err(FleetError::Config)?;
        if self.target >= fleet.versions.len() {
            return Err(FleetError::Config(format!(
                "unknown target version {}",
                self.target
            )));
        }
        if self.policy.chunk_bytes != fleet.chunk_bytes {
            return Err(FleetError::Config(
                "policy chunk size differs from the fleet's packed artifacts".into(),
            ));
        }
        let rollout_seed = splitmix64(
            fleet.config.seed ^ self.fault.seed.rotate_left(17) ^ (self.target as u64) << 48,
        );

        // Reset transient phases from any previous rollout; re-salt the
        // per-device streams; mark this rollout's compromised devices.
        let mut plan_rng = DetRng::new(rollout_seed ^ DEVICE_SALT);
        for d in &mut fleet.devices {
            if d.phase != Phase::Quarantined {
                d.phase = Phase::Running;
            }
            d.crashed_this_tick = false;
            d.rng = DetRng::new(splitmix64(rollout_seed ^ DEVICE_SALT ^ u64::from(d.id)));
            d.compromise = if plan_rng.chance(self.fault.compromised_rate) {
                Some(if plan_rng.chance(0.5) {
                    CompromiseKind::TamperedFirmware
                } else {
                    CompromiseKind::ForgedSignature
                })
            } else {
                None
            };
        }

        let n = fleet.devices.len();
        let mut partition_rng = DetRng::new(rollout_seed ^ PARTITION_SALT);
        let mut partitions: Vec<Partition> = Vec::new();
        let mut counters = FleetCounters::default();
        let mut waves: Vec<WaveReport> = Vec::new();
        let mut tick: u64 = 0;
        let mut outcome = RolloutOutcome::Completed;

        // Wave plan: canary, then exponential growth over the remaining
        // candidates (devices not quarantined and not on the target).
        let mut pending: Vec<usize> = (0..n)
            .filter(|&i| {
                fleet.devices[i].phase != Phase::Quarantined
                    && fleet.devices[i].active != self.target
            })
            .collect();
        let mut wave_size = self.policy.canary;
        let mut wave_index = 0usize;
        // The rollout's root-cause event: every wave cites it, so any
        // device outcome chains back to "this release was pushed".
        let root_event = jappend(
            &fleet.journal,
            tick,
            EventKind::RolloutStarted,
            CauseId::release(self.target as u64),
            CauseId::NONE,
            pending.len() as u64,
        );

        while !pending.is_empty() {
            let take = wave_size.min(pending.len());
            let members: Vec<usize> = pending.drain(..take).collect();
            let started_tick = tick;
            let wave_event = jappend(
                &fleet.journal,
                started_tick,
                EventKind::WaveStarted,
                CauseId::wave(wave_index as u64),
                cites(root_event),
                members.len() as u64,
            );
            for &i in &members {
                fleet.devices[i].phase = Phase::Downloading {
                    next_chunk: 0,
                    attempt: 0,
                    backoff_until: 0,
                };
                jappend(
                    &fleet.journal,
                    started_tick,
                    EventKind::DevicePhase,
                    CauseId::device(u64::from(fleet.devices[i].id)),
                    cites(wave_event),
                    fleet.devices[i].phase.code(),
                );
            }

            // Tick until every member is terminal or the deadline hits.
            let deadline = started_tick + self.policy.wave_deadline_ticks;
            loop {
                let all_terminal = members
                    .iter()
                    .all(|&i| fleet.devices[i].phase.is_terminal());
                if all_terminal {
                    break;
                }
                if tick >= deadline {
                    for &i in &members {
                        let d = &mut fleet.devices[i];
                        match d.phase {
                            // Not yet activated: the partial download /
                            // staged image is simply dropped.
                            Phase::Downloading { .. }
                            | Phase::Rebooting { .. }
                            | Phase::Verifying
                            | Phase::Attesting
                            | Phase::Installing { .. } => {
                                counters.downloads_abandoned += 1;
                                d.phase = Phase::Abandoned;
                                jappend(
                                    &fleet.journal,
                                    tick,
                                    EventKind::DevicePhase,
                                    CauseId::device(u64::from(d.id)),
                                    cites(wave_event),
                                    Phase::Abandoned.code(),
                                );
                            }
                            // Mid-soak at the deadline: already active —
                            // abort conservatively to the known-good slot.
                            Phase::Soaking { .. } => {
                                counters.device_rollbacks += 1;
                                d.roll_back();
                                jappend(
                                    &fleet.journal,
                                    tick,
                                    EventKind::DeviceRolledBack,
                                    CauseId::device(u64::from(d.id)),
                                    cites(wave_event),
                                    ROLLBACK_SOAK_DEADLINE,
                                );
                            }
                            _ => {}
                        }
                    }
                    break;
                }

                // Partition bookkeeping (global stream).
                partitions.retain(|p| p.until > tick);
                if partition_rng.chance(self.fault.partition_rate) && self.fault.partition_span > 0
                {
                    partitions.push(Partition {
                        offset: partition_rng.index(n),
                        span: self.fault.partition_span,
                        until: tick + self.fault.partition_ticks,
                    });
                }

                for &i in &members {
                    self.step_device(fleet, i, tick, &partitions, &mut counters, wave_event)?;
                }

                // Availability over the whole fleet, every tick.
                for d in &fleet.devices {
                    counters.total_device_ticks += 1;
                    if d.is_serving() {
                        counters.served_device_ticks += 1;
                    }
                }
                tick += 1;
            }

            // Gate the wave.
            let mut health = FleetHealth::default();
            for &i in &members {
                let d = &fleet.devices[i];
                match d.phase {
                    Phase::Quarantined => health.quarantined += 1,
                    Phase::RolledBack => health.rolled_back += 1,
                    Phase::Abandoned => health.abandoned += 1,
                    Phase::Running if d.active == self.target => health.on_target += 1,
                    _ => health.on_previous += 1,
                }
            }
            let mut gate = health.success_rate() >= self.policy.health_threshold;
            // Canary accuracy gate: the target must not regress held-out
            // accuracy vs the best already-deployed version.
            if wave_index == 0 {
                if let Some(target_acc) = fleet.versions[self.target].accuracy {
                    let baseline_acc = fleet
                        .versions
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != self.target)
                        .filter_map(|(_, v)| v.accuracy)
                        .fold(0.0_f64, f64::max);
                    if target_acc < baseline_acc - self.policy.max_accuracy_drop {
                        gate = false;
                    }
                }
            }
            waves.push(WaveReport {
                index: wave_index,
                size: members.len(),
                health,
                gate_passed: gate,
                started_tick,
                ended_tick: tick,
            });
            let gate_event = jappend(
                &fleet.journal,
                tick,
                EventKind::HealthGate,
                CauseId::wave(wave_index as u64),
                cites(wave_event),
                u64::from(gate),
            );

            if !gate {
                // Wave-level rollback: revert every device that
                // activated the target, in any wave. Each revert cites
                // the failed gate — the chain from any reverted device
                // runs gate → wave → rollout root.
                let mut reverted = 0u64;
                for d in &mut fleet.devices {
                    if d.active == self.target && d.phase != Phase::Quarantined {
                        counters.device_rollbacks += 1;
                        reverted += 1;
                        d.roll_back();
                        jappend(
                            &fleet.journal,
                            tick,
                            EventKind::DeviceRolledBack,
                            CauseId::device(u64::from(d.id)),
                            cites(gate_event),
                            ROLLBACK_WAVE_REVERT,
                        );
                    }
                }
                counters.wave_rollbacks += 1;
                jappend(
                    &fleet.journal,
                    tick,
                    EventKind::WaveRolledBack,
                    CauseId::wave(wave_index as u64),
                    cites(gate_event),
                    reverted,
                );
                outcome = RolloutOutcome::RolledBack { wave: wave_index };
                break;
            }

            wave_index += 1;
            wave_size = wave_size.saturating_mul(self.policy.wave_growth);
        }

        let entry = &fleet.versions[self.target];
        let availability = if counters.total_device_ticks == 0 {
            1.0
        } else {
            counters.served_device_ticks as f64 / counters.total_device_ticks as f64
        };
        let report = RolloutReport {
            target: entry.name.clone(),
            target_index: self.target,
            outcome,
            ticks: tick,
            waves,
            counters,
            health: fleet.health(self.target),
            availability,
        };
        Ok(report)
    }

    /// Advances one device by one tick.
    #[allow(clippy::too_many_lines)]
    fn step_device(
        &self,
        fleet: &mut Fleet,
        idx: usize,
        tick: u64,
        partitions: &[Partition],
        counters: &mut FleetCounters,
        wave_event: u64,
    ) -> Result<(), FleetError> {
        let n = fleet.devices.len();
        let partitioned = partitions.iter().any(|p| (idx + n - p.offset) % n < p.span);
        let Fleet {
            devices,
            versions,
            verifier,
            released_measurement,
            probe,
            journal,
            ..
        } = fleet;
        let entry = &versions[self.target];
        let artifact = &entry.artifact;
        let d = &mut devices[idx];
        d.crashed_this_tick = false;

        match d.phase {
            Phase::Downloading {
                mut next_chunk,
                mut attempt,
                mut backoff_until,
            } => {
                // Crash mid-download: reboot, then resume from the last
                // verified chunk.
                if d.rng.chance(self.fault.crash_per_tick) {
                    counters.crashes += 1;
                    d.crashed_this_tick = true;
                    d.phase = Phase::Rebooting {
                        until: tick + self.policy.reboot_ticks,
                        resume: Some(next_chunk),
                    };
                    return Ok(());
                }
                if tick < backoff_until {
                    return Ok(());
                }
                let cond = d.link_at(tick, partitioned);
                let total = artifact.manifest.chunk_count();
                if let Some(per_chunk_ms) = cond.upload_ms(self.policy.chunk_bytes as u64) {
                    let budget = (self.policy.tick_ms / per_chunk_ms).floor().max(1.0) as u32;
                    let budget = budget.min(self.policy.max_chunks_per_tick);
                    for _ in 0..budget {
                        if next_chunk >= total {
                            break;
                        }
                        let chunk = &artifact.chunks[next_chunk as usize];
                        // In-transit corruption: flip one bit of the
                        // received copy and run the *real* hash check.
                        let received_ok = if d.rng.chance(self.fault.transit_flip_rate) {
                            let mut received = chunk.clone();
                            let byte = d.rng.index(received.payload.len().max(1));
                            let bit = d.rng.index(8) as u8;
                            received.payload[byte] ^= 1 << bit;
                            let ok = received.verify(&artifact.manifest);
                            debug_assert!(!ok, "hash check missed a flipped bit");
                            ok
                        } else {
                            chunk.verify(&artifact.manifest)
                        };
                        if received_ok {
                            counters.chunks_delivered += 1;
                            next_chunk += 1;
                            attempt = 0;
                        } else {
                            counters.artifact_flips_caught += 1;
                            counters.chunk_retries += 1;
                            attempt += 1;
                            if attempt >= self.policy.retry.max_attempts {
                                // Budget exhausted: long cool-down, then
                                // a fresh attempt cycle (bounded retry
                                // must not brick the device).
                                attempt = 0;
                                backoff_until = tick + self.policy.retry_cooldown_ticks;
                            } else {
                                let salt =
                                    BACKOFF_SALT ^ u64::from(d.id) << 24 ^ u64::from(next_chunk);
                                let delay = self.policy.retry.backoff(attempt, salt);
                                backoff_until = tick + self.policy.ticks(delay);
                            }
                            break;
                        }
                    }
                }
                d.phase = if next_chunk >= total {
                    jappend(
                        journal,
                        tick,
                        EventKind::DevicePhase,
                        CauseId::device(u64::from(d.id)),
                        cites(wave_event),
                        Phase::Verifying.code(),
                    );
                    Phase::Verifying
                } else {
                    Phase::Downloading {
                        next_chunk,
                        attempt,
                        backoff_until,
                    }
                };
            }
            Phase::Rebooting { until, resume } => {
                if tick >= until {
                    d.phase = match resume {
                        Some(chunk) => {
                            counters.resumed_downloads += 1;
                            Phase::Downloading {
                                next_chunk: chunk,
                                attempt: 0,
                                backoff_until: 0,
                            }
                        }
                        None => Phase::Running,
                    };
                }
            }
            Phase::Verifying => {
                // Whole-image check: every chunk hash plus the chained
                // root (the release identity the device will attest to
                // having installed).
                debug_assert!(artifact.verify().is_ok());
                d.phase = Phase::Attesting;
            }
            Phase::Attesting => {
                let nonce = verifier.challenge_for(d.rot.device_id);
                let report = match d.compromise {
                    None => attest(&d.rot, *released_measurement, nonce),
                    Some(CompromiseKind::TamperedFirmware) => {
                        // Honest key, dishonest measurement.
                        attest(&d.rot, sha256(b"tampered-firmware"), nonce)
                    }
                    Some(CompromiseKind::ForgedSignature) => {
                        // An attacker without the fused key signs with a
                        // rogue one and claims this device's identity.
                        let rogue = RootOfTrust::provision(b"rogue-key");
                        let mut forged = attest(&rogue, *released_measurement, nonce);
                        forged.device_id = d.rot.device_id;
                        forged
                    }
                };
                if verifier.verify(&report) {
                    counters.attest_ok += 1;
                    d.phase = Phase::Installing {
                        until: tick + self.policy.install_ticks,
                    };
                    jappend(
                        journal,
                        tick,
                        EventKind::DevicePhase,
                        CauseId::device(u64::from(d.id)),
                        cites(wave_event),
                        d.phase.code(),
                    );
                } else {
                    counters.quarantined += 1;
                    d.phase = Phase::Quarantined;
                    // Detail: what the attestation caught (1 =
                    // tampered firmware, 2 = forged signature; 0 would
                    // be an honest device wrongly cordoned — never
                    // expected).
                    let detail = match d.compromise {
                        None => 0,
                        Some(CompromiseKind::TamperedFirmware) => 1,
                        Some(CompromiseKind::ForgedSignature) => 2,
                    };
                    jappend(
                        journal,
                        tick,
                        EventKind::DeviceQuarantined,
                        CauseId::device(u64::from(d.id)),
                        cites(wave_event),
                        detail,
                    );
                }
            }
            Phase::Installing { until } => {
                if tick >= until {
                    d.activate(self.target);
                    counters.installs += 1;
                    // Install-time fault draws.
                    let crash_loop = d.rng.chance(self.fault.install_crash_rate);
                    if d.rng.chance(self.fault.weight_flip_rate) {
                        let mut shadow = entry.graph.clone();
                        let flip_seed = splitmix64(self.fault.seed ^ FLIP_SALT ^ u64::from(d.id));
                        flip_weight_bits(&mut shadow, self.fault.weight_flips, flip_seed)?;
                        d.corrupted = Some(shadow);
                        counters.weight_flips_injected += 1;
                    }
                    d.phase = Phase::Soaking {
                        until: tick + self.policy.soak_ticks,
                        crashes: 0,
                        crash_loop,
                    };
                    jappend(
                        journal,
                        tick,
                        EventKind::DevicePhase,
                        CauseId::device(u64::from(d.id)),
                        cites(wave_event),
                        d.phase.code(),
                    );
                }
            }
            Phase::Soaking {
                until,
                mut crashes,
                crash_loop,
            } => {
                if crash_loop && d.rng.chance(0.5) {
                    crashes += 1;
                    counters.crashes += 1;
                    d.crashed_this_tick = true;
                }
                if crashes >= 3 {
                    counters.crash_loops_detected += 1;
                    counters.device_rollbacks += 1;
                    d.roll_back();
                    jappend(
                        journal,
                        tick,
                        EventKind::DeviceRolledBack,
                        CauseId::device(u64::from(d.id)),
                        cites(wave_event),
                        ROLLBACK_CRASH_LOOP,
                    );
                } else if tick >= until {
                    // Golden check: clean installs share the verified
                    // image (content-addressed by the manifest root), so
                    // only a corrupted shadow needs a real inference.
                    let diverged = match &d.corrupted {
                        None => false,
                        Some(shadow) => {
                            let out = run_probe(shadow, probe)?;
                            out.max_abs_diff(&entry.golden)? != 0.0
                        }
                    };
                    if diverged {
                        counters.weight_flips_caught += 1;
                        counters.device_rollbacks += 1;
                        d.roll_back();
                        jappend(
                            journal,
                            tick,
                            EventKind::DeviceRolledBack,
                            CauseId::device(u64::from(d.id)),
                            cites(wave_event),
                            ROLLBACK_GOLDEN_DIVERGED,
                        );
                    } else {
                        d.phase = Phase::Running;
                        jappend(
                            journal,
                            tick,
                            EventKind::DevicePhase,
                            CauseId::device(u64::from(d.id)),
                            cites(wave_event),
                            Phase::Running.code(),
                        );
                    }
                } else {
                    d.phase = Phase::Soaking {
                        until,
                        crashes,
                        crash_loop,
                    };
                }
            }
            Phase::Running | Phase::RolledBack | Phase::Quarantined | Phase::Abandoned => {}
        }
        Ok(())
    }
}
