//! Fleet-scale OTA model rollout for VEDLIoT edge deployments.
//!
//! The paper's toolchain ends at a deployable model; this crate covers
//! the last mile at fleet scale: shipping that model to thousands of
//! heterogeneous edge devices over unreliable links without ever
//! leaving the fleet in an unsafe state. It composes the trust layer
//! (attestation before install), the safety layer (bit-flip fault
//! models and golden checks), the serving layer's retry/backoff
//! machinery, and the `recs` network model into one deterministic
//! simulation:
//!
//! - [`artifact`] — packed model releases: graph + explicit weights in
//!   hash-chained chunks, so corruption is caught per chunk in transit
//!   and end-to-end at install.
//! - [`device`] — the per-device state machine: chunked resume across
//!   crashes, A/B slots, attest-before-install, soak with golden
//!   checks, local rollback.
//! - [`fault`] — seeded [`FleetFaultPlan`](fault::FleetFaultPlan):
//!   crashes, partitions, transit and weight bit flips, crash loops,
//!   forged attestations.
//! - [`rollout`] — the [`Fleet`](rollout::Fleet) and the health-gated
//!   wave engine: canary cohort, exponential expansion gated on a
//!   [`FleetHealth`](rollout::FleetHealth) aggregate, automatic wave
//!   rollback, quarantine, and an obs-exportable
//!   [`RolloutReport`](rollout::RolloutReport).
//!
//! Everything is seeded and tick-based: the same fleet seed and fault
//! plan replay the identical rollout, which is what lets the E26
//! harness assert hard convergence invariants (no corrupted weights
//! served, quarantined devices never installed to, regressed waves
//! rolled back) rather than statistical tendencies.

pub mod artifact;
pub mod device;
pub mod fault;
pub mod rollout;

pub use artifact::{ArtifactError, Chunk, Manifest, ModelArtifact};
pub use device::{Device, Phase};
pub use fault::{CompromiseKind, FleetFaultPlan};
pub use rollout::{
    Fleet, FleetConfig, FleetCounters, FleetError, FleetHealth, Rollout, RolloutOutcome,
    RolloutPolicy, RolloutReport, WaveReport,
};
