// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Fleet rollout convergence harness: under every seeded fault plan —
//! crashes mid-download, partitions, flipped artifact bits, flipped
//! installed weights, crash loops, forged attestations — the fleet
//! must converge to a safe state: reachable honest devices on the
//! attested, hash-verified target; corrupted installs rolled back;
//! quarantined devices never installed to; regressed waves reverted.

use proptest::prelude::*;
use std::sync::Arc;
use vedliot_fleet::rollout::{Fleet, FleetConfig, Rollout, RolloutOutcome, RolloutPolicy};
use vedliot_fleet::FleetFaultPlan;
use vedliot_nnir::dataset::gaussian_prototypes;
use vedliot_nnir::exec::Runner;
use vedliot_nnir::graph::{Graph, WeightInit};
use vedliot_nnir::tensor::Tensor;
use vedliot_nnir::train::mlp;
use vedliot_nnir::Shape;
use vedliot_obs::{CauseId, EventJournal, EventKind};

const INPUTS: usize = 12;
const CLASSES: usize = 3;

/// A small model with materialized (explicit) weights, as shipped.
fn shipped_model(name: &str, tweak: f32) -> Graph {
    let mut g = mlp(name, INPUTS, &[10], CLASSES).expect("mlp builds");
    let materialized: Vec<Option<Vec<Tensor>>> = {
        let exec = Runner::builder().build(&g).expect("valid graph");
        g.nodes()
            .iter()
            .map(|n| {
                if matches!(n.weights, WeightInit::None) {
                    None
                } else {
                    Some(exec.node_weights(n).expect("materializes"))
                }
            })
            .collect()
    };
    for (node, w) in g.nodes_mut().iter_mut().zip(materialized) {
        if let Some(tensors) = w {
            let tensors = tensors
                .into_iter()
                .map(|t| {
                    let data = t.data().iter().map(|v| v * (1.0 + tweak)).collect();
                    Tensor::from_vec(t.shape().clone(), data).expect("same shape")
                })
                .collect();
            node.weights = WeightInit::Explicit(tensors);
        }
    }
    g
}

fn probe() -> Tensor {
    Tensor::random(Shape::nf(1, INPUTS), 2024, 1.0)
}

fn small_fleet(devices: usize, seed: u64) -> (Fleet, usize) {
    let mut fleet = Fleet::new(
        FleetConfig {
            devices,
            seed,
            trace_len: 128,
        },
        ("v1", shipped_model("edge-model", 0.0)),
        probe(),
        None,
    )
    .expect("fleet builds");
    let v2 = fleet
        .register_version("v2", shipped_model("edge-model", 0.05), None)
        .expect("v2 registers");
    (fleet, v2)
}

fn assert_safe(fleet: &Fleet, report: &vedliot_fleet::RolloutReport) {
    let violations = fleet.audit(report);
    assert!(violations.is_empty(), "safety violations: {violations:#?}");
}

#[test]
fn quiet_plan_converges_everyone_with_high_availability() {
    let (mut fleet, v2) = small_fleet(160, 41);
    let rollout = Rollout::new(v2, RolloutPolicy::default(), FleetFaultPlan::quiet(7));
    let report = rollout.run(&mut fleet).expect("runs");
    assert_eq!(report.outcome, RolloutOutcome::Completed);
    assert_safe(&fleet, &report);
    assert_eq!(report.health.on_target, 160, "{:#?}", report.health);
    assert_eq!(report.counters.device_rollbacks, 0);
    assert_eq!(report.counters.quarantined, 0);
    // Only planned install/reboot outages dent availability.
    assert!(
        report.availability > 0.95,
        "availability {}",
        report.availability
    );
    // Waves grew exponentially from the canary.
    let sizes: Vec<usize> = report.waves.iter().map(|w| w.size).collect();
    assert_eq!(sizes, vec![8, 32, 120]);
}

#[test]
fn hostile_plan_converges_to_a_safe_state_and_every_defense_fires() {
    let (mut fleet, v2) = small_fleet(260, 1203);
    let mut plan = FleetFaultPlan::hostile(17);
    // Scale rates up so a 260-device fleet exercises every defense.
    plan.compromised_rate = 0.04;
    plan.weight_flip_rate = 0.06;
    plan.transit_flip_rate = 0.04;
    plan.crash_per_tick = 0.004;
    // With ~7% of installs expected to fail (and roll back) by design,
    // a canary of 8 under a 0.9 gate would trip on a single rollback:
    // scale the cohort and the threshold to the injected failure rate.
    let policy = RolloutPolicy {
        canary: 16,
        health_threshold: 0.8,
        ..RolloutPolicy::default()
    };
    let rollout = Rollout::new(v2, policy, plan);
    let report = rollout.run(&mut fleet).expect("runs");

    assert_eq!(report.outcome, RolloutOutcome::Completed, "{report:#?}");
    assert_safe(&fleet, &report);
    let c = &report.counters;
    assert!(c.crashes > 0, "no crashes injected");
    assert!(c.artifact_flips_caught > 0, "no transit flips caught");
    assert!(c.chunk_retries >= c.artifact_flips_caught);
    assert!(c.resumed_downloads > 0, "no chunked resume exercised");
    assert!(c.quarantined > 0, "no forged attestation quarantined");
    assert!(c.weight_flips_injected > 0, "no weight flips injected");
    assert!(
        c.weight_flips_caught > 0,
        "golden checks caught no corrupted install"
    );
    assert!(c.device_rollbacks > 0, "no device rolled back");
    assert_eq!(
        c.wave_rollbacks, 0,
        "healthy version must not wave-roll-back"
    );

    // Quarantined devices were never installed to — ever.
    for d in fleet.devices() {
        if d.phase == vedliot_fleet::Phase::Quarantined {
            assert!(!d.installed.contains(&v2), "device {} installed", d.id);
        }
    }
}

#[test]
fn rollout_replays_identically_from_the_same_seeds() {
    let run = || {
        let (mut fleet, v2) = small_fleet(120, 99);
        let rollout = Rollout::new(v2, RolloutPolicy::default(), FleetFaultPlan::hostile(5));
        rollout.run(&mut fleet).expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    // A different fault seed takes a different path.
    let (mut fleet, v2) = small_fleet(120, 99);
    let rollout = Rollout::new(v2, RolloutPolicy::default(), FleetFaultPlan::hostile(6));
    let c = rollout.run(&mut fleet).expect("runs");
    assert_ne!(a, c);
}

#[test]
fn accuracy_regressing_version_is_rolled_back_at_the_canary_gate() {
    let eval = gaussian_prototypes(&Shape::nf(1, INPUTS), CLASSES, 30, 3.0, 11);
    // v1: trained to high accuracy on the prototype task.
    let mut good = mlp("edge-model", INPUTS, &[10], CLASSES).expect("mlp builds");
    let cfg = vedliot_nnir::train::TrainConfig::default();
    vedliot_nnir::train::train_mlp(&mut good, &eval, &cfg).expect("trains");
    // The "bad release": weights zeroed — accuracy collapses to chance,
    // but the artifact itself is perfectly intact, so only the canary
    // accuracy gate can catch it.
    let mut bad = good.clone();
    for node in bad.nodes_mut() {
        if let WeightInit::Explicit(tensors) = &mut node.weights {
            for t in tensors {
                let zeros = vec![0.0; t.data().len()];
                *t = Tensor::from_vec(t.shape().clone(), zeros).expect("same shape");
            }
        }
    }

    let mut fleet = Fleet::new(
        FleetConfig {
            devices: 150,
            seed: 77,
            trace_len: 128,
        },
        ("v1", good),
        probe(),
        Some(&eval),
    )
    .expect("fleet builds");
    let bad_idx = fleet
        .register_version("v2-bad", bad, Some(&eval))
        .expect("registers");

    let rollout = Rollout::new(bad_idx, RolloutPolicy::default(), FleetFaultPlan::quiet(3));
    let report = rollout.run(&mut fleet).expect("runs");
    assert_eq!(report.outcome, RolloutOutcome::RolledBack { wave: 0 });
    assert_safe(&fleet, &report);
    assert_eq!(report.counters.wave_rollbacks, 1);
    assert!(!report.waves[0].gate_passed);
    // Blast radius: only the canary cohort ever saw the bad version.
    assert!(report.counters.installs <= RolloutPolicy::default().canary as u64);
    assert_eq!(report.health.on_target, 0);
    for d in fleet.devices() {
        assert_ne!(d.active, bad_idx, "device {} still on bad version", d.id);
    }
}

#[test]
fn unhealthy_wave_triggers_automatic_wave_rollback() {
    let (mut fleet, v2) = small_fleet(150, 404);
    // Every install crash-loops: the canary wave regresses on install
    // health alone (no accuracy data needed).
    let mut plan = FleetFaultPlan::quiet(9);
    plan.install_crash_rate = 1.0;
    let rollout = Rollout::new(v2, RolloutPolicy::default(), plan);
    let report = rollout.run(&mut fleet).expect("runs");
    assert_eq!(report.outcome, RolloutOutcome::RolledBack { wave: 0 });
    assert_safe(&fleet, &report);
    assert!(report.counters.crash_loops_detected > 0);
    assert_eq!(report.health.on_target, 0);
    assert!(report.counters.crashes > 0);
}

#[test]
fn compromised_majority_is_contained_not_rolled_back() {
    // Quarantine is a security outcome, not a health regression: even a
    // heavily compromised wave must not trip the health gate, and every
    // honest device still converges.
    let (mut fleet, v2) = small_fleet(120, 2025);
    let mut plan = FleetFaultPlan::quiet(13);
    plan.compromised_rate = 0.4;
    let rollout = Rollout::new(v2, RolloutPolicy::default(), plan);
    let report = rollout.run(&mut fleet).expect("runs");
    assert_eq!(report.outcome, RolloutOutcome::Completed);
    assert_safe(&fleet, &report);
    assert!(report.counters.quarantined > 20);
    assert_eq!(
        report.health.on_target + report.health.quarantined,
        120,
        "{:#?}",
        report.health
    );
}

/// The flight recorder's accounting is exact: every rollback,
/// quarantine and wave in the report is a journal event, every event
/// chains back to the rollout root, and the whole journal replays
/// bit-identically from the same seeds (timestamps are ticks).
#[test]
fn journal_accounts_for_every_rollback_and_quarantine_exactly() {
    let run = || {
        let (mut fleet, v2) = small_fleet(120, 99);
        let journal = Arc::new(EventJournal::new(1 << 14));
        fleet.attach_journal(Arc::clone(&journal));
        // Scale the rates and gate to the fleet size so the rollout
        // reliably exercises both rollback and quarantine (the same
        // calibration as the hostile convergence test).
        let mut plan = FleetFaultPlan::hostile(5);
        plan.compromised_rate = 0.05;
        let policy = RolloutPolicy {
            canary: 16,
            health_threshold: 0.8,
            ..RolloutPolicy::default()
        };
        let rollout = Rollout::new(v2, policy, plan);
        let report = rollout.run(&mut fleet).expect("runs");
        assert_eq!(journal.dropped(), 0, "journal sized for the rollout");
        (fleet, report, journal.snapshot())
    };
    let (fleet, report, events) = run();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
    assert_eq!(count(EventKind::RolloutStarted), 1);
    assert_eq!(count(EventKind::WaveStarted), report.waves.len() as u64);
    assert_eq!(count(EventKind::HealthGate), report.waves.len() as u64);
    assert_eq!(
        count(EventKind::DeviceRolledBack),
        report.counters.device_rollbacks
    );
    assert_eq!(
        count(EventKind::DeviceQuarantined),
        report.counters.quarantined
    );
    assert_eq!(
        count(EventKind::WaveRolledBack),
        report.counters.wave_rollbacks
    );
    assert!(
        count(EventKind::DeviceRolledBack) > 0,
        "hostile plan rolls back"
    );
    assert!(
        count(EventKind::DeviceQuarantined) > 0,
        "hostile plan forges"
    );

    // "Why did device N roll back?" — one chain query reaches the wave
    // that scheduled it and the rollout that pushed the release.
    let rolled_back = fleet
        .devices()
        .iter()
        .find(|d| d.phase == vedliot_fleet::Phase::RolledBack)
        .expect("hostile plan rolled a device back");
    let journal = fleet.journal().expect("attached");
    let chain = journal.chain(CauseId::device(u64::from(rolled_back.id)));
    let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::DeviceRolledBack));
    assert!(kinds.contains(&EventKind::WaveStarted));
    assert!(kinds.contains(&EventKind::RolloutStarted), "{kinds:?}");

    // Bit-deterministic replay: same seeds, same journal.
    let (_, report_b, events_b) = run();
    assert_eq!(report, report_b);
    assert_eq!(events, events_b);
}

/// A failed gate chains wave-revert rollbacks through the gate event:
/// device rollback → health gate (failed) → wave → rollout root.
#[test]
fn wave_revert_rollbacks_cite_the_failed_gate() {
    let (mut fleet, v2) = small_fleet(150, 404);
    let journal = Arc::new(EventJournal::new(1 << 13));
    fleet.attach_journal(Arc::clone(&journal));
    let mut plan = FleetFaultPlan::quiet(9);
    plan.install_crash_rate = 1.0;
    let rollout = Rollout::new(v2, RolloutPolicy::default(), plan);
    let report = rollout.run(&mut fleet).expect("runs");
    assert_eq!(report.outcome, RolloutOutcome::RolledBack { wave: 0 });
    let events = journal.snapshot();
    let wave_rollback = events
        .iter()
        .find(|e| e.kind == EventKind::WaveRolledBack)
        .expect("wave rolled back");
    // The wave rollback cites the failed gate, which cites the wave.
    let chain = journal.chain(CauseId::event(wave_rollback.seq));
    let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::HealthGate));
    assert!(kinds.contains(&EventKind::WaveStarted));
    assert!(kinds.contains(&EventKind::RolloutStarted));
    // The failed gate's detail says so.
    let gate = events
        .iter()
        .find(|e| e.kind == EventKind::HealthGate)
        .expect("gate journalled");
    assert_eq!(gate.detail, 0, "gate failed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the fault mix, the fleet ends in a safe state: nobody
    /// stuck mid-update, no corrupted weights served, quarantined
    /// devices never installed to, and a rolled-back target running
    /// nowhere. (Outcome may be Completed *or* RolledBack — both are
    /// safe; the audit checks the matching invariants.)
    #[test]
    fn any_fault_plan_converges_to_a_safe_state(
        fleet_seed in 1u64..1_000_000,
        fault_seed in 1u64..1_000_000,
        crash in 0.0f64..0.006,
        transit in 0.0f64..0.06,
        weight in 0.0f64..0.08,
        install_crash in 0.0f64..0.05,
        compromised in 0.0f64..0.08,
        partition in 0.0f64..0.02,
    ) {
        let (mut fleet, v2) = small_fleet(64, fleet_seed);
        let plan = FleetFaultPlan {
            seed: fault_seed,
            crash_per_tick: crash,
            transit_flip_rate: transit,
            weight_flip_rate: weight,
            weight_flips: 4,
            install_crash_rate: install_crash,
            compromised_rate: compromised,
            partition_rate: partition,
            partition_span: 16,
            partition_ticks: 40,
        };
        let policy = RolloutPolicy { canary: 4, ..RolloutPolicy::default() };
        let rollout = Rollout::new(v2, policy, plan);
        let report = rollout.run(&mut fleet).expect("runs");
        let violations = fleet.audit(&report);
        prop_assert!(violations.is_empty(), "violations: {violations:#?}");
        prop_assert!(report.availability > 0.5);
    }
}
