//! Computer-on-Module form factors and microservers (paper Fig. 2).

use serde::{Deserialize, Serialize};
use std::fmt;
use vedliot_accel::catalog::{catalog, AcceleratorSpec};

/// Processor architecture of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// x86-64.
    X86,
    /// 64-bit ARM.
    Arm64,
    /// FPGA SoC (programmable logic + ARM cores).
    FpgaSoc,
    /// GPU-accelerated ARM module (Jetson family).
    GpuSoc,
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Architecture::X86 => "x86",
            Architecture::Arm64 => "ARM",
            Architecture::FpgaSoc => "FPGA-SoC",
            Architecture::GpuSoc => "GPU-SoC",
        };
        f.write_str(name)
    }
}

/// A Computer-on-Module form-factor standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FormFactor {
    /// COM Express Basic Type 6 (125×95 mm).
    ComExpressType6,
    /// COM Express Basic Type 7 (125×95 mm, server I/O).
    ComExpressType7,
    /// COM-HPC Client (120×95/160×120 mm).
    ComHpcClient,
    /// COM-HPC Server (160×160 mm).
    ComHpcServer,
    /// SMARC 2.1 (82×50 mm).
    Smarc,
    /// NVIDIA Jetson SO-DIMM modules (69.6×45 mm).
    JetsonModule,
    /// Xilinx Kria SOM (77×60 mm, via adapter PCB on uRECS).
    Kria,
    /// Raspberry Pi Compute Module 4 (55×40 mm, via adapter PCB).
    RpiCm,
}

impl FormFactor {
    /// All form factors of Fig. 2.
    pub const ALL: [FormFactor; 8] = [
        FormFactor::ComExpressType6,
        FormFactor::ComExpressType7,
        FormFactor::ComHpcClient,
        FormFactor::ComHpcServer,
        FormFactor::Smarc,
        FormFactor::JetsonModule,
        FormFactor::Kria,
        FormFactor::RpiCm,
    ];

    /// Module dimensions in millimetres (width, depth).
    #[must_use]
    pub fn dimensions_mm(self) -> (f64, f64) {
        match self {
            FormFactor::ComExpressType6 | FormFactor::ComExpressType7 => (125.0, 95.0),
            FormFactor::ComHpcClient => (120.0, 95.0),
            FormFactor::ComHpcServer => (160.0, 160.0),
            FormFactor::Smarc => (82.0, 50.0),
            FormFactor::JetsonModule => (69.6, 45.0),
            FormFactor::Kria => (77.0, 60.0),
            FormFactor::RpiCm => (55.0, 40.0),
        }
    }

    /// Maximum module power per the standard, in watts.
    #[must_use]
    pub fn max_power_w(self) -> f64 {
        match self {
            FormFactor::ComExpressType6 => 137.0,
            FormFactor::ComExpressType7 => 137.0,
            FormFactor::ComHpcClient => 200.0,
            FormFactor::ComHpcServer => 358.0,
            FormFactor::Smarc => 15.0,
            FormFactor::JetsonModule => 30.0,
            FormFactor::Kria => 15.0,
            FormFactor::RpiCm => 7.0,
        }
    }

    /// Architectures available in this form factor (Fig. 2's rows:
    /// SMARC "support[s] with x86, ARM and FPGA-SoC more target
    /// architectures").
    #[must_use]
    pub fn architectures(self) -> &'static [Architecture] {
        match self {
            FormFactor::ComExpressType6 | FormFactor::ComExpressType7 => &[Architecture::X86],
            FormFactor::ComHpcClient | FormFactor::ComHpcServer => {
                &[Architecture::X86, Architecture::Arm64]
            }
            FormFactor::Smarc => &[
                Architecture::X86,
                Architecture::Arm64,
                Architecture::FpgaSoc,
            ],
            FormFactor::JetsonModule => &[Architecture::GpuSoc],
            FormFactor::Kria => &[Architecture::FpgaSoc],
            FormFactor::RpiCm => &[Architecture::Arm64],
        }
    }
}

impl fmt::Display for FormFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FormFactor::ComExpressType6 => "COM Express Type 6",
            FormFactor::ComExpressType7 => "COM Express Type 7",
            FormFactor::ComHpcClient => "COM-HPC Client",
            FormFactor::ComHpcServer => "COM-HPC Server",
            FormFactor::Smarc => "SMARC",
            FormFactor::JetsonModule => "Jetson module",
            FormFactor::Kria => "Kria SOM",
            FormFactor::RpiCm => "RPi Compute Module",
        };
        f.write_str(name)
    }
}

/// A microserver: a populated module that can host DL workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microserver {
    /// Product name.
    pub name: String,
    /// Form factor it ships in.
    pub form_factor: FormFactor,
    /// Processor architecture.
    pub architecture: Architecture,
    /// CPU core count.
    pub cores: usize,
    /// RAM in GiB.
    pub ram_gib: usize,
    /// The DL-capable compute device on the module (from the
    /// `vedliot-accel` catalog); also defines the module's power draw.
    pub accelerator: AcceleratorSpec,
}

impl Microserver {
    /// Peak power draw in watts (the accelerator TDP dominates).
    #[must_use]
    pub fn peak_power_w(&self) -> f64 {
        self.accelerator.tdp_w
    }

    /// Whether this module physically fits its own form factor's power
    /// envelope (sanity predicate used by chassis validation).
    #[must_use]
    pub fn within_form_factor_power(&self) -> bool {
        self.peak_power_w() <= self.form_factor.max_power_w()
    }
}

/// The standard microserver catalog used across the VEDLIoT platforms
/// (each pairs a Fig.-2 form factor with a Fig.-3/4 accelerator entry).
#[must_use]
pub fn standard_microservers() -> Vec<Microserver> {
    let db = catalog();
    let pick = |needle: &str| {
        db.find(needle)
            .unwrap_or_else(|| panic!("catalog entry {needle} missing"))
            .clone()
    };
    vec![
        Microserver {
            name: "CXP-EPYC-3451".into(),
            form_factor: FormFactor::ComExpressType7,
            architecture: Architecture::X86,
            cores: 16,
            ram_gib: 64,
            accelerator: pick("EPYC 3451"),
        },
        Microserver {
            name: "CXP-D1577".into(),
            form_factor: FormFactor::ComExpressType6,
            architecture: Architecture::X86,
            cores: 16,
            ram_gib: 32,
            accelerator: pick("Pentium D1577"),
        },
        Microserver {
            name: "COMHPC-GTX1660".into(),
            form_factor: FormFactor::ComHpcServer,
            architecture: Architecture::X86,
            cores: 8,
            ram_gib: 32,
            accelerator: pick("GTX 1660"),
        },
        Microserver {
            name: "Jetson Xavier NX".into(),
            form_factor: FormFactor::JetsonModule,
            architecture: Architecture::GpuSoc,
            cores: 6,
            ram_gib: 8,
            accelerator: pick("Xavier NX"),
        },
        Microserver {
            name: "Jetson TX2".into(),
            form_factor: FormFactor::JetsonModule,
            architecture: Architecture::GpuSoc,
            cores: 6,
            ram_gib: 8,
            accelerator: pick("Jetson TX2"),
        },
        Microserver {
            name: "SMARC-ZU3".into(),
            form_factor: FormFactor::Smarc,
            architecture: Architecture::FpgaSoc,
            cores: 4,
            ram_gib: 4,
            accelerator: pick("Zynq ZU3"),
        },
        Microserver {
            name: "Kria K26 SOM".into(),
            form_factor: FormFactor::Kria,
            architecture: Architecture::FpgaSoc,
            cores: 4,
            ram_gib: 4,
            accelerator: pick("Kria K26"),
        },
        Microserver {
            name: "RPi CM4".into(),
            form_factor: FormFactor::RpiCm,
            architecture: Architecture::Arm64,
            cores: 4,
            ram_gib: 8,
            accelerator: pick("Cortex-A72"),
        },
        Microserver {
            name: "Myriad-X M.2".into(),
            form_factor: FormFactor::Smarc,
            architecture: Architecture::Arm64,
            cores: 2,
            ram_gib: 2,
            accelerator: pick("Myriad X"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_form_factors_have_plausible_dimensions() {
        for ff in FormFactor::ALL {
            let (w, d) = ff.dimensions_mm();
            assert!(w > 30.0 && w < 200.0, "{ff}: width {w}");
            assert!(d > 30.0 && d <= 160.0, "{ff}: depth {d}");
            assert!(ff.max_power_w() > 0.0);
            assert!(!ff.architectures().is_empty());
        }
    }

    #[test]
    fn smarc_supports_three_architectures() {
        // Fig. 2: "SMARC modules … support with x86, ARM and FPGA-SoC
        // more target architectures".
        let archs = FormFactor::Smarc.architectures();
        assert_eq!(archs.len(), 3);
        assert!(archs.contains(&Architecture::FpgaSoc));
    }

    #[test]
    fn standard_catalog_is_self_consistent() {
        let servers = standard_microservers();
        assert!(servers.len() >= 8);
        for m in &servers {
            assert!(
                m.form_factor.architectures().contains(&m.architecture),
                "{}: {} not available in {}",
                m.name,
                m.architecture,
                m.form_factor
            );
            assert!(
                m.within_form_factor_power(),
                "{}: {} W exceeds {} envelope",
                m.name,
                m.peak_power_w(),
                m.form_factor
            );
        }
    }

    #[test]
    fn embedded_modules_are_low_power() {
        // uRECS targets < 15 W modules (SMARC / Jetson / Kria / RPi).
        for m in standard_microservers() {
            if matches!(
                m.form_factor,
                FormFactor::Smarc | FormFactor::Kria | FormFactor::RpiCm
            ) {
                assert!(
                    m.peak_power_w() <= 15.0,
                    "{} draws {}",
                    m.name,
                    m.peak_power_w()
                );
            }
        }
    }
}
