//! Communication fabric.
//!
//! Paper §II-A: "the scalable communication-driven infrastructure,
//! realizing efficient communication between heterogeneous microservers
//! via 1 G/ 10 G Ethernet and high-speed low-latency connections,
//! reconfigurable during run-time. … On the communication level, e.g.,
//! the networking topology or protocol parameters can be adapted to cope
//! with changing real-time or bandwidth requirements."

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kinds of inter-microserver links the RECS baseboards provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// 1 Gbit/s Ethernet.
    Eth1G,
    /// 10 Gbit/s Ethernet.
    Eth10G,
    /// High-speed low-latency point-to-point link (PCIe/SerDes class).
    HighSpeed,
}

impl LinkKind {
    /// Usable bandwidth in Gbit/s.
    #[must_use]
    pub fn bandwidth_gbps(self) -> f64 {
        match self {
            LinkKind::Eth1G => 0.95,
            LinkKind::Eth10G => 9.4,
            LinkKind::HighSpeed => 31.5,
        }
    }

    /// One-way latency in microseconds.
    #[must_use]
    pub fn latency_us(self) -> f64 {
        match self {
            LinkKind::Eth1G => 60.0,
            LinkKind::Eth10G => 12.0,
            LinkKind::HighSpeed => 1.5,
        }
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LinkKind::Eth1G => "1G Ethernet",
            LinkKind::Eth10G => "10G Ethernet",
            LinkKind::HighSpeed => "high-speed low-latency",
        };
        f.write_str(name)
    }
}

/// A reconfiguration event on the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigEvent {
    /// The endpoints affected.
    pub between: (usize, usize),
    /// Link kind before.
    pub from: Option<LinkKind>,
    /// Link kind after (`None` = link removed).
    pub to: Option<LinkKind>,
    /// Time the fabric needed to apply the change, in microseconds.
    pub apply_us: f64,
}

/// The fabric: a set of links between slot indices, reconfigurable at
/// run time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    links: Vec<((usize, usize), LinkKind)>,
    history: Vec<ReconfigEvent>,
}

fn key(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Fabric {
    /// Creates an empty fabric.
    #[must_use]
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Creates a full mesh over `nodes` slots with one link kind.
    #[must_use]
    pub fn full_mesh(nodes: usize, kind: LinkKind) -> Self {
        let mut fabric = Fabric::new();
        for a in 0..nodes {
            for b in a + 1..nodes {
                fabric.links.push(((a, b), kind));
            }
        }
        fabric
    }

    /// Creates a star topology with `hub` at the centre.
    #[must_use]
    pub fn star(nodes: usize, hub: usize, kind: LinkKind) -> Self {
        let mut fabric = Fabric::new();
        for n in 0..nodes {
            if n != hub {
                fabric.links.push((key(hub, n), kind));
            }
        }
        fabric
    }

    /// The link between two slots, if any.
    #[must_use]
    pub fn link(&self, a: usize, b: usize) -> Option<LinkKind> {
        let k = key(a, b);
        self.links
            .iter()
            .find(|(l, _)| *l == k)
            .map(|&(_, kind)| kind)
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Reconfigures (adds, upgrades or removes) the link between two
    /// slots at run time, recording the event. Returns the event.
    pub fn reconfigure(&mut self, a: usize, b: usize, to: Option<LinkKind>) -> ReconfigEvent {
        let k = key(a, b);
        let from = self.link(a, b);
        self.links.retain(|(l, _)| *l != k);
        if let Some(kind) = to {
            self.links.push((k, kind));
        }
        // Reconfiguration cost: switch-table update (~50 µs) plus link
        // retraining for the high-speed lanes (~2 ms).
        let apply_us = match to {
            Some(LinkKind::HighSpeed) => 2_000.0,
            Some(_) => 50.0,
            None => 10.0,
        };
        let event = ReconfigEvent {
            between: k,
            from,
            to,
            apply_us,
        };
        self.history.push(event.clone());
        event
    }

    /// Reconfiguration history.
    #[must_use]
    pub fn history(&self) -> &[ReconfigEvent] {
        &self.history
    }

    /// Transfer time for `bytes` between two directly connected slots,
    /// in microseconds. `None` when no link exists.
    #[must_use]
    pub fn transfer_us(&self, a: usize, b: usize, bytes: u64) -> Option<f64> {
        let kind = self.link(a, b)?;
        let serialize_us = bytes as f64 * 8.0 / (kind.bandwidth_gbps() * 1e3);
        Some(kind.latency_us() + serialize_us)
    }

    /// Shortest transfer time over at most one intermediate hop (RECS
    /// baseboards switch locally, so one hop covers the chassis).
    #[must_use]
    pub fn route_us(&self, a: usize, b: usize, bytes: u64, nodes: usize) -> Option<f64> {
        let direct = self.transfer_us(a, b, bytes);
        let via_hop = (0..nodes)
            .filter(|&h| h != a && h != b)
            .filter_map(|h| Some(self.transfer_us(a, h, bytes)? + self.transfer_us(h, b, bytes)?))
            .fold(None, |best: Option<f64>, t| {
                Some(best.map_or(t, |b| b.min(t)))
            });
        match (direct, via_hop) {
            (Some(d), Some(v)) => Some(d.min(v)),
            (d, v) => d.or(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_properties_ordered_sensibly() {
        assert!(LinkKind::Eth10G.bandwidth_gbps() > LinkKind::Eth1G.bandwidth_gbps());
        assert!(LinkKind::HighSpeed.latency_us() < LinkKind::Eth10G.latency_us());
    }

    #[test]
    fn full_mesh_connects_everything() {
        let fabric = Fabric::full_mesh(4, LinkKind::Eth1G);
        assert_eq!(fabric.link_count(), 6);
        assert!(fabric.link(0, 3).is_some());
        assert!(fabric.link(3, 0).is_some(), "links are undirected");
    }

    #[test]
    fn star_routes_through_hub() {
        let fabric = Fabric::star(4, 0, LinkKind::Eth10G);
        assert!(fabric.link(1, 2).is_none());
        // But one-hop routing through the hub works.
        let t = fabric.route_us(1, 2, 1500, 4).expect("route via hub");
        let direct_equiv = fabric.transfer_us(1, 0, 1500).unwrap() * 2.0;
        assert!((t - direct_equiv).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_with_size_and_kind() {
        let fabric = Fabric::full_mesh(2, LinkKind::Eth1G);
        let small = fabric.transfer_us(0, 1, 1_000).unwrap();
        let large = fabric.transfer_us(0, 1, 1_000_000).unwrap();
        assert!(large > small * 100.0);
        let mut fast = fabric.clone();
        fast.reconfigure(0, 1, Some(LinkKind::Eth10G));
        assert!(fast.transfer_us(0, 1, 1_000_000).unwrap() < large / 5.0);
    }

    #[test]
    fn runtime_reconfiguration_is_recorded() {
        let mut fabric = Fabric::full_mesh(3, LinkKind::Eth1G);
        let e = fabric.reconfigure(0, 1, Some(LinkKind::HighSpeed));
        assert_eq!(e.from, Some(LinkKind::Eth1G));
        assert_eq!(e.to, Some(LinkKind::HighSpeed));
        assert!(e.apply_us > 0.0);
        let e = fabric.reconfigure(0, 2, None);
        assert_eq!(e.to, None);
        assert!(fabric.link(0, 2).is_none());
        assert_eq!(fabric.history().len(), 2);
    }

    #[test]
    fn no_route_between_disconnected_nodes() {
        let fabric = Fabric::new();
        assert!(fabric.route_us(0, 1, 100, 4).is_none());
    }
}
