//! The RECS modular AIoT hardware platform (paper §II).
//!
//! "All RECS hardware platforms share a modular approach, which leads to
//! a heterogeneous, adaptable hardware architecture … Another common
//! feature is the scalable communication-driven infrastructure,
//! realizing efficient communication between heterogeneous microservers
//! via 1 G/10 G Ethernet and high-speed low-latency connections,
//! reconfigurable during run-time."
//!
//! * [`module`] — the Computer-on-Module form factors of **Fig. 2**
//!   (COM Express, COM-HPC, SMARC, Jetson NX, Kria, RPi CM4) and the
//!   microservers built on them,
//! * [`chassis`] — RECS|Box, t.RECS and uRECS chassis with slot
//!   compatibility and power-budget validation,
//! * [`fabric`] — the communication infrastructure with run-time
//!   reconfigurable links and topology,
//! * [`scheduler`] — energy/latency-aware placement of DL workloads onto
//!   the heterogeneous microservers (+ failure-driven re-placement),
//! * [`net`] — the stochastic mobile-network model used by the PAEB
//!   offloading use case (§V-A),
//! * [`telemetry`] — per-node power/thermal telemetry with trend-based
//!   health checks (the input for dynamic reconfiguration).
//!
//! # Example
//!
//! ```
//! use vedliot_recs::chassis::Chassis;
//! use vedliot_recs::module::standard_microservers;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut urecs = Chassis::urecs();
//! let servers = standard_microservers();
//! let jetson = servers.iter().find(|m| m.name.contains("Xavier NX")).expect("catalog");
//! urecs.insert(0, jetson.clone())?;
//! assert!(urecs.used_power_w() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod chassis;
pub mod fabric;
pub mod module;
pub mod net;
pub mod scheduler;
pub mod telemetry;

pub use chassis::{Chassis, ChassisError, ChassisKind};
pub use module::{Architecture, FormFactor, Microserver};
