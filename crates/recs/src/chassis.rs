//! RECS chassis: RECS|Box, t.RECS and uRECS.
//!
//! "uRECS closes the gap in hardware platforms towards embedded/far edge
//! computing with a power consumption of less than 15 W as required by
//! some use cases. Next to SMARC microservers, it also natively supports
//! Jetson Xavier NX modules. By using adaptor-PCBs, uRECS also
//! integrates Xilinx Kria, and Raspberry Pi compute modules."

use crate::module::{FormFactor, Microserver};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The RECS chassis families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChassisKind {
    /// Rack-scale cloud/near-edge platform (COM Express).
    RecsBox,
    /// 1U edge server (COM-HPC Client/Server).
    TRecs,
    /// Embedded / far-edge box (< 15 W budget).
    URecs,
}

impl fmt::Display for ChassisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ChassisKind::RecsBox => "RECS|Box",
            ChassisKind::TRecs => "t.RECS",
            ChassisKind::URecs => "uRECS",
        };
        f.write_str(name)
    }
}

/// Chassis configuration errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ChassisError {
    /// The slot index does not exist.
    UnknownSlot(usize),
    /// The slot is already populated.
    SlotOccupied(usize),
    /// The module's form factor is not supported by this chassis.
    IncompatibleFormFactor {
        /// The chassis.
        chassis: ChassisKind,
        /// The offending form factor.
        form_factor: FormFactor,
    },
    /// Inserting the module would exceed the chassis power budget.
    PowerBudgetExceeded {
        /// Power after insertion, in watts.
        requested_w: f64,
        /// The budget, in watts.
        budget_w: f64,
    },
    /// The slot is empty (for removal).
    SlotEmpty(usize),
}

impl fmt::Display for ChassisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChassisError::UnknownSlot(i) => write!(f, "slot {i} does not exist"),
            ChassisError::SlotOccupied(i) => write!(f, "slot {i} is occupied"),
            ChassisError::IncompatibleFormFactor {
                chassis,
                form_factor,
            } => write!(f, "{chassis} does not accept {form_factor} modules"),
            ChassisError::PowerBudgetExceeded {
                requested_w,
                budget_w,
            } => write!(f, "power {requested_w:.1} W exceeds budget {budget_w:.1} W"),
            ChassisError::SlotEmpty(i) => write!(f, "slot {i} is empty"),
        }
    }
}

impl std::error::Error for ChassisError {}

/// A populated chassis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chassis {
    kind: ChassisKind,
    slots: Vec<Option<Microserver>>,
    power_budget_w: f64,
}

impl Chassis {
    /// Creates a RECS|Box (15 COM Express slots, 1.5 kW).
    #[must_use]
    pub fn recs_box() -> Self {
        Chassis {
            kind: ChassisKind::RecsBox,
            slots: vec![None; 15],
            power_budget_w: 1500.0,
        }
    }

    /// Creates a t.RECS (3 COM-HPC slots, 700 W).
    #[must_use]
    pub fn t_recs() -> Self {
        Chassis {
            kind: ChassisKind::TRecs,
            slots: vec![None; 3],
            power_budget_w: 700.0,
        }
    }

    /// Creates a uRECS (2 embedded slots, 15 W budget).
    #[must_use]
    pub fn urecs() -> Self {
        Chassis {
            kind: ChassisKind::URecs,
            slots: vec![None; 2],
            power_budget_w: 15.0,
        }
    }

    /// Chassis family.
    #[must_use]
    pub fn kind(&self) -> ChassisKind {
        self.kind
    }

    /// Number of slots.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Power budget in watts.
    #[must_use]
    pub fn power_budget_w(&self) -> f64 {
        self.power_budget_w
    }

    /// Form factors this chassis accepts ("Fig. 2": which module
    /// standards each platform hosts; uRECS adapters included).
    #[must_use]
    pub fn supported_form_factors(&self) -> &'static [FormFactor] {
        match self.kind {
            ChassisKind::RecsBox => &[FormFactor::ComExpressType6, FormFactor::ComExpressType7],
            ChassisKind::TRecs => &[FormFactor::ComHpcClient, FormFactor::ComHpcServer],
            ChassisKind::URecs => &[
                FormFactor::Smarc,
                FormFactor::JetsonModule,
                FormFactor::Kria,
                FormFactor::RpiCm,
            ],
        }
    }

    /// Sum of the peak power of the installed modules.
    #[must_use]
    pub fn used_power_w(&self) -> f64 {
        self.slots
            .iter()
            .flatten()
            .map(Microserver::peak_power_w)
            .sum()
    }

    /// Installed microservers with their slot indices.
    #[must_use]
    pub fn populated(&self) -> Vec<(usize, &Microserver)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|m| (i, m)))
            .collect()
    }

    /// Inserts a microserver into a slot, validating compatibility and
    /// power ("easy exchange of computing resources").
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn insert(&mut self, slot: usize, module: Microserver) -> Result<(), ChassisError> {
        if slot >= self.slots.len() {
            return Err(ChassisError::UnknownSlot(slot));
        }
        if self.slots[slot].is_some() {
            return Err(ChassisError::SlotOccupied(slot));
        }
        if !self.supported_form_factors().contains(&module.form_factor) {
            return Err(ChassisError::IncompatibleFormFactor {
                chassis: self.kind,
                form_factor: module.form_factor,
            });
        }
        let requested = self.used_power_w() + module.peak_power_w();
        if requested > self.power_budget_w {
            return Err(ChassisError::PowerBudgetExceeded {
                requested_w: requested,
                budget_w: self.power_budget_w,
            });
        }
        self.slots[slot] = Some(module);
        Ok(())
    }

    /// Removes and returns the module in a slot (hot-swap).
    ///
    /// # Errors
    ///
    /// Returns [`ChassisError::SlotEmpty`] / [`ChassisError::UnknownSlot`].
    pub fn remove(&mut self, slot: usize) -> Result<Microserver, ChassisError> {
        if slot >= self.slots.len() {
            return Err(ChassisError::UnknownSlot(slot));
        }
        self.slots[slot].take().ok_or(ChassisError::SlotEmpty(slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::standard_microservers;

    fn by_name(name: &str) -> Microserver {
        standard_microservers()
            .into_iter()
            .find(|m| m.name.contains(name))
            .expect("module exists")
    }

    #[test]
    fn urecs_accepts_embedded_modules_only() {
        let mut urecs = Chassis::urecs();
        urecs.insert(0, by_name("SMARC-ZU3")).unwrap();
        let err = urecs.insert(1, by_name("CXP-EPYC-3451"));
        assert!(matches!(
            err,
            Err(ChassisError::IncompatibleFormFactor { .. })
        ));
    }

    #[test]
    fn urecs_power_budget_is_under_15w() {
        let mut urecs = Chassis::urecs();
        urecs.insert(0, by_name("SMARC-ZU3")).unwrap(); // 7.5 W
                                                        // A Xavier NX (15 W) would blow the remaining budget.
        let err = urecs.insert(1, by_name("Xavier NX"));
        assert!(matches!(err, Err(ChassisError::PowerBudgetExceeded { .. })));
        // A 2.5 W Myriad module fits.
        urecs.insert(1, by_name("Myriad")).unwrap();
        assert!(urecs.used_power_w() <= urecs.power_budget_w());
    }

    #[test]
    fn recs_box_hosts_many_com_express_modules() {
        let mut chassis = Chassis::recs_box();
        for slot in 0..10 {
            chassis.insert(slot, by_name("CXP-D1577")).unwrap();
        }
        assert_eq!(chassis.populated().len(), 10);
        assert!(chassis.used_power_w() <= chassis.power_budget_w());
    }

    #[test]
    fn slot_errors_are_specific() {
        let mut chassis = Chassis::t_recs();
        assert!(matches!(
            chassis.insert(99, by_name("COMHPC-GTX1660")),
            Err(ChassisError::UnknownSlot(99))
        ));
        chassis.insert(0, by_name("COMHPC-GTX1660")).unwrap();
        assert!(matches!(
            chassis.insert(0, by_name("COMHPC-GTX1660")),
            Err(ChassisError::SlotOccupied(0))
        ));
        assert!(matches!(chassis.remove(1), Err(ChassisError::SlotEmpty(1))));
    }

    #[test]
    fn hot_swap_frees_power() {
        let mut urecs = Chassis::urecs();
        urecs.insert(0, by_name("Xavier NX")).unwrap(); // 15 W: full budget
        assert!(urecs.insert(1, by_name("Myriad")).is_err());
        let removed = urecs.remove(0).unwrap();
        assert!(removed.name.contains("Xavier"));
        urecs.insert(1, by_name("Myriad")).unwrap();
    }

    #[test]
    fn platform_coverage_spans_embedded_to_cloud() {
        // "Using the RECS hardware platform, VEDLIoT covers the complete
        // range from embedded via edge to cloud computing."
        assert!(Chassis::urecs().power_budget_w() <= 15.0);
        assert!(Chassis::t_recs().power_budget_w() > 100.0);
        assert!(Chassis::recs_box().power_budget_w() >= 1000.0);
    }
}
