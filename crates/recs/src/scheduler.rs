//! Energy/latency-aware workload placement on a RECS chassis.
//!
//! Paper §II-A: "The RECS ecosystem enables easy exchange of computing
//! resources and seamless switching between the different heterogeneous
//! components on the system level" and §I: VEDLIoT optimizes
//! applications "towards energy efficiency". The scheduler places DL
//! workloads on the populated microservers, minimizing energy per
//! inference subject to each workload's latency bound, and re-places on
//! node failure.

use crate::chassis::Chassis;
use serde::{Deserialize, Serialize};
use std::fmt;
use vedliot_accel::perf::PerfModel;
use vedliot_nnir::Graph;

/// A workload to place: a model plus its service requirements.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name.
    pub name: String,
    /// The model graph (at its deployment batch size).
    pub model: Graph,
    /// Latency bound per inference in milliseconds.
    pub latency_bound_ms: f64,
    /// Required inference rate (inferences per second).
    pub rate_ips: f64,
}

/// One placement decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Workload name.
    pub workload: String,
    /// Chassis slot hosting it.
    pub slot: usize,
    /// Microserver name.
    pub server: String,
    /// Modelled latency per inference (ms).
    pub latency_ms: f64,
    /// Modelled energy per inference (J).
    pub energy_per_inference_j: f64,
    /// Fraction of the server's throughput this workload consumes.
    pub load: f64,
    /// Placement-time inference rate (internal bookkeeping for power
    /// accounting).
    #[serde(skip)]
    load_rate: Option<f64>,
}

/// A complete placement.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Placement {
    /// Successful assignments.
    pub assignments: Vec<Assignment>,
    /// Workloads that could not be placed within their bounds.
    pub unplaced: Vec<String>,
}

impl Placement {
    /// Total energy rate in watts attributable to the placed workloads
    /// (energy per inference × rate).
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.energy_per_inference_j * rate_of(a))
            .sum()
    }

    /// Whether every workload found a home.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.unplaced.is_empty()
    }
}

fn rate_of(a: &Assignment) -> f64 {
    a.load_rate.unwrap_or(0.0)
}

/// Scheduler failure conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The chassis has no populated slots.
    EmptyChassis,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::EmptyChassis => write!(f, "chassis has no populated slots"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Greedy energy-first scheduler.
///
/// For each workload (largest rate first) every candidate server is
/// evaluated with the accelerator performance model; the feasible
/// candidate (latency bound met, residual capacity available) with the
/// lowest energy per inference wins.
pub fn place(chassis: &Chassis, workloads: &[Workload]) -> Result<Placement, ScheduleError> {
    let servers = chassis.populated();
    if servers.is_empty() {
        return Err(ScheduleError::EmptyChassis);
    }
    // Residual throughput capacity per slot (inferences/s available).
    let mut residual: Vec<(usize, f64)> = Vec::new();

    let mut order: Vec<&Workload> = workloads.iter().collect();
    order.sort_by(|a, b| {
        b.rate_ips
            .partial_cmp(&a.rate_ips)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut placement = Placement::default();
    for workload in order {
        let mut best: Option<Assignment> = None;
        for &(slot, server) in &servers {
            let model = PerfModel::new(server.accelerator.clone());
            let Ok(run) = model.run(&workload.model) else {
                continue;
            };
            if run.latency_ms > workload.latency_bound_ms {
                continue;
            }
            // Capacity: server throughput minus already-placed load.
            let used: f64 = residual
                .iter()
                .filter(|&&(s, _)| s == slot)
                .map(|&(_, r)| r)
                .sum();
            let capacity = run.throughput_ips - used;
            if capacity < workload.rate_ips {
                continue;
            }
            let candidate = Assignment {
                workload: workload.name.clone(),
                slot,
                server: server.name.clone(),
                latency_ms: run.latency_ms,
                energy_per_inference_j: run.energy_per_inference_j,
                load: (used + workload.rate_ips) / run.throughput_ips,
                load_rate: Some(workload.rate_ips),
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.energy_per_inference_j < b.energy_per_inference_j,
            };
            if better {
                best = Some(candidate);
            }
        }
        match best {
            Some(assignment) => {
                residual.push((assignment.slot, workload.rate_ips));
                placement.assignments.push(assignment);
            }
            None => placement.unplaced.push(workload.name.clone()),
        }
    }
    Ok(placement)
}

/// Re-places the workloads after a slot failure ("increased … robustness"
/// through dynamic reconfiguration): the failed slot is excluded and the
/// whole placement recomputed.
pub fn replace_after_failure(
    chassis: &mut Chassis,
    failed_slot: usize,
    workloads: &[Workload],
) -> Result<Placement, ScheduleError> {
    let _ = chassis.remove(failed_slot);
    place(chassis, workloads)
}

// The Assignment struct needs the placement-time rate for power math but
// callers should not see the raw option; serde skips it.
#[doc(hidden)]
impl Assignment {
    /// Placement-time rate (inferences/s); internal bookkeeping.
    #[must_use]
    pub fn placed_rate_ips(&self) -> f64 {
        self.load_rate.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::standard_microservers;
    use vedliot_nnir::zoo;

    fn by_name(name: &str) -> crate::module::Microserver {
        standard_microservers()
            .into_iter()
            .find(|m| m.name.contains(name))
            .expect("module exists")
    }

    fn workload(name: &str, latency_ms: f64, rate: f64) -> Workload {
        Workload {
            name: name.into(),
            model: zoo::mobilenet_v3_large(10).unwrap(),
            latency_bound_ms: latency_ms,
            rate_ips: rate,
        }
    }

    fn edge_chassis() -> Chassis {
        let mut c = Chassis::t_recs();
        c.insert(0, by_name("COMHPC-GTX1660")).unwrap();
        c
    }

    fn urecs_pair() -> Chassis {
        let mut c = Chassis::urecs();
        c.insert(0, by_name("SMARC-ZU3")).unwrap();
        c.insert(1, by_name("Myriad")).unwrap();
        c
    }

    #[test]
    fn places_on_the_energy_optimal_feasible_server() {
        let c = urecs_pair();
        let placement = place(&c, &[workload("gesture", 200.0, 5.0)]).unwrap();
        assert!(placement.complete());
        let a = &placement.assignments[0];
        // Both servers meet a 200 ms bound for MobileNetV3; the Myriad is
        // the lower-energy part, so it must win.
        assert!(a.server.contains("Myriad"), "placed on {}", a.server);
    }

    #[test]
    fn tight_latency_bound_forces_faster_server() {
        let mut c = Chassis::t_recs();
        c.insert(0, by_name("COMHPC-GTX1660")).unwrap();
        let mut c2 = urecs_pair();
        // A compute-heavy model separates the platforms: the uRECS
        // servers cannot meet an aggressive bound that the GTX can.
        let tight = Workload {
            name: "paeb".into(),
            model: zoo::resnet50(10).unwrap(),
            latency_bound_ms: 15.0,
            rate_ips: 1.0,
        };
        let urecs_placement = place(&c2, std::slice::from_ref(&tight)).unwrap();
        assert!(!urecs_placement.complete());
        let edge_placement = place(&c, &[tight]).unwrap();
        assert!(edge_placement.complete());
        let _ = &mut c2;
    }

    #[test]
    fn capacity_limits_are_respected() {
        let c = urecs_pair();
        // Demand far beyond what two embedded parts can serve.
        let heavy: Vec<Workload> = (0..6)
            .map(|i| workload(&format!("stream{i}"), 500.0, 200.0))
            .collect();
        let placement = place(&c, &heavy).unwrap();
        assert!(
            !placement.unplaced.is_empty(),
            "6 × 200 ips cannot all fit on ZU3 + Myriad"
        );
        // Loads of placed workloads stay within 100%.
        for a in &placement.assignments {
            assert!(a.load <= 1.0 + 1e-9, "{} overloaded: {}", a.server, a.load);
        }
    }

    #[test]
    fn empty_chassis_is_an_error() {
        let c = Chassis::urecs();
        assert_eq!(
            place(&c, &[workload("x", 100.0, 1.0)]).unwrap_err(),
            ScheduleError::EmptyChassis
        );
    }

    #[test]
    fn failure_triggers_replacement_on_survivors() {
        let mut c = urecs_pair();
        let wl = [workload("monitor", 300.0, 2.0)];
        let before = place(&c, &wl).unwrap();
        let first_slot = before.assignments[0].slot;
        let after = replace_after_failure(&mut c, first_slot, &wl).unwrap();
        assert!(after.complete(), "survivor must absorb the workload");
        assert_ne!(after.assignments[0].slot, first_slot);
    }

    #[test]
    fn placement_power_is_positive_and_bounded() {
        let c = edge_chassis();
        let placement = place(&c, &[workload("cam", 100.0, 10.0)]).unwrap();
        assert!(placement.complete());
        let p = placement.total_power_w();
        assert!(p > 0.0);
        assert!(p < 1000.0);
    }
}
