//! Node telemetry and health tracking.
//!
//! Paper §II-A extends "the classically static hardware architecture
//! towards a dynamically configurable infrastructure for increased
//! resource-efficiency and robustness" — the decision inputs for that
//! reconfiguration are the per-node power/thermal/utilization samples
//! collected here. The RECS baseboards expose exactly this telemetry
//! over their management controller.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use vedliot_obs::{Export, Exportable, Metric};

/// One telemetry sample from a microserver slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Monotonic sample index (management-controller tick).
    pub tick: u64,
    /// Power draw in watts.
    pub power_w: f64,
    /// Module temperature in °C.
    pub temperature_c: f64,
    /// Compute utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Health state derived from recent telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// Operating normally.
    Ok,
    /// A threshold or trend is violated; the reason is attached.
    Degraded(String),
}

impl Health {
    /// Whether the node is healthy.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Health::Ok)
    }
}

/// Rolling telemetry store for one slot, with threshold + trend checks.
///
/// ```
/// use vedliot_recs::telemetry::{NodeTelemetry, Sample};
///
/// let mut t = NodeTelemetry::new(15.0, 85.0, 64);
/// t.record(Sample { tick: 0, power_w: 8.0, temperature_c: 55.0, utilization: 0.7 });
/// assert!(t.health().is_ok());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeTelemetry {
    power_limit_w: f64,
    temp_limit_c: f64,
    window: usize,
    samples: VecDeque<Sample>,
}

impl NodeTelemetry {
    /// Creates a tracker with hard power/thermal limits and a rolling
    /// window length.
    ///
    /// # Panics
    ///
    /// Panics if `window < 4`.
    #[must_use]
    pub fn new(power_limit_w: f64, temp_limit_c: f64, window: usize) -> Self {
        assert!(window >= 4, "window too small for trend analysis");
        NodeTelemetry {
            power_limit_w,
            temp_limit_c,
            window,
            samples: VecDeque::new(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Sample) {
        self.samples.push_back(sample);
        if self.samples.len() > self.window {
            self.samples.pop_front();
        }
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean power over the window (0 when empty).
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.power_w).sum::<f64>() / self.samples.len() as f64
    }

    /// Current health: hard-limit checks on the latest sample plus a
    /// thermal-trend check over the window (a steady climb toward the
    /// limit flags *before* the limit trips — the input for proactive
    /// workload migration).
    #[must_use]
    pub fn health(&self) -> Health {
        let Some(latest) = self.samples.back() else {
            return Health::Ok;
        };
        if latest.power_w > self.power_limit_w {
            return Health::Degraded(format!(
                "power {:.1} W exceeds limit {:.1} W",
                latest.power_w, self.power_limit_w
            ));
        }
        if latest.temperature_c > self.temp_limit_c {
            return Health::Degraded(format!(
                "temperature {:.1} °C exceeds limit {:.1} °C",
                latest.temperature_c, self.temp_limit_c
            ));
        }
        // Trend: compare the halves of the window; if the newer half is
        // much hotter and extrapolates past the limit within another
        // window, flag it.
        if self.samples.len() == self.window {
            let half = self.window / 2;
            let older: f64 = self
                .samples
                .iter()
                .take(half)
                .map(|s| s.temperature_c)
                .sum::<f64>()
                / half as f64;
            let newer: f64 = self
                .samples
                .iter()
                .skip(half)
                .map(|s| s.temperature_c)
                .sum::<f64>()
                / (self.window - half) as f64;
            let slope_per_window = newer - older;
            if slope_per_window > 0.0 && newer + 2.0 * slope_per_window > self.temp_limit_c {
                return Health::Degraded(format!(
                    "thermal trend +{slope_per_window:.1} °C/window projects past {:.0} °C",
                    self.temp_limit_c
                ));
            }
        }
        Health::Ok
    }

    /// Point-in-time view of the tracker for export through the
    /// workspace [`Exportable`] pipeline (same JSON/Prometheus path as
    /// serve metrics and runner profiles).
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let latest = self.samples.back();
        TelemetrySnapshot {
            samples: self.samples.len() as u64,
            mean_power_w: self.mean_power_w(),
            power_w: latest.map_or(0.0, |s| s.power_w),
            temperature_c: latest.map_or(0.0, |s| s.temperature_c),
            utilization: latest.map_or(0.0, |s| s.utilization),
            healthy: self.health().is_ok(),
        }
    }
}

/// Exportable view of one node's recent telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Samples retained in the rolling window.
    pub samples: u64,
    /// Mean power over the window in watts.
    pub mean_power_w: f64,
    /// Latest power draw in watts (0 when no samples).
    pub power_w: f64,
    /// Latest module temperature in °C (0 when no samples).
    pub temperature_c: f64,
    /// Latest compute utilization in `[0, 1]` (0 when no samples).
    pub utilization: f64,
    /// Whether [`NodeTelemetry::health`] reported [`Health::Ok`].
    pub healthy: bool,
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "telemetry: {} samples, {:.1} W mean ({:.1} W now), {:.1} °C, {:.0}% util, {}",
            self.samples,
            self.mean_power_w,
            self.power_w,
            self.temperature_c,
            self.utilization * 100.0,
            if self.healthy { "healthy" } else { "degraded" }
        )
    }
}

impl Exportable for TelemetrySnapshot {
    fn export(&self) -> Export {
        let gauge = |name: &str, help: &str, value: f64| Metric::gauge(name, help, value);
        Export {
            subsystem: "recs".into(),
            metrics: vec![
                Metric::counter(
                    "samples",
                    "telemetry samples retained in the window",
                    self.samples,
                ),
                gauge(
                    "mean_power_w",
                    "mean power over the window in watts",
                    self.mean_power_w,
                ),
                gauge("power_w", "latest power draw in watts", self.power_w),
                gauge(
                    "temperature_c",
                    "latest module temperature in celsius",
                    self.temperature_c,
                ),
                gauge(
                    "utilization",
                    "latest compute utilization in [0,1]",
                    self.utilization,
                ),
                gauge(
                    "healthy",
                    "1 when health checks pass, 0 when degraded",
                    if self.healthy { 1.0 } else { 0.0 },
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: u64, power: f64, temp: f64) -> Sample {
        Sample {
            tick,
            power_w: power,
            temperature_c: temp,
            utilization: 0.5,
        }
    }

    #[test]
    fn steady_operation_is_healthy() {
        let mut t = NodeTelemetry::new(15.0, 85.0, 16);
        for i in 0..32 {
            t.record(sample(i, 8.0, 60.0));
        }
        assert!(t.health().is_ok());
        assert_eq!(t.len(), 16);
        assert!((t.mean_power_w() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn hard_limits_flag_immediately() {
        let mut t = NodeTelemetry::new(15.0, 85.0, 16);
        t.record(sample(0, 16.5, 60.0));
        assert!(matches!(t.health(), Health::Degraded(msg) if msg.contains("power")));
        let mut t = NodeTelemetry::new(15.0, 85.0, 16);
        t.record(sample(0, 8.0, 90.0));
        assert!(matches!(t.health(), Health::Degraded(msg) if msg.contains("temperature")));
    }

    #[test]
    fn thermal_trend_flags_before_the_limit() {
        let mut t = NodeTelemetry::new(15.0, 85.0, 16);
        // Climb 1 °C per sample from 60: still below 85 at sample 16,
        // but the trend projects past the limit.
        for i in 0..16 {
            t.record(sample(i, 8.0, 60.0 + i as f64));
        }
        let health = t.health();
        assert!(
            matches!(&health, Health::Degraded(msg) if msg.contains("trend")),
            "{health:?}"
        );
    }

    #[test]
    fn cooling_trend_is_not_flagged() {
        let mut t = NodeTelemetry::new(15.0, 85.0, 16);
        for i in 0..16 {
            t.record(sample(i, 8.0, 80.0 - i as f64));
        }
        assert!(t.health().is_ok());
    }

    #[test]
    fn empty_tracker_is_healthy() {
        let t = NodeTelemetry::new(15.0, 85.0, 8);
        assert!(t.is_empty());
        assert!(t.health().is_ok());
        let s = t.snapshot();
        assert_eq!(s.samples, 0);
        assert!(s.healthy);
    }

    #[test]
    fn snapshot_display_is_stable() {
        let mut t = NodeTelemetry::new(15.0, 85.0, 8);
        t.record(sample(0, 8.0, 60.0));
        t.record(sample(1, 10.0, 62.0));
        assert_eq!(
            t.snapshot().to_string(),
            "telemetry: 2 samples, 9.0 W mean (10.0 W now), 62.0 °C, 50% util, healthy"
        );
    }

    #[test]
    fn snapshot_exports_through_the_shared_pipeline() {
        let mut t = NodeTelemetry::new(15.0, 85.0, 8);
        t.record(sample(0, 16.5, 60.0));
        let export = t.snapshot().export();
        assert_eq!(export.subsystem, "recs");
        let json = export.to_json();
        assert_eq!(Export::from_json(&json).unwrap(), export);
        let prom = export.to_prometheus();
        assert!(prom.contains("vedliot_recs_power_w 16.5\n"), "{prom}");
        assert!(prom.contains("vedliot_recs_healthy 0\n"), "{prom}");
    }
}
