//! Mobile network model for car-to-edge offloading.
//!
//! Paper §V-A (PAEB): "Dynamic distributing of sensor data to edge
//! stations is a quite new research topic. It requires quick monitoring
//! of available mobile networks, their speed and latency" — the offload
//! controller in `vedliot-usecases` consumes condition samples produced
//! here. The generator is a bounded random walk between condition
//! classes, reproducing the bursty quality of a drive through cellular
//! coverage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Instantaneous network condition as seen by the on-car modem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkCondition {
    /// Uplink bandwidth in Mbit/s.
    pub uplink_mbps: f64,
    /// Round-trip latency in milliseconds.
    pub rtt_ms: f64,
    /// Packet loss fraction in `[0, 1)`.
    pub loss: f64,
}

impl NetworkCondition {
    /// A good 5G cell.
    #[must_use]
    pub fn good() -> Self {
        NetworkCondition {
            uplink_mbps: 80.0,
            rtt_ms: 12.0,
            loss: 0.001,
        }
    }

    /// A loaded LTE cell.
    #[must_use]
    pub fn fair() -> Self {
        NetworkCondition {
            uplink_mbps: 12.0,
            rtt_ms: 45.0,
            loss: 0.01,
        }
    }

    /// Edge-of-coverage conditions.
    #[must_use]
    pub fn poor() -> Self {
        NetworkCondition {
            uplink_mbps: 1.5,
            rtt_ms: 150.0,
            loss: 0.06,
        }
    }

    /// A fully severed link: the shape a network partition presents to
    /// a device (the fleet rollout simulation stalls downloads on it).
    #[must_use]
    pub fn down() -> Self {
        NetworkCondition {
            uplink_mbps: 0.0,
            rtt_ms: f64::INFINITY,
            loss: 1.0,
        }
    }

    /// Whether the link is unusable: loss ≥ 50% or no uplink bandwidth.
    /// [`upload_ms`](Self::upload_ms) returns `None` exactly when this
    /// holds (property-tested — the fleet partition model depends on
    /// the two never disagreeing).
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.loss >= 0.5 || self.uplink_mbps <= 0.0
    }

    /// Expected time to deliver `bytes` upstream, including loss-driven
    /// retransmissions, in milliseconds. `None` when the link is
    /// unusable (loss ≥ 50%).
    #[must_use]
    pub fn upload_ms(&self, bytes: u64) -> Option<f64> {
        if self.is_down() {
            return None;
        }
        let goodput = self.uplink_mbps * (1.0 - self.loss);
        let serialize_ms = bytes as f64 * 8.0 / (goodput * 1e3);
        Some(self.rtt_ms / 2.0 + serialize_ms)
    }
}

/// A trace of network conditions along a drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTrace {
    /// Condition samples (one per control period).
    pub samples: Vec<NetworkCondition>,
}

impl NetworkTrace {
    /// Generates a bounded-random-walk trace of `len` samples.
    ///
    /// The walk moves through bandwidth/latency space with occasional
    /// coverage drops, seeded deterministically.
    #[must_use]
    pub fn generate(len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bw: f64 = 40.0;
        let mut rtt: f64 = 25.0;
        let mut samples = Vec::with_capacity(len);
        for _ in 0..len {
            // Random walk with reflection at bounds.
            bw = (bw + rng.gen_range(-8.0..8.0)).clamp(0.2, 120.0);
            rtt = (rtt + rng.gen_range(-6.0..6.0)).clamp(8.0, 250.0);
            // 3% chance of a coverage hole for this sample.
            let hole = rng.gen::<f64>() < 0.03;
            samples.push(NetworkCondition {
                uplink_mbps: if hole { 0.05 } else { bw },
                rtt_ms: if hole { 400.0 } else { rtt },
                loss: if hole {
                    0.3
                } else {
                    (rng.gen::<f64>() * 0.02).min(0.02)
                },
            });
        }
        NetworkTrace { samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_time_ordering_matches_quality() {
        let bytes = 500_000; // a compressed camera frame
        let good = NetworkCondition::good().upload_ms(bytes).unwrap();
        let fair = NetworkCondition::fair().upload_ms(bytes).unwrap();
        let poor = NetworkCondition::poor().upload_ms(bytes).unwrap();
        assert!(good < fair && fair < poor, "{good} {fair} {poor}");
    }

    #[test]
    fn dead_link_returns_none() {
        let dead = NetworkCondition {
            uplink_mbps: 1.0,
            rtt_ms: 100.0,
            loss: 0.6,
        };
        assert_eq!(dead.upload_ms(1000), None);
    }

    #[test]
    fn loss_increases_upload_time() {
        let clean = NetworkCondition {
            loss: 0.0,
            ..NetworkCondition::fair()
        };
        let lossy = NetworkCondition {
            loss: 0.2,
            ..NetworkCondition::fair()
        };
        assert!(lossy.upload_ms(1_000_000).unwrap() > clean.upload_ms(1_000_000).unwrap());
    }

    #[test]
    fn trace_is_deterministic_and_bounded() {
        let a = NetworkTrace::generate(500, 42);
        let b = NetworkTrace::generate(500, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for s in &a.samples {
            assert!(s.uplink_mbps >= 0.05 && s.uplink_mbps <= 120.0);
            assert!(s.rtt_ms >= 8.0 && s.rtt_ms <= 400.0);
            assert!((0.0..0.5).contains(&s.loss));
        }
    }

    #[test]
    fn trace_contains_coverage_holes() {
        let trace = NetworkTrace::generate(2_000, 7);
        let holes = trace.samples.iter().filter(|s| s.uplink_mbps < 0.1).count();
        assert!(holes > 10, "expected coverage holes, got {holes}");
        assert!(holes < 300, "holes should be rare, got {holes}");
    }
}
