//! Property-based tests of the platform model: chassis invariants under
//! arbitrary insert/remove sequences, fabric transfer arithmetic, and
//! network-model sanity.

use proptest::prelude::*;
use vedliot_recs::chassis::Chassis;
use vedliot_recs::fabric::{Fabric, LinkKind};
use vedliot_recs::module::standard_microservers;
use vedliot_recs::net::{NetworkCondition, NetworkTrace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any sequence of inserts and removes, the chassis never
    /// exceeds its power budget, never double-occupies a slot, and
    /// used power equals the sum of installed modules.
    #[test]
    fn chassis_invariants_under_random_operations(
        ops in proptest::collection::vec((any::<bool>(), 0usize..4, 0usize..9), 1..40),
    ) {
        let modules = standard_microservers();
        let mut chassis = Chassis::urecs();
        for (insert, slot, module_idx) in ops {
            if insert {
                let _ = chassis.insert(slot, modules[module_idx % modules.len()].clone());
            } else {
                let _ = chassis.remove(slot);
            }
            // Invariants hold after every operation.
            prop_assert!(chassis.used_power_w() <= chassis.power_budget_w() + 1e-9);
            let expected: f64 = chassis
                .populated()
                .iter()
                .map(|(_, m)| m.peak_power_w())
                .sum();
            prop_assert!((chassis.used_power_w() - expected).abs() < 1e-9);
            prop_assert!(chassis.populated().len() <= chassis.slot_count());
        }
    }

    /// Fabric transfer time is monotone in payload size and strictly
    /// ordered by link speed.
    #[test]
    fn fabric_transfer_monotonicity(bytes_a in 1u64..1_000_000, bytes_b in 1u64..1_000_000) {
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        for kind in [LinkKind::Eth1G, LinkKind::Eth10G, LinkKind::HighSpeed] {
            let fabric = Fabric::full_mesh(2, kind);
            let t_small = fabric.transfer_us(0, 1, small).unwrap();
            let t_large = fabric.transfer_us(0, 1, large).unwrap();
            prop_assert!(t_large >= t_small);
        }
        let slow = Fabric::full_mesh(2, LinkKind::Eth1G).transfer_us(0, 1, large).unwrap();
        let fast = Fabric::full_mesh(2, LinkKind::Eth10G).transfer_us(0, 1, large).unwrap();
        prop_assert!(fast < slow);
    }

    /// Routing never beats the best physical link and never reports a
    /// route on a disconnected pair.
    #[test]
    fn routing_is_sound(bytes in 1u64..100_000) {
        let fabric = Fabric::star(5, 0, LinkKind::Eth10G);
        // Direct spoke transfer is one hop; spoke-to-spoke is exactly two.
        let one_hop = fabric.transfer_us(0, 1, bytes).unwrap();
        let two_hop = fabric.route_us(1, 2, bytes, 5).unwrap();
        prop_assert!(two_hop >= one_hop * 2.0 - 1e-9);
        prop_assert!(fabric.route_us(1, 2, bytes, 3).is_some());
    }

    /// Upload time decreases with bandwidth and increases with loss and
    /// payload, for any condition in the generator's range.
    #[test]
    fn network_upload_monotonicity(
        bw in 0.2f64..120.0,
        rtt in 8.0f64..250.0,
        loss in 0.0f64..0.4,
        bytes in 1_000u64..1_000_000,
    ) {
        let base = NetworkCondition { uplink_mbps: bw, rtt_ms: rtt, loss };
        let t = base.upload_ms(bytes).expect("usable link");
        let faster = NetworkCondition { uplink_mbps: bw * 2.0, ..base };
        prop_assert!(faster.upload_ms(bytes).unwrap() <= t);
        let lossier = NetworkCondition { loss: (loss + 0.05).min(0.45), ..base };
        prop_assert!(lossier.upload_ms(bytes).unwrap() >= t);
        prop_assert!(base.upload_ms(bytes * 2).unwrap() >= t);
    }

    /// `NetworkTrace::generate` is a pure function of (len, seed): the
    /// same seed replays the identical trace, a different seed diverges
    /// (for any non-trivial length). The fleet rollout simulation keys
    /// per-device link behaviour off this determinism.
    #[test]
    fn trace_generation_is_seed_deterministic(
        len in 1usize..600,
        seed in any::<u64>(),
    ) {
        let a = NetworkTrace::generate(len, seed);
        let b = NetworkTrace::generate(len, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
        // A different seed produces a different walk. A 1-sample trace
        // can collide by chance on the quantized fields, so require a
        // few samples before asserting divergence.
        if len >= 8 {
            let c = NetworkTrace::generate(len, seed.wrapping_add(1));
            prop_assert_ne!(&a, &c);
        }
    }

    /// `upload_ms` returns `None` exactly when the link is down
    /// (`is_down`): loss ≥ 0.5 or no uplink bandwidth. The fleet
    /// partition model stalls chunk transfers on `is_down`, so the two
    /// predicates must never disagree — including at the boundaries.
    #[test]
    fn upload_none_iff_link_down(
        bw in -1.0f64..150.0,
        rtt in 1.0f64..500.0,
        loss in 0.0f64..1.0,
        bytes in 1u64..1_000_000,
    ) {
        let cond = NetworkCondition { uplink_mbps: bw, rtt_ms: rtt, loss };
        prop_assert_eq!(cond.upload_ms(bytes).is_none(), cond.is_down());
        // Boundary pins: exactly 0.5 loss and exactly zero bandwidth
        // are both down.
        let half = NetworkCondition { uplink_mbps: 10.0, rtt_ms: rtt, loss: 0.5 };
        prop_assert!(half.is_down() && half.upload_ms(bytes).is_none());
        let dry = NetworkCondition { uplink_mbps: 0.0, rtt_ms: rtt, loss: 0.0 };
        prop_assert!(dry.is_down() && dry.upload_ms(bytes).is_none());
        // Every sample the generator emits is usable-or-down, never NaN.
        prop_assert!(NetworkCondition::down().is_down());
        prop_assert_eq!(NetworkCondition::down().upload_ms(bytes), None);
    }
}
