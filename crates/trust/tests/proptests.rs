//! Property-based tests for the trust substrates: hashing, sealing,
//! attestation and the WASM-like VM.

use proptest::prelude::*;
use vedliot_trust::attestation::{attest, RootOfTrust, Verifier};
use vedliot_trust::enclave::{verify_quote, Enclave, EnclaveConfig};
use vedliot_trust::hash::{hmac_sha256, sha256};
use vedliot_trust::wasmlite::{Func, Instance, Instr, Module};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SHA-256 is deterministic and avalanche-sensitive to single-byte
    /// changes.
    #[test]
    fn sha256_deterministic_and_sensitive(
        mut data in proptest::collection::vec(any::<u8>(), 1..512),
        flip in any::<usize>(),
    ) {
        let a = sha256(&data);
        prop_assert_eq!(sha256(&data), a);
        let idx = flip % data.len();
        data[idx] ^= 0x01;
        let b = sha256(&data);
        prop_assert_ne!(a, b);
        // Avalanche: a one-bit flip changes many output bits.
        let differing: u32 = a.iter().zip(b.iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
        prop_assert!(differing > 64, "only {differing} bits changed");
    }

    /// HMAC keys separate cleanly.
    #[test]
    fn hmac_key_separation(
        key_a in proptest::collection::vec(any::<u8>(), 1..64),
        key_b in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(key_a != key_b);
        prop_assert_ne!(hmac_sha256(&key_a, &msg), hmac_sha256(&key_b, &msg));
    }

    /// Sealing round-trips arbitrary data for the same enclave and fails
    /// closed for a different one.
    #[test]
    fn seal_unseal_round_trip(
        code in proptest::collection::vec(any::<u8>(), 1..64),
        secret in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let enclave = Enclave::create(&code, EnclaveConfig::default());
        let sealed = enclave.seal(&secret);
        prop_assert_eq!(enclave.unseal(&sealed), Some(secret.clone()));
        let mut other_code = code.clone();
        other_code.push(0xFF);
        let other = Enclave::create(&other_code, EnclaveConfig::default());
        prop_assert_eq!(other.unseal(&sealed), None);
    }

    /// Quotes verify for the right measurement and fail for any
    /// tampered byte.
    #[test]
    fn quote_integrity(
        code in proptest::collection::vec(any::<u8>(), 1..64),
        nonce in any::<[u8; 32]>(),
        tamper_byte in 0usize..96,
    ) {
        let enclave = Enclave::create(&code, EnclaveConfig::default());
        let quote = enclave.quote(nonce);
        prop_assert!(verify_quote(&quote, &enclave.measurement()));
        let mut forged = quote.clone();
        match tamper_byte / 32 {
            0 => forged.measurement[tamper_byte % 32] ^= 1,
            1 => forged.report_data[tamper_byte % 32] ^= 1,
            _ => forged.signature[tamper_byte % 32] ^= 1,
        }
        prop_assert!(!verify_quote(&forged, &enclave.measurement()));
    }

    /// Attestation succeeds exactly once per nonce, for any device seed
    /// and measurement.
    #[test]
    fn attestation_nonce_single_use(
        seed in proptest::collection::vec(any::<u8>(), 1..32),
        measurement in any::<[u8; 32]>(),
    ) {
        let rot = RootOfTrust::provision(&seed);
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        verifier.expect_measurement(measurement);
        let nonce = verifier.challenge();
        let report = attest(&rot, measurement, nonce);
        prop_assert!(verifier.verify(&report));
        prop_assert!(!verifier.verify(&report));
    }

    /// Arbitrary arithmetic programs agree between the VM and a direct
    /// Rust evaluation of the same expression tree.
    #[test]
    fn vm_arithmetic_matches_rust(
        a in -1_000i32..1_000,
        b in -1_000i32..1_000,
        c in -1_000i32..1_000,
    ) {
        // f(a, b, c) = (a + b) * c - a
        let module = Module {
            funcs: vec![Func {
                params: 3,
                locals: 0,
                returns_value: true,
                body: vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(1),
                    Instr::I32Add,
                    Instr::LocalGet(2),
                    Instr::I32Mul,
                    Instr::LocalGet(0),
                    Instr::I32Sub,
                ],
            }],
            memory_pages: 1,
        };
        let mut vm = Instance::new(module).expect("validates");
        let result = vm.call(0, &[a, b, c]).expect("runs").expect("returns");
        prop_assert_eq!(result, a.wrapping_add(b).wrapping_mul(c).wrapping_sub(a));
    }

    /// Memory stores read back for any in-bounds address/value pair.
    #[test]
    fn vm_memory_round_trip(addr in 0u16..16_000, value in any::<i32>()) {
        let aligned = (addr as i32 / 4) * 4;
        let module = Module {
            funcs: vec![Func {
                params: 2,
                locals: 0,
                returns_value: true,
                body: vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(1),
                    Instr::I32Store(0),
                    Instr::LocalGet(0),
                    Instr::I32Load(0),
                ],
            }],
            memory_pages: 1,
        };
        let mut vm = Instance::new(module).expect("validates");
        let result = vm.call(0, &[aligned, value]).expect("runs");
        prop_assert_eq!(result, Some(value));
    }
}
