//! Host-import (WASI-like boundary) tests for the trusted runtime, and
//! the enclave-ocall composition: a host call from inside an enclaved VM
//! is an ocall.

use vedliot_trust::enclave::{Enclave, EnclaveConfig};
use vedliot_trust::wasmlite::{Func, Instance, Instr, Module, VmError};

fn module_with_hostcall() -> Module {
    // f(x) = host0(x * 2) + 1
    Module {
        funcs: vec![Func {
            params: 1,
            locals: 0,
            returns_value: true,
            body: vec![
                Instr::LocalGet(0),
                Instr::I32Const(2),
                Instr::I32Mul,
                Instr::HostCall(0),
                Instr::I32Const(1),
                Instr::I32Add,
            ],
        }],
        memory_pages: 1,
    }
}

#[test]
fn host_import_round_trip() {
    let mut vm = Instance::new(module_with_hostcall()).unwrap();
    let idx = vm.register_host(|x| x + 100);
    assert_eq!(idx, 0);
    // f(5) = host(10) + 1 = 111.
    assert_eq!(vm.call(0, &[5]).unwrap(), Some(111));
}

#[test]
fn missing_host_import_traps() {
    let mut vm = Instance::new(module_with_hostcall()).unwrap();
    assert_eq!(vm.call(0, &[5]), Err(VmError::UnknownHostCall(0)));
}

#[test]
fn host_state_accumulates_across_calls() {
    let mut vm = Instance::new(module_with_hostcall()).unwrap();
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let log2 = log.clone();
    vm.register_host(move |x| {
        log2.borrow_mut().push(x);
        x
    });
    vm.call(0, &[1]).unwrap();
    vm.call(0, &[2]).unwrap();
    assert_eq!(*log.borrow(), vec![2, 4]);
}

#[test]
fn hostcall_inside_enclave_is_an_ocall() {
    // The Twine shape: the VM runs inside the enclave; every host call
    // crosses the boundary and is charged as an ocall.
    let mut vm = Instance::new(module_with_hostcall()).unwrap();
    let enclave = std::rc::Rc::new(std::cell::RefCell::new(Enclave::create(
        b"twine-runtime",
        EnclaveConfig::default(),
    )));
    let handle = enclave.clone();
    vm.register_host(move |x| handle.borrow_mut().ocall(|| x * 10));
    let result = vm.call(0, &[3]).unwrap();
    assert_eq!(result, Some(61)); // host(6) = 60, +1
    assert_eq!(enclave.borrow().stats().ocalls, 1);
    assert!(enclave.borrow().stats().overhead_cycles > 0);
}
