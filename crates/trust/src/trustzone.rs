//! ARM TrustZone / OP-TEE world model.
//!
//! Paper §IV-C: "TrustZone splits the operating system into two parts:
//! the normal and secure worlds. Trusted applications can only run in the
//! secure world, and the operation necessary to change context between
//! worlds is rather complex and cannot be done at user-level. To
//! implement remote attestation for WebAssembly code running in ARM
//! processors, a TEE specification defining how the trusted environment
//! behaves and how the normal world can interact with the secure world is
//! realized."
//!
//! The model enforces exactly those rules: trusted applications (TAs)
//! register only in the secure world, the normal world reaches them only
//! through SMC world switches performed by the kernel interface (never
//! "at user-level"), and every switch has a cost.

use crate::hash::sha256;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Which world the core currently executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum World {
    /// The rich OS (normal world).
    Normal,
    /// The trusted OS (secure world).
    Secure,
}

/// Privilege level of the caller issuing a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallerLevel {
    /// User-space application.
    User,
    /// Kernel (EL1) — the only level allowed to issue SMC calls.
    Kernel,
}

/// TrustZone error conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TzError {
    /// A user-level caller attempted a world switch.
    SmcFromUserLevel,
    /// The requested trusted application does not exist.
    UnknownTa(String),
    /// A TA operation was attempted from the normal world.
    WrongWorld,
    /// The session id is not open.
    UnknownSession(u32),
}

impl fmt::Display for TzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TzError::SmcFromUserLevel => {
                write!(f, "world switch cannot be performed at user level")
            }
            TzError::UnknownTa(name) => write!(f, "unknown trusted application '{name}'"),
            TzError::WrongWorld => write!(f, "operation requires the secure world"),
            TzError::UnknownSession(id) => write!(f, "unknown session {id}"),
        }
    }
}

impl std::error::Error for TzError {}

/// Handler signature of a trusted application: request bytes in,
/// response bytes out.
pub type TaHandler = Box<dyn FnMut(&[u8]) -> Vec<u8>>;

/// A trusted application installed in the secure world.
pub struct TrustedApp {
    /// TA name (UUID equivalent).
    pub name: String,
    /// Measurement of the TA binary.
    pub measurement: [u8; 32],
    handler: TaHandler,
}

impl fmt::Debug for TrustedApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrustedApp")
            .field("name", &self.name)
            .finish()
    }
}

/// The TrustZone SoC model: world state, installed TAs, open sessions
/// and switch accounting.
pub struct TrustZone {
    world: World,
    tas: HashMap<String, TrustedApp>,
    sessions: HashMap<u32, String>,
    next_session: u32,
    /// Number of SMC world switches performed.
    pub world_switches: u64,
    /// Cost per switch in nanoseconds (≈ 3–10 µs on real parts).
    pub switch_cost_ns: u64,
}

impl fmt::Debug for TrustZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrustZone")
            .field("world", &self.world)
            .field("tas", &self.tas.keys().collect::<Vec<_>>())
            .field("world_switches", &self.world_switches)
            .finish()
    }
}

impl Default for TrustZone {
    fn default() -> Self {
        TrustZone::new()
    }
}

impl TrustZone {
    /// Boots in the secure world (TrustZone boots secure-first).
    #[must_use]
    pub fn new() -> Self {
        TrustZone {
            world: World::Secure,
            tas: HashMap::new(),
            sessions: HashMap::new(),
            next_session: 1,
            world_switches: 0,
            switch_cost_ns: 5_000,
        }
    }

    /// Current world.
    #[must_use]
    pub fn world(&self) -> World {
        self.world
    }

    /// Total simulated switch overhead in nanoseconds.
    #[must_use]
    pub fn switch_overhead_ns(&self) -> u64 {
        self.world_switches * self.switch_cost_ns
    }

    /// Installs a trusted application. Only possible while in the secure
    /// world (i.e. during secure boot / trusted OS runtime).
    ///
    /// # Errors
    ///
    /// Returns [`TzError::WrongWorld`] from the normal world.
    pub fn install_ta(
        &mut self,
        name: impl Into<String>,
        binary: &[u8],
        handler: impl FnMut(&[u8]) -> Vec<u8> + 'static,
    ) -> Result<(), TzError> {
        if self.world != World::Secure {
            return Err(TzError::WrongWorld);
        }
        let name = name.into();
        self.tas.insert(
            name.clone(),
            TrustedApp {
                name,
                measurement: sha256(binary),
                handler: Box::new(handler),
            },
        );
        Ok(())
    }

    /// Hands control to the normal world (end of secure boot).
    pub fn enter_normal_world(&mut self) {
        if self.world == World::Secure {
            self.world = World::Normal;
            self.world_switches += 1;
        }
    }

    /// SMC call: the normal-world *kernel* switches to the secure world,
    /// runs `f`, and switches back. User-level callers are rejected —
    /// the context change "cannot be done at user-level".
    ///
    /// # Errors
    ///
    /// Returns [`TzError::SmcFromUserLevel`] for user-level callers.
    pub fn smc<R>(
        &mut self,
        caller: CallerLevel,
        f: impl FnOnce(&mut SecureContext<'_>) -> Result<R, TzError>,
    ) -> Result<R, TzError> {
        if caller != CallerLevel::Kernel {
            return Err(TzError::SmcFromUserLevel);
        }
        let entered_from = self.world;
        self.world = World::Secure;
        self.world_switches += 1;
        let result = f(&mut SecureContext { tz: self });
        self.world = entered_from;
        self.world_switches += 1;
        result
    }

    /// Opens a session to a TA through an SMC round trip (the GlobalP-
    /// latform `TEEC_OpenSession` shape).
    ///
    /// # Errors
    ///
    /// Propagates SMC and TA-lookup failures.
    pub fn open_session(&mut self, caller: CallerLevel, ta: &str) -> Result<u32, TzError> {
        let ta = ta.to_string();
        self.smc(caller, |ctx| {
            if !ctx.tz.tas.contains_key(&ta) {
                return Err(TzError::UnknownTa(ta.clone()));
            }
            let id = ctx.tz.next_session;
            ctx.tz.next_session += 1;
            ctx.tz.sessions.insert(id, ta.clone());
            Ok(id)
        })
    }

    /// Invokes a command on an open session (`TEEC_InvokeCommand`).
    ///
    /// # Errors
    ///
    /// Propagates SMC and session failures.
    pub fn invoke(
        &mut self,
        caller: CallerLevel,
        session: u32,
        payload: &[u8],
    ) -> Result<Vec<u8>, TzError> {
        let payload = payload.to_vec();
        self.smc(caller, |ctx| {
            let ta_name = ctx
                .tz
                .sessions
                .get(&session)
                .cloned()
                .ok_or(TzError::UnknownSession(session))?;
            let ta = ctx
                .tz
                .tas
                .get_mut(&ta_name)
                .ok_or_else(|| TzError::UnknownTa(ta_name.clone()))?;
            Ok((ta.handler)(&payload))
        })
    }

    /// Measurement of an installed TA (for attestation), readable from
    /// the secure world only.
    ///
    /// # Errors
    ///
    /// Returns [`TzError::WrongWorld`] from the normal world or
    /// [`TzError::UnknownTa`] for a missing TA.
    pub fn ta_measurement(&self, name: &str) -> Result<[u8; 32], TzError> {
        if self.world != World::Secure {
            return Err(TzError::WrongWorld);
        }
        self.tas
            .get(name)
            .map(|ta| ta.measurement)
            .ok_or_else(|| TzError::UnknownTa(name.into()))
    }
}

/// Execution context handed to code running inside an SMC call.
pub struct SecureContext<'a> {
    tz: &'a mut TrustZone,
}

impl SecureContext<'_> {
    /// Measurement of an installed TA (secure world is implied here).
    ///
    /// # Errors
    ///
    /// Returns [`TzError::UnknownTa`] for a missing TA.
    pub fn ta_measurement(&self, name: &str) -> Result<[u8; 32], TzError> {
        self.tz
            .tas
            .get(name)
            .map(|ta| ta.measurement)
            .ok_or_else(|| TzError::UnknownTa(name.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted() -> TrustZone {
        let mut tz = TrustZone::new();
        tz.install_ta("echo", b"echo-v1", |input| {
            let mut out = input.to_vec();
            out.reverse();
            out
        })
        .unwrap();
        tz.enter_normal_world();
        tz
    }

    #[test]
    fn boots_secure_installs_then_enters_normal() {
        let tz = booted();
        assert_eq!(tz.world(), World::Normal);
    }

    #[test]
    fn ta_install_fails_from_normal_world() {
        let mut tz = booted();
        let result = tz.install_ta("late", b"x", |_| Vec::new());
        assert_eq!(result, Err(TzError::WrongWorld));
    }

    #[test]
    fn user_level_cannot_switch_worlds() {
        let mut tz = booted();
        let result = tz.open_session(CallerLevel::User, "echo");
        assert_eq!(result, Err(TzError::SmcFromUserLevel));
    }

    #[test]
    fn kernel_session_and_invoke_round_trip() {
        let mut tz = booted();
        let session = tz.open_session(CallerLevel::Kernel, "echo").unwrap();
        let out = tz.invoke(CallerLevel::Kernel, session, b"abc").unwrap();
        assert_eq!(out, b"cba");
        // Each operation cost a pair of world switches.
        assert!(tz.world_switches >= 4);
        assert!(tz.switch_overhead_ns() > 0);
        // The world is back to normal after the call.
        assert_eq!(tz.world(), World::Normal);
    }

    #[test]
    fn unknown_ta_and_session_are_rejected() {
        let mut tz = booted();
        assert!(matches!(
            tz.open_session(CallerLevel::Kernel, "ghost"),
            Err(TzError::UnknownTa(_))
        ));
        assert!(matches!(
            tz.invoke(CallerLevel::Kernel, 777, b""),
            Err(TzError::UnknownSession(777))
        ));
    }

    #[test]
    fn measurement_only_readable_in_secure_world() {
        let mut tz = booted();
        assert_eq!(tz.ta_measurement("echo"), Err(TzError::WrongWorld));
        let m = tz
            .smc(CallerLevel::Kernel, |ctx| ctx.ta_measurement("echo"))
            .unwrap();
        assert_eq!(m, sha256(b"echo-v1"));
    }
}
