//! A validated, interpreted WebAssembly-like stack VM.
//!
//! Paper §IV-C: VEDLIoT uses "an open-source WebAssembly runtime
//! implementation to build a trusted runtime environment without dealing
//! with language-specific APIs". This module is that runtime's
//! functional core: structured control flow, a typed operand stack,
//! linear memory with bounds-checked access, and a validator that rejects
//! malformed modules before execution — the properties that make Wasm a
//! safe container for code inside an enclave.
//!
//! The instruction set is the i32 subset sufficient for the KV-store
//! workload ([`crate::kvdb`]); executed-instruction counts serve as the
//! interpreter-overhead metric in the Twine experiment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Linear-memory page size (64 KiB, as in WebAssembly).
pub const PAGE_SIZE: usize = 64 * 1024;

/// VM instruction (i32 subset with structured control flow).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Push a constant.
    I32Const(i32),
    /// Push local `n`.
    LocalGet(u32),
    /// Pop into local `n`.
    LocalSet(u32),
    /// Store top of stack into local `n` without popping.
    LocalTee(u32),
    /// Arithmetic / bitwise (pop 2, push 1).
    I32Add,
    /// Subtraction.
    I32Sub,
    /// Multiplication (wrapping).
    I32Mul,
    /// Signed division (traps on divide-by-zero / overflow).
    I32DivS,
    /// Signed remainder (traps on divide-by-zero).
    I32RemS,
    /// Bitwise and.
    I32And,
    /// Bitwise or.
    I32Or,
    /// Bitwise xor.
    I32Xor,
    /// Shift left.
    I32Shl,
    /// Arithmetic shift right.
    I32ShrS,
    /// Comparison: top == 0.
    I32Eqz,
    /// Equality.
    I32Eq,
    /// Inequality.
    I32Ne,
    /// Signed less-than.
    I32LtS,
    /// Signed greater-than.
    I32GtS,
    /// Signed less-or-equal.
    I32LeS,
    /// Signed greater-or-equal.
    I32GeS,
    /// Load i32 at `addr + offset`.
    I32Load(u32),
    /// Store i32 at `addr + offset`.
    I32Store(u32),
    /// Load one byte zero-extended.
    I32Load8U(u32),
    /// Store low byte.
    I32Store8(u32),
    /// Structured block (branch target at its end).
    Block(Vec<Instr>),
    /// Structured loop (branch target at its start).
    Loop(Vec<Instr>),
    /// Two-armed conditional.
    If(Vec<Instr>, Vec<Instr>),
    /// Unconditional branch to enclosing block/loop at depth `n`.
    Br(u32),
    /// Conditional branch.
    BrIf(u32),
    /// Call function `n`.
    Call(u32),
    /// Call host import `n` (pops one i32 argument, pushes one i32
    /// result) — the WASI-like system interface boundary. Inside an
    /// enclave each host call is an ocall.
    HostCall(u32),
    /// Return from the current function.
    Return,
    /// Pop and discard.
    Drop,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Func {
    /// Number of i32 parameters.
    pub params: u32,
    /// Number of additional i32 locals (zero-initialized).
    pub locals: u32,
    /// Whether the function returns one i32.
    pub returns_value: bool,
    /// Body instructions.
    pub body: Vec<Instr>,
}

/// A module: functions plus a linear memory size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Function definitions (index = call target).
    pub funcs: Vec<Func>,
    /// Linear memory size in pages.
    pub memory_pages: u32,
}

/// Validation or execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Static validation failed.
    Validation(String),
    /// Out-of-bounds memory access at the given address.
    MemoryOutOfBounds(u32),
    /// Integer divide by zero (or INT_MIN / -1).
    DivideByZero,
    /// The fuel budget was exhausted.
    OutOfFuel,
    /// Call stack exceeded the depth limit.
    StackOverflow,
    /// Unknown function index at runtime (prevented by validation).
    UnknownFunction(u32),
    /// A host import was called but none is registered at that index.
    UnknownHostCall(u32),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Validation(m) => write!(f, "validation error: {m}"),
            VmError::MemoryOutOfBounds(a) => write!(f, "memory access out of bounds at {a:#x}"),
            VmError::DivideByZero => write!(f, "integer divide by zero"),
            VmError::OutOfFuel => write!(f, "fuel exhausted"),
            VmError::StackOverflow => write!(f, "call stack overflow"),
            VmError::UnknownFunction(i) => write!(f, "unknown function {i}"),
            VmError::UnknownHostCall(i) => write!(f, "unknown host import {i}"),
        }
    }
}

impl std::error::Error for VmError {}

impl Module {
    /// Validates the module: local/function indices in range, branch
    /// depths valid, operand-stack discipline respected in every block.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Validation`] describing the first violation.
    pub fn validate(&self) -> Result<(), VmError> {
        for (fi, func) in self.funcs.iter().enumerate() {
            let locals = func.params + func.locals;
            let final_depth = validate_seq(&func.body, locals, self, 0)
                .map_err(|m| VmError::Validation(format!("function {fi}: {m}")))?;
            if func.returns_value && final_depth != Some(1) && final_depth.is_some() {
                return Err(VmError::Validation(format!(
                    "function {fi}: must leave exactly 1 value, leaves {final_depth:?}"
                )));
            }
        }
        Ok(())
    }
}

/// Validates a sequence; returns the resulting stack depth, or `None`
/// when the tail is unreachable (after an unconditional branch/return).
fn validate_seq(
    body: &[Instr],
    locals: u32,
    module: &Module,
    block_depth: u32,
) -> Result<Option<usize>, String> {
    let mut depth: Option<usize> = Some(0);
    for instr in body {
        let Some(d) = depth else {
            // Unreachable code: skip checking (wasm does this with
            // polymorphic typing; skipping is the conservative subset).
            continue;
        };
        let need = |n: usize| -> Result<(), String> {
            if d < n {
                Err(format!("stack underflow at {instr:?}"))
            } else {
                Ok(())
            }
        };
        let local_ok = |i: u32| -> Result<(), String> {
            if i >= locals {
                Err(format!("local {i} out of range"))
            } else {
                Ok(())
            }
        };
        depth = match instr {
            Instr::I32Const(_) => Some(d + 1),
            Instr::LocalGet(i) => {
                local_ok(*i)?;
                Some(d + 1)
            }
            Instr::LocalSet(i) => {
                local_ok(*i)?;
                need(1)?;
                Some(d - 1)
            }
            Instr::LocalTee(i) => {
                local_ok(*i)?;
                need(1)?;
                Some(d)
            }
            Instr::I32Add
            | Instr::I32Sub
            | Instr::I32Mul
            | Instr::I32DivS
            | Instr::I32RemS
            | Instr::I32And
            | Instr::I32Or
            | Instr::I32Xor
            | Instr::I32Shl
            | Instr::I32ShrS
            | Instr::I32Eq
            | Instr::I32Ne
            | Instr::I32LtS
            | Instr::I32GtS
            | Instr::I32LeS
            | Instr::I32GeS => {
                need(2)?;
                Some(d - 1)
            }
            Instr::I32Eqz => {
                need(1)?;
                Some(d)
            }
            Instr::I32Load(_) | Instr::I32Load8U(_) => {
                need(1)?;
                Some(d)
            }
            Instr::I32Store(_) | Instr::I32Store8(_) => {
                need(2)?;
                Some(d - 2)
            }
            Instr::Drop => {
                need(1)?;
                Some(d - 1)
            }
            Instr::Block(inner) | Instr::Loop(inner) => {
                validate_seq(inner, locals, module, block_depth + 1)?;
                Some(d)
            }
            Instr::If(then_b, else_b) => {
                need(1)?;
                validate_seq(then_b, locals, module, block_depth + 1)?;
                validate_seq(else_b, locals, module, block_depth + 1)?;
                Some(d - 1)
            }
            Instr::Br(n) => {
                if *n >= block_depth {
                    return Err(format!("branch depth {n} exceeds nesting {block_depth}"));
                }
                None
            }
            Instr::BrIf(n) => {
                if *n >= block_depth {
                    return Err(format!("branch depth {n} exceeds nesting {block_depth}"));
                }
                need(1)?;
                Some(d - 1)
            }
            Instr::Call(i) => {
                let callee = module
                    .funcs
                    .get(*i as usize)
                    .ok_or(format!("call to unknown function {i}"))?;
                need(callee.params as usize)?;
                Some(d - callee.params as usize + usize::from(callee.returns_value))
            }
            Instr::HostCall(_) => {
                need(1)?;
                Some(d)
            }
            Instr::Return => None,
        };
    }
    Ok(depth)
}

/// Control-flow signal inside the interpreter.
enum Flow {
    Normal,
    Branch(u32),
    Return,
}

/// A VM instance: module + linear memory + fuel + host imports.
pub struct Instance {
    module: Module,
    memory: Vec<u8>,
    /// Executed-instruction counter (the interpreter-overhead metric).
    pub instructions: u64,
    fuel_limit: u64,
    host_imports: Vec<Box<dyn FnMut(i32) -> i32>>,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("memory_bytes", &self.memory.len())
            .field("instructions", &self.instructions)
            .field("host_imports", &self.host_imports.len())
            .finish()
    }
}

impl Instance {
    /// Instantiates a validated module.
    ///
    /// # Errors
    ///
    /// Returns the validation error if the module is malformed.
    pub fn new(module: Module) -> Result<Self, VmError> {
        module.validate()?;
        let memory = vec![0; module.memory_pages as usize * PAGE_SIZE];
        Ok(Instance {
            module,
            memory,
            instructions: 0,
            fuel_limit: u64::MAX,
            host_imports: Vec::new(),
        })
    }

    /// Registers a host import at the next free index and returns that
    /// index. Host imports take one i32 and return one i32 (the
    /// WASI-like boundary; richer signatures marshal through linear
    /// memory).
    pub fn register_host(&mut self, f: impl FnMut(i32) -> i32 + 'static) -> u32 {
        self.host_imports.push(Box::new(f));
        (self.host_imports.len() - 1) as u32
    }

    /// Sets an executed-instruction budget (defense against runaway
    /// payloads inside the trusted runtime).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel_limit = fuel;
    }

    /// Raw view of linear memory.
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    /// Calls function `index` with i32 arguments, returning its result
    /// (or `None` for a void function).
    ///
    /// # Errors
    ///
    /// Propagates runtime traps ([`VmError`]).
    pub fn call(&mut self, index: u32, args: &[i32]) -> Result<Option<i32>, VmError> {
        self.call_depth(index, args, 0)
    }

    fn call_depth(
        &mut self,
        index: u32,
        args: &[i32],
        depth: usize,
    ) -> Result<Option<i32>, VmError> {
        if depth > 128 {
            return Err(VmError::StackOverflow);
        }
        let func = self
            .module
            .funcs
            .get(index as usize)
            .ok_or(VmError::UnknownFunction(index))?
            .clone();
        let mut locals = vec![0i32; (func.params + func.locals) as usize];
        for (l, &a) in locals.iter_mut().zip(args.iter()) {
            *l = a;
        }
        let mut stack: Vec<i32> = Vec::with_capacity(16);
        self.exec_seq(&func.body, &mut locals, &mut stack, depth)?;
        Ok(if func.returns_value {
            stack.pop()
        } else {
            None
        })
    }

    fn exec_seq(
        &mut self,
        body: &[Instr],
        locals: &mut [i32],
        stack: &mut Vec<i32>,
        depth: usize,
    ) -> Result<Flow, VmError> {
        for instr in body {
            self.instructions += 1;
            if self.instructions > self.fuel_limit {
                return Err(VmError::OutOfFuel);
            }
            macro_rules! pop {
                () => {
                    stack.pop().expect("validated stack")
                };
            }
            macro_rules! binop {
                ($f:expr) => {{
                    let b = pop!();
                    let a = pop!();
                    #[allow(clippy::redundant_closure_call)]
                    stack.push($f(a, b));
                }};
            }
            match instr {
                Instr::I32Const(v) => stack.push(*v),
                Instr::LocalGet(i) => stack.push(locals[*i as usize]),
                Instr::LocalSet(i) => locals[*i as usize] = pop!(),
                Instr::LocalTee(i) => {
                    let Some(&top) = stack.last() else {
                        return Err(VmError::Validation("local.tee on an empty stack".into()));
                    };
                    locals[*i as usize] = top;
                }
                Instr::I32Add => binop!(|a: i32, b: i32| a.wrapping_add(b)),
                Instr::I32Sub => binop!(|a: i32, b: i32| a.wrapping_sub(b)),
                Instr::I32Mul => binop!(|a: i32, b: i32| a.wrapping_mul(b)),
                Instr::I32DivS => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 || (a == i32::MIN && b == -1) {
                        return Err(VmError::DivideByZero);
                    }
                    stack.push(a / b);
                }
                Instr::I32RemS => {
                    let b = pop!();
                    let a = pop!();
                    if b == 0 {
                        return Err(VmError::DivideByZero);
                    }
                    stack.push(a.wrapping_rem(b));
                }
                Instr::I32And => binop!(|a: i32, b: i32| a & b),
                Instr::I32Or => binop!(|a: i32, b: i32| a | b),
                Instr::I32Xor => binop!(|a: i32, b: i32| a ^ b),
                Instr::I32Shl => binop!(|a: i32, b: i32| a.wrapping_shl(b as u32)),
                Instr::I32ShrS => binop!(|a: i32, b: i32| a.wrapping_shr(b as u32)),
                Instr::I32Eqz => {
                    let a = pop!();
                    stack.push((a == 0) as i32);
                }
                Instr::I32Eq => binop!(|a: i32, b: i32| (a == b) as i32),
                Instr::I32Ne => binop!(|a: i32, b: i32| (a != b) as i32),
                Instr::I32LtS => binop!(|a: i32, b: i32| (a < b) as i32),
                Instr::I32GtS => binop!(|a: i32, b: i32| (a > b) as i32),
                Instr::I32LeS => binop!(|a: i32, b: i32| (a <= b) as i32),
                Instr::I32GeS => binop!(|a: i32, b: i32| (a >= b) as i32),
                Instr::I32Load(off) => {
                    let addr = pop!() as u32 as usize + *off as usize;
                    let bytes = self
                        .memory
                        .get(addr..addr + 4)
                        .ok_or(VmError::MemoryOutOfBounds(addr as u32))?;
                    stack.push(i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]));
                }
                Instr::I32Store(off) => {
                    let value = pop!();
                    let addr = pop!() as u32 as usize + *off as usize;
                    let slot = self
                        .memory
                        .get_mut(addr..addr + 4)
                        .ok_or(VmError::MemoryOutOfBounds(addr as u32))?;
                    slot.copy_from_slice(&value.to_le_bytes());
                }
                Instr::I32Load8U(off) => {
                    let addr = pop!() as u32 as usize + *off as usize;
                    let byte = *self
                        .memory
                        .get(addr)
                        .ok_or(VmError::MemoryOutOfBounds(addr as u32))?;
                    stack.push(byte as i32);
                }
                Instr::I32Store8(off) => {
                    let value = pop!();
                    let addr = pop!() as u32 as usize + *off as usize;
                    let slot = self
                        .memory
                        .get_mut(addr)
                        .ok_or(VmError::MemoryOutOfBounds(addr as u32))?;
                    *slot = value as u8;
                }
                Instr::Drop => {
                    pop!();
                }
                Instr::Block(inner) => match self.exec_seq(inner, locals, stack, depth)? {
                    Flow::Branch(0) => {}
                    Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                    Flow::Return => return Ok(Flow::Return),
                    Flow::Normal => {}
                },
                Instr::Loop(inner) => loop {
                    match self.exec_seq(inner, locals, stack, depth)? {
                        Flow::Branch(0) => continue, // br to loop start
                        Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => break,
                    }
                },
                Instr::If(then_b, else_b) => {
                    let cond = pop!();
                    let arm = if cond != 0 { then_b } else { else_b };
                    match self.exec_seq(arm, locals, stack, depth)? {
                        Flow::Branch(0) => {}
                        Flow::Branch(n) => return Ok(Flow::Branch(n - 1)),
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal => {}
                    }
                }
                Instr::Br(n) => return Ok(Flow::Branch(*n)),
                Instr::BrIf(n) => {
                    if pop!() != 0 {
                        return Ok(Flow::Branch(*n));
                    }
                }
                Instr::Call(i) => {
                    let callee = self
                        .module
                        .funcs
                        .get(*i as usize)
                        .ok_or(VmError::UnknownFunction(*i))?;
                    let params = callee.params as usize;
                    let returns = callee.returns_value;
                    let args: Vec<i32> = stack.split_off(stack.len() - params);
                    let result = self.call_depth(*i, &args, depth + 1)?;
                    if returns {
                        stack.push(result.ok_or_else(|| {
                            VmError::Validation("void call used as a value".into())
                        })?);
                    }
                }
                Instr::HostCall(i) => {
                    let arg = pop!();
                    let handler = self
                        .host_imports
                        .get_mut(*i as usize)
                        .ok_or(VmError::UnknownHostCall(*i))?;
                    stack.push(handler(arg));
                }
                Instr::Return => return Ok(Flow::Return),
            }
        }
        Ok(Flow::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Instr::*;

    fn module_of(func: Func) -> Module {
        Module {
            funcs: vec![func],
            memory_pages: 1,
        }
    }

    #[test]
    fn arithmetic_function() {
        // f(a, b) = (a + b) * 2
        let m = module_of(Func {
            params: 2,
            locals: 0,
            returns_value: true,
            body: vec![LocalGet(0), LocalGet(1), I32Add, I32Const(2), I32Mul],
        });
        let mut vm = Instance::new(m).unwrap();
        assert_eq!(vm.call(0, &[3, 4]).unwrap(), Some(14));
    }

    #[test]
    fn loop_with_branch_computes_sum() {
        // sum 1..=n using local 1 as accumulator.
        let m = module_of(Func {
            params: 1,
            locals: 1,
            returns_value: true,
            body: vec![
                Block(vec![Loop(vec![
                    LocalGet(0),
                    I32Eqz,
                    BrIf(1), // exit the block when n == 0
                    LocalGet(1),
                    LocalGet(0),
                    I32Add,
                    LocalSet(1),
                    LocalGet(0),
                    I32Const(1),
                    I32Sub,
                    LocalSet(0),
                    Br(0), // continue loop
                ])]),
                LocalGet(1),
            ],
        });
        let mut vm = Instance::new(m).unwrap();
        assert_eq!(vm.call(0, &[10]).unwrap(), Some(55));
        assert!(vm.instructions > 10 * 10);
    }

    #[test]
    fn memory_load_store() {
        let m = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: true,
            body: vec![
                I32Const(16),
                I32Const(0x1234),
                I32Store(0),
                I32Const(16),
                I32Load(0),
            ],
        });
        let mut vm = Instance::new(m).unwrap();
        assert_eq!(vm.call(0, &[]).unwrap(), Some(0x1234));
        assert_eq!(&vm.memory()[16..18], &[0x34, 0x12]);
    }

    #[test]
    fn out_of_bounds_memory_traps() {
        let m = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: true,
            body: vec![I32Const((PAGE_SIZE - 2) as i32), I32Load(0)],
        });
        let mut vm = Instance::new(m).unwrap();
        assert!(matches!(
            vm.call(0, &[]),
            Err(VmError::MemoryOutOfBounds(_))
        ));
    }

    #[test]
    fn divide_by_zero_traps() {
        let m = module_of(Func {
            params: 1,
            locals: 0,
            returns_value: true,
            body: vec![I32Const(10), LocalGet(0), I32DivS],
        });
        let mut vm = Instance::new(m).unwrap();
        assert_eq!(vm.call(0, &[2]).unwrap(), Some(5));
        assert_eq!(vm.call(0, &[0]), Err(VmError::DivideByZero));
    }

    #[test]
    fn validation_rejects_stack_underflow() {
        let m = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: false,
            body: vec![I32Add],
        });
        assert!(matches!(Instance::new(m), Err(VmError::Validation(_))));
    }

    #[test]
    fn validation_rejects_bad_local_and_branch() {
        let bad_local = module_of(Func {
            params: 1,
            locals: 0,
            returns_value: false,
            body: vec![LocalGet(3), Drop],
        });
        assert!(Instance::new(bad_local).is_err());
        let bad_branch = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: false,
            body: vec![Br(0)],
        });
        assert!(Instance::new(bad_branch).is_err());
    }

    #[test]
    fn validation_rejects_unknown_call() {
        let m = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: false,
            body: vec![Call(9)],
        });
        assert!(Instance::new(m).is_err());
    }

    #[test]
    fn fuel_limit_stops_infinite_loops() {
        let m = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: false,
            body: vec![Block(vec![Loop(vec![Br(0)])])],
        });
        let mut vm = Instance::new(m).unwrap();
        vm.set_fuel(10_000);
        assert_eq!(vm.call(0, &[]), Err(VmError::OutOfFuel));
    }

    #[test]
    fn cross_function_calls() {
        // f0() = f1(20) + 2 ; f1(x) = x * 2
        let m = Module {
            funcs: vec![
                Func {
                    params: 0,
                    locals: 0,
                    returns_value: true,
                    body: vec![I32Const(20), Call(1), I32Const(2), I32Add],
                },
                Func {
                    params: 1,
                    locals: 0,
                    returns_value: true,
                    body: vec![LocalGet(0), I32Const(2), I32Mul],
                },
            ],
            memory_pages: 1,
        };
        let mut vm = Instance::new(m).unwrap();
        assert_eq!(vm.call(0, &[]).unwrap(), Some(42));
    }

    #[test]
    fn recursion_depth_is_bounded() {
        // f0() calls itself forever.
        let m = module_of(Func {
            params: 0,
            locals: 0,
            returns_value: false,
            body: vec![Call(0)],
        });
        let mut vm = Instance::new(m).unwrap();
        assert_eq!(vm.call(0, &[]), Err(VmError::StackOverflow));
    }
}
