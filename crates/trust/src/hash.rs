//! SHA-256 and HMAC-SHA256, implemented from scratch.
//!
//! These are the measurement and signing primitives under the enclave,
//! secure-boot and attestation models. The implementation follows FIPS
//! 180-4 / RFC 2104 and is verified against published test vectors.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Computes the SHA-256 digest of `data`.
///
/// ```
/// use vedliot_trust::hash::sha256;
///
/// let digest = sha256(b"abc");
/// assert_eq!(digest[0], 0xba);
/// ```
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padding: message || 0x80 || zeros || 64-bit bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut message = data.to_vec();
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    for chunk in message.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA256 (RFC 2104).
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    let mut outer = Vec::with_capacity(BLOCK + 32);
    for &b in &key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_hash = sha256(&inner);
    for &b in &key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Renders a digest as lowercase hex (for logs and reports).
#[must_use]
pub fn to_hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 test vectors.
    #[test]
    fn sha256_known_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// A multi-block message (crosses the 64-byte boundary).
    #[test]
    fn sha256_long_message() {
        let msg = vec![b'a'; 1_000];
        // Reference value computed with a known-good implementation.
        assert_eq!(
            to_hex(&sha256(&msg)),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    /// RFC 4231 test case 2 (short key "Jefe").
    #[test]
    fn hmac_known_vector() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 1 (0x0b * 20 key, "Hi There").
    #[test]
    fn hmac_known_vector_binary_key() {
        let mac = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
