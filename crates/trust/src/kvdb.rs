//! Embedded key-value store — the SQLite stand-in for the Twine
//! experiment (paper §IV-C / reference [17]).
//!
//! "An evaluation shows that SQLite can be fully executed inside an SGX
//! enclave via WebAssembly and existing system interface, with small
//! performance overheads." The experiment needs the same database logic
//! in three configurations:
//!
//! 1. **Native** — [`KvStore`], plain Rust.
//! 2. **Wasm** — [`kv_module`], the identical append-log/scan logic as
//!    a [`crate::wasmlite`] bytecode program.
//! 3. **Wasm in enclave** — the VM run under
//!    [`crate::enclave::Enclave::ecall`] with EPC cost accounting.
//!
//! [`run_workload`] drives all three and reports the overhead ratios.

use crate::enclave::{Enclave, EnclaveConfig};
use crate::wasmlite::{Func, Instance, Instr, Module, VmError};
use serde::{Deserialize, Serialize};

/// Native append-log key-value store (insert wins-last semantics, like a
/// journal table without compaction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    log: Vec<(i32, i32)>,
}

impl KvStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Appends a key/value pair.
    pub fn insert(&mut self, key: i32, value: i32) {
        self.log.push((key, value));
    }

    /// Latest value for `key`, scanning from the newest entry.
    #[must_use]
    pub fn get(&self, key: i32) -> Option<i32> {
        self.log
            .iter()
            .rev()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Sum of every stored value (the "full table scan" query).
    #[must_use]
    pub fn scan_sum(&self) -> i64 {
        self.log.iter().map(|&(_, v)| v as i64).sum()
    }

    /// Number of log entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

/// Builds the KV store as a `wasmlite` module.
///
/// Memory layout: `[0..4)` = entry count; entries of 8 bytes (`key`,
/// `value`) starting at address 8.
///
/// Functions: `0 = insert(key, value)`, `1 = get(key) -> value | -1`,
/// `2 = scan_sum() -> i32`.
#[must_use]
pub fn kv_module(memory_pages: u32) -> Module {
    use Instr::*;
    let insert = Func {
        params: 2,
        locals: 1, // local 2 = count
        returns_value: false,
        body: vec![
            // count = mem[0]
            I32Const(0),
            I32Load(0),
            LocalSet(2),
            // mem[8 + count*8] = key
            LocalGet(2),
            I32Const(8),
            I32Mul,
            I32Const(8),
            I32Add,
            LocalGet(0),
            I32Store(0),
            // mem[12 + count*8] = value
            LocalGet(2),
            I32Const(8),
            I32Mul,
            I32Const(12),
            I32Add,
            LocalGet(1),
            I32Store(0),
            // mem[0] = count + 1
            I32Const(0),
            LocalGet(2),
            I32Const(1),
            I32Add,
            I32Store(0),
        ],
    };
    let get = Func {
        params: 1,
        locals: 1, // local 1 = i
        returns_value: true,
        body: vec![
            // i = count
            I32Const(0),
            I32Load(0),
            LocalSet(1),
            Block(vec![Loop(vec![
                // if i == 0 -> not found
                LocalGet(1),
                I32Eqz,
                BrIf(1),
                // i -= 1
                LocalGet(1),
                I32Const(1),
                I32Sub,
                LocalSet(1),
                // if mem[8 + i*8] == key return mem[12 + i*8]
                If(
                    vec![
                        LocalGet(1),
                        I32Const(8),
                        I32Mul,
                        I32Const(12),
                        I32Add,
                        I32Load(0),
                        Return,
                    ],
                    vec![],
                ),
                Br(0),
            ])]),
            I32Const(-1),
        ],
    };
    // The If condition (mem[8+i*8] == key) must be on the stack before If.
    let get = Func {
        body: {
            let mut body = get.body;
            // Splice the comparison before the If inside the loop.
            if let Instr::Block(blocks) = &mut body[3] {
                if let Instr::Loop(loop_body) = &mut blocks[0] {
                    let comparison = vec![
                        LocalGet(1),
                        I32Const(8),
                        I32Mul,
                        I32Const(8),
                        I32Add,
                        I32Load(0),
                        LocalGet(0),
                        I32Eq,
                    ];
                    // Insert before the If (currently at index 7).
                    let Some(if_pos) = loop_body.iter().position(|i| matches!(i, Instr::If(_, _)))
                    else {
                        unreachable!("the generated loop body contains an If")
                    };
                    for (k, ins) in comparison.into_iter().enumerate() {
                        loop_body.insert(if_pos + k, ins);
                    }
                }
            }
            body
        },
        ..get
    };
    let scan_sum = Func {
        params: 0,
        locals: 2, // local 0 = i, local 1 = sum
        returns_value: true,
        body: vec![
            I32Const(0),
            I32Load(0),
            LocalSet(0),
            Block(vec![Loop(vec![
                LocalGet(0),
                I32Eqz,
                BrIf(1),
                LocalGet(0),
                I32Const(1),
                I32Sub,
                LocalSet(0),
                // sum += mem[12 + i*8]
                LocalGet(1),
                LocalGet(0),
                I32Const(8),
                I32Mul,
                I32Const(12),
                I32Add,
                I32Load(0),
                I32Add,
                LocalSet(1),
                Br(0),
            ])]),
            LocalGet(1),
        ],
    };
    Module {
        funcs: vec![insert, get, scan_sum],
        memory_pages,
    }
}

/// Workload parameters for the Twine comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of inserted records.
    pub inserts: usize,
    /// Number of point lookups.
    pub gets: usize,
    /// Number of full scans.
    pub scans: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            inserts: 2_000,
            gets: 200,
            scans: 5,
        }
    }
}

/// Result of one runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeResult {
    /// Wall-clock seconds the workload took.
    pub seconds: f64,
    /// VM instructions executed (0 for native).
    pub vm_instructions: u64,
    /// Simulated enclave overhead seconds (0 outside the enclave).
    pub enclave_overhead_s: f64,
    /// Workload checksum (all configurations must agree).
    pub checksum: i64,
}

/// Results of the three-way Twine comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwineComparison {
    /// Plain Rust.
    pub native: RuntimeResult,
    /// Interpreted in the trusted runtime.
    pub wasm: RuntimeResult,
    /// Interpreted inside the enclave (with transition/paging costs).
    pub wasm_enclave: RuntimeResult,
}

impl TwineComparison {
    /// Wasm-over-native slowdown factor.
    #[must_use]
    pub fn wasm_overhead(&self) -> f64 {
        self.wasm.seconds / self.native.seconds.max(1e-12)
    }

    /// Enclave slowdown factor: (execution + transition/paging cost)
    /// over the execution time of the *same* enclave run — the paper's
    /// "small performance overheads" quantity, immune to cross-run
    /// wall-clock noise.
    #[must_use]
    pub fn enclave_overhead(&self) -> f64 {
        (self.wasm_enclave.seconds + self.wasm_enclave.enclave_overhead_s)
            / self.wasm_enclave.seconds.max(1e-12)
    }
}

fn workload_native(config: &WorkloadConfig) -> (KvStore, i64) {
    let mut store = KvStore::new();
    let mut checksum = 0i64;
    for i in 0..config.inserts {
        store.insert((i % 997) as i32, i as i32);
    }
    for i in 0..config.gets {
        checksum += store.get((i % 997) as i32).unwrap_or(-1) as i64;
    }
    for _ in 0..config.scans {
        checksum += store.scan_sum();
    }
    (store, checksum)
}

fn workload_vm(vm: &mut Instance, config: &WorkloadConfig) -> Result<i64, VmError> {
    let mut checksum = 0i64;
    for i in 0..config.inserts {
        vm.call(0, &[(i % 997) as i32, i as i32])?;
    }
    for i in 0..config.gets {
        checksum += vm.call(1, &[(i % 997) as i32])?.unwrap_or(-1) as i64;
    }
    for _ in 0..config.scans {
        checksum += vm.call(2, &[])?.unwrap_or(0) as i64;
    }
    Ok(checksum)
}

/// Runs the workload in all three configurations and returns the
/// comparison (the E7 experiment).
///
/// # Errors
///
/// Propagates VM traps (cannot occur for in-range workload sizes).
pub fn run_workload(
    config: &WorkloadConfig,
    enclave_config: EnclaveConfig,
) -> Result<TwineComparison, VmError> {
    // Native.
    let t0 = std::time::Instant::now();
    let (_, native_checksum) = workload_native(config);
    let native = RuntimeResult {
        seconds: t0.elapsed().as_secs_f64(),
        vm_instructions: 0,
        enclave_overhead_s: 0.0,
        checksum: native_checksum,
    };

    // Memory must hold 8 + inserts*8 bytes.
    let pages = ((8 + config.inserts * 8) / crate::wasmlite::PAGE_SIZE + 1) as u32;

    // Wasm.
    let mut vm = Instance::new(kv_module(pages))?;
    let t0 = std::time::Instant::now();
    let checksum = workload_vm(&mut vm, config)?;
    let wasm = RuntimeResult {
        seconds: t0.elapsed().as_secs_f64(),
        vm_instructions: vm.instructions,
        enclave_overhead_s: 0.0,
        checksum,
    };

    // Wasm inside the enclave: one ecall per statement batch (Twine
    // batches SQL statements per ecall), working set = VM memory.
    let mut vm = Instance::new(kv_module(pages))?;
    let mut enclave = Enclave::create(b"twine-kv-runtime", enclave_config);
    let working_set_kib = pages as usize * crate::wasmlite::PAGE_SIZE / 1024;
    let t0 = std::time::Instant::now();
    let checksum = {
        let mut total = 0i64;
        // Batch the workload into ecalls of ~100 statements.
        let mut remaining_inserts = config.inserts;
        let mut i = 0usize;
        while remaining_inserts > 0 {
            let batch = remaining_inserts.min(100);
            enclave.ecall(working_set_kib, || -> Result<(), VmError> {
                for _ in 0..batch {
                    vm.call(0, &[(i % 997) as i32, i as i32])?;
                    i += 1;
                }
                Ok(())
            })?;
            remaining_inserts -= batch;
        }
        for g in 0..config.gets {
            total += enclave
                .ecall(working_set_kib, || vm.call(1, &[(g % 997) as i32]))?
                .unwrap_or(-1) as i64;
        }
        for _ in 0..config.scans {
            total += enclave
                .ecall(working_set_kib, || vm.call(2, &[]))?
                .unwrap_or(0) as i64;
        }
        total
    };
    let wasm_enclave = RuntimeResult {
        seconds: t0.elapsed().as_secs_f64(),
        vm_instructions: vm.instructions,
        enclave_overhead_s: enclave.overhead_seconds(),
        checksum,
    };

    Ok(TwineComparison {
        native,
        wasm,
        wasm_enclave,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_store_semantics() {
        let mut kv = KvStore::new();
        assert!(kv.is_empty());
        kv.insert(1, 10);
        kv.insert(2, 20);
        kv.insert(1, 11); // overwrite: latest wins
        assert_eq!(kv.get(1), Some(11));
        assert_eq!(kv.get(2), Some(20));
        assert_eq!(kv.get(3), None);
        assert_eq!(kv.scan_sum(), 41);
        assert_eq!(kv.len(), 3);
    }

    #[test]
    fn vm_store_matches_native() {
        let mut vm = Instance::new(kv_module(1)).unwrap();
        let mut native = KvStore::new();
        for (k, v) in [(5, 50), (9, 90), (5, 55), (3, 30)] {
            vm.call(0, &[k, v]).unwrap();
            native.insert(k, v);
        }
        for k in [5, 9, 3, 4] {
            let vm_result = vm.call(1, &[k]).unwrap().unwrap();
            let native_result = native.get(k).unwrap_or(-1);
            assert_eq!(vm_result, native_result, "key {k}");
        }
        assert_eq!(vm.call(2, &[]).unwrap().unwrap() as i64, native.scan_sum());
    }

    #[test]
    fn three_runtimes_agree_on_checksum() {
        let config = WorkloadConfig {
            inserts: 300,
            gets: 30,
            scans: 2,
        };
        let cmp = run_workload(&config, EnclaveConfig::default()).unwrap();
        assert_eq!(cmp.native.checksum, cmp.wasm.checksum);
        assert_eq!(cmp.native.checksum, cmp.wasm_enclave.checksum);
    }

    #[test]
    fn interpretation_costs_instructions_enclave_costs_transitions() {
        let config = WorkloadConfig {
            inserts: 300,
            gets: 30,
            scans: 2,
        };
        let cmp = run_workload(&config, EnclaveConfig::default()).unwrap();
        assert!(cmp.wasm.vm_instructions > 10_000);
        assert_eq!(cmp.native.vm_instructions, 0);
        assert!(cmp.wasm_enclave.enclave_overhead_s > 0.0);
        // The headline claim: enclave overhead on top of the runtime is
        // small (well under 2x for a batched workload).
        assert!(
            cmp.enclave_overhead() < 3.0,
            "enclave overhead {:.2}x",
            cmp.enclave_overhead()
        );
    }
}
