//! Secure boot and distributed remote attestation.
//!
//! Paper §IV-C: "The implementation is based on a root-of-trust provided
//! by the hardware and a secure boot mechanism, preventing an attacker
//! from substituting the trusted software" and the project develops
//! "end-to-end trust through a distributed attestation mechanism".
//!
//! Pieces: a [`RootOfTrust`] with a fused device secret, a
//! [`SecureBootChain`] that refuses to hand over control to unmeasured
//! stages, and the challenge/response [`Verifier`] protocol that edge
//! devices use before exchanging sensor data (the PAEB use case requires
//! exactly this before streaming raw data to an edge server).

use crate::hash::{hmac_sha256, sha256};
use serde::{Deserialize, Serialize};

/// The hardware root of trust: an immutable device secret plus the
/// first-stage verification key.
#[derive(Debug, Clone)]
pub struct RootOfTrust {
    device_secret: [u8; 32],
    /// Public device identity (derivable by the manufacturer's backend).
    pub device_id: [u8; 32],
}

impl RootOfTrust {
    /// "Fuses" a root of trust from a manufacturing seed.
    #[must_use]
    pub fn provision(seed: &[u8]) -> Self {
        let device_secret = hmac_sha256(b"vedliot-fuse-bank", seed);
        let device_id = sha256(&device_secret);
        RootOfTrust {
            device_secret,
            device_id,
        }
    }

    /// Derives the attestation key (shared with the verifier backend at
    /// manufacturing time in this symmetric scheme).
    #[must_use]
    pub fn attestation_key(&self) -> [u8; 32] {
        hmac_sha256(&self.device_secret, b"attestation-key-v1")
    }
}

/// One boot stage: a name, its binary image and its expected measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootStage {
    /// Stage name (`"bl2"`, `"trusted-os"`, `"runtime"`, ...).
    pub name: String,
    /// Expected SHA-256 of the image, signed off at release time.
    pub expected: [u8; 32],
}

/// Outcome of a boot attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootOutcome {
    /// All stages verified; the composite boot measurement is returned.
    Trusted {
        /// Hash chain over all stage measurements.
        boot_measurement: [u8; 32],
    },
    /// A stage failed verification; boot halted there.
    Halted {
        /// Name of the failing stage.
        stage: String,
    },
}

/// The secure boot chain: verify-then-execute for each stage.
#[derive(Debug, Clone, Default)]
pub struct SecureBootChain {
    stages: Vec<BootStage>,
}

impl SecureBootChain {
    /// Creates an empty chain.
    #[must_use]
    pub fn new() -> Self {
        SecureBootChain::default()
    }

    /// Appends a stage with its release measurement.
    pub fn add_stage(&mut self, name: impl Into<String>, released_image: &[u8]) {
        self.stages.push(BootStage {
            name: name.into(),
            expected: sha256(released_image),
        });
    }

    /// Boots with the images actually present on flash. Each image is
    /// measured before execution; the first mismatch halts the boot —
    /// "preventing an attacker from substituting the trusted software".
    #[must_use]
    pub fn boot(&self, flash_images: &[&[u8]]) -> BootOutcome {
        let mut chain = [0u8; 32];
        for (stage, image) in self.stages.iter().zip(flash_images.iter()) {
            let measured = sha256(image);
            if measured != stage.expected {
                return BootOutcome::Halted {
                    stage: stage.name.clone(),
                };
            }
            // Extend the measurement chain (TPM PCR-extend shape).
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(&chain);
            buf.extend_from_slice(&measured);
            chain = sha256(&buf);
        }
        if flash_images.len() < self.stages.len() {
            return BootOutcome::Halted {
                stage: self.stages[flash_images.len()].name.clone(),
            };
        }
        BootOutcome::Trusted {
            boot_measurement: chain,
        }
    }
}

/// An attestation report produced by a device in response to a challenge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    /// Device identity.
    pub device_id: [u8; 32],
    /// Composite boot measurement.
    pub boot_measurement: [u8; 32],
    /// The verifier's nonce, echoed back (freshness).
    pub nonce: [u8; 32],
    /// HMAC over the above with the device attestation key.
    pub signature: [u8; 32],
}

/// Produces a report binding boot measurement + nonce to the device key.
#[must_use]
pub fn attest(rot: &RootOfTrust, boot_measurement: [u8; 32], nonce: [u8; 32]) -> AttestationReport {
    let mut message = Vec::with_capacity(96);
    message.extend_from_slice(&rot.device_id);
    message.extend_from_slice(&boot_measurement);
    message.extend_from_slice(&nonce);
    AttestationReport {
        device_id: rot.device_id,
        boot_measurement,
        nonce,
        signature: hmac_sha256(&rot.attestation_key(), &message),
    }
}

/// The backend verifier: knows each enrolled device's attestation key and
/// the expected boot measurement of the released firmware.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    enrolled: Vec<([u8; 32], [u8; 32])>, // (device_id, attestation_key)
    expected_measurement: Option<[u8; 32]>,
    nonce_counter: u64,
    // (nonce, device the challenge was issued to — None for unbound).
    outstanding: Vec<([u8; 32], Option<[u8; 32]>)>,
}

impl Verifier {
    /// Creates an empty verifier.
    #[must_use]
    pub fn new() -> Self {
        Verifier::default()
    }

    /// Enrolls a device (manufacturing-time key exchange).
    pub fn enroll(&mut self, rot: &RootOfTrust) {
        self.enrolled.push((rot.device_id, rot.attestation_key()));
    }

    /// Pins the released firmware's expected boot measurement.
    pub fn expect_measurement(&mut self, measurement: [u8; 32]) {
        self.expected_measurement = Some(measurement);
    }

    /// Issues a fresh challenge nonce, usable by any enrolled device.
    pub fn challenge(&mut self) -> [u8; 32] {
        self.issue(None)
    }

    /// Issues a fresh challenge nonce bound to one device: a report
    /// quoting it is rejected unless it comes from that device. This is
    /// the fleet-rollout shape — the backend challenges a specific
    /// device before shipping it an update, so one compromised device
    /// cannot answer on behalf of another.
    pub fn challenge_for(&mut self, device_id: [u8; 32]) -> [u8; 32] {
        self.issue(Some(device_id))
    }

    fn issue(&mut self, bound_to: Option<[u8; 32]>) -> [u8; 32] {
        self.nonce_counter += 1;
        let nonce = hmac_sha256(b"verifier-nonce", &self.nonce_counter.to_le_bytes());
        self.outstanding.push((nonce, bound_to));
        nonce
    }

    /// Number of challenges issued but not yet answered.
    #[must_use]
    pub fn outstanding_challenges(&self) -> usize {
        self.outstanding.len()
    }

    /// Verifies a report: nonce outstanding, device enrolled (and the
    /// one the challenge was bound to), measurement as released,
    /// signature valid.
    ///
    /// A challenge is strictly single-use: the outstanding nonce is
    /// consumed by the *attempt*, whatever its outcome. A replayed
    /// report — or a second guess after a forged one — is rejected
    /// because its nonce is no longer outstanding; an attacker cannot
    /// keep probing signatures against a live challenge.
    pub fn verify(&mut self, report: &AttestationReport) -> bool {
        let Some(pos) = self
            .outstanding
            .iter()
            .position(|(n, _)| n == &report.nonce)
        else {
            return false; // unknown or replayed nonce
        };
        let (_, bound_to) = self.outstanding.remove(pos);
        if let Some(bound) = bound_to {
            if bound != report.device_id {
                return false;
            }
        }
        let Some(&(_, key)) = self.enrolled.iter().find(|(id, _)| id == &report.device_id) else {
            return false;
        };
        if let Some(expected) = self.expected_measurement {
            if expected != report.boot_measurement {
                return false;
            }
        }
        let mut message = Vec::with_capacity(96);
        message.extend_from_slice(&report.device_id);
        message.extend_from_slice(&report.boot_measurement);
        message.extend_from_slice(&report.nonce);
        hmac_sha256(&key, &message) == report.signature
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn released_chain() -> (SecureBootChain, Vec<Vec<u8>>) {
        let images = vec![
            b"bl2-v1.2".to_vec(),
            b"trusted-os-v3".to_vec(),
            b"wasm-runtime-v7".to_vec(),
        ];
        let mut chain = SecureBootChain::new();
        for (name, image) in ["bl2", "trusted-os", "runtime"].iter().zip(&images) {
            chain.add_stage(*name, image);
        }
        (chain, images)
    }

    #[test]
    fn clean_boot_produces_measurement() {
        let (chain, images) = released_chain();
        let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
        match chain.boot(&refs) {
            BootOutcome::Trusted { boot_measurement } => {
                assert_ne!(boot_measurement, [0u8; 32]);
            }
            BootOutcome::Halted { stage } => panic!("boot halted at {stage}"),
        }
    }

    #[test]
    fn substituted_stage_halts_boot() {
        let (chain, mut images) = released_chain();
        images[1] = b"evil-os".to_vec();
        let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
        assert_eq!(
            chain.boot(&refs),
            BootOutcome::Halted {
                stage: "trusted-os".into()
            }
        );
    }

    #[test]
    fn missing_stage_halts_boot() {
        let (chain, images) = released_chain();
        let refs: Vec<&[u8]> = images.iter().take(2).map(Vec::as_slice).collect();
        assert_eq!(
            chain.boot(&refs),
            BootOutcome::Halted {
                stage: "runtime".into()
            }
        );
    }

    fn trusted_measurement() -> [u8; 32] {
        let (chain, images) = released_chain();
        let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
        match chain.boot(&refs) {
            BootOutcome::Trusted { boot_measurement } => boot_measurement,
            BootOutcome::Halted { .. } => unreachable!(),
        }
    }

    #[test]
    fn end_to_end_attestation_succeeds() {
        let rot = RootOfTrust::provision(b"device-0001");
        let measurement = trusted_measurement();
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        verifier.expect_measurement(measurement);

        let nonce = verifier.challenge();
        let report = attest(&rot, measurement, nonce);
        assert!(verifier.verify(&report));
    }

    #[test]
    fn replayed_report_is_rejected() {
        let rot = RootOfTrust::provision(b"device-0001");
        let measurement = trusted_measurement();
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        let nonce = verifier.challenge();
        let report = attest(&rot, measurement, nonce);
        assert!(verifier.verify(&report));
        assert_eq!(verifier.outstanding_challenges(), 0);
        assert!(!verifier.verify(&report), "nonce must be single-use");
    }

    #[test]
    fn failed_attempt_consumes_the_challenge() {
        // Replay-attack regression: an attacker submits a forged report
        // quoting a live nonce. The attempt must burn the nonce — the
        // attacker does not get a second guess, and even the legitimate
        // device cannot answer the spent challenge afterwards (it must
        // request a fresh one).
        let rot = RootOfTrust::provision(b"device-0001");
        let measurement = trusted_measurement();
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        verifier.expect_measurement(measurement);
        let nonce = verifier.challenge();

        let mut forged = attest(&rot, measurement, nonce);
        forged.signature[0] ^= 0x01;
        assert!(!verifier.verify(&forged));
        assert_eq!(
            verifier.outstanding_challenges(),
            0,
            "a failed attempt must consume the outstanding nonce"
        );

        let honest = attest(&rot, measurement, nonce);
        assert!(
            !verifier.verify(&honest),
            "spent challenge must reject even a valid report"
        );

        // A fresh challenge restores service for the honest device.
        let nonce2 = verifier.challenge();
        assert!(verifier.verify(&attest(&rot, measurement, nonce2)));
    }

    #[test]
    fn bound_challenge_rejects_other_devices() {
        let alice = RootOfTrust::provision(b"device-alice");
        let mallory = RootOfTrust::provision(b"device-mallory");
        let measurement = trusted_measurement();
        let mut verifier = Verifier::new();
        verifier.enroll(&alice);
        verifier.enroll(&mallory);
        verifier.expect_measurement(measurement);

        // Mallory (enrolled, healthy) answers Alice's challenge with a
        // perfectly valid report — rejected: the challenge was bound.
        let nonce = verifier.challenge_for(alice.device_id);
        let hijack = attest(&mallory, measurement, nonce);
        assert!(!verifier.verify(&hijack));
        // And the attempt burned the nonce for Alice too.
        assert!(!verifier.verify(&attest(&alice, measurement, nonce)));

        let nonce2 = verifier.challenge_for(alice.device_id);
        assert!(verifier.verify(&attest(&alice, measurement, nonce2)));
    }

    #[test]
    fn tampered_firmware_fails_attestation() {
        let rot = RootOfTrust::provision(b"device-0001");
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        verifier.expect_measurement(trusted_measurement());
        let nonce = verifier.challenge();
        // Device booted something else.
        let report = attest(&rot, sha256(b"evil-chain"), nonce);
        assert!(!verifier.verify(&report));
    }

    #[test]
    fn unenrolled_device_fails() {
        let rogue = RootOfTrust::provision(b"rogue");
        let measurement = trusted_measurement();
        let mut verifier = Verifier::new();
        verifier.expect_measurement(measurement);
        let nonce = verifier.challenge();
        let report = attest(&rogue, measurement, nonce);
        assert!(!verifier.verify(&report));
    }

    #[test]
    fn forged_signature_fails() {
        let rot = RootOfTrust::provision(b"device-0001");
        let measurement = trusted_measurement();
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        verifier.expect_measurement(measurement);
        let nonce = verifier.challenge();
        let mut report = attest(&rot, measurement, nonce);
        report.signature[5] ^= 0xFF;
        assert!(!verifier.verify(&report));
    }
}
