//! Remote attestation of TrustZone trusted applications.
//!
//! Paper §IV-C: "To implement remote attestation for WebAssembly code
//! running in ARM processors, a TEE specification defining how the
//! trusted environment behaves and how the normal world can interact
//! with the secure world is realized."
//!
//! This module is that bridge: the normal-world kernel requests a quote
//! for an installed TA; the measurement is read *inside* the secure
//! world (an SMC round trip) and bound to the device root of trust and
//! the verifier's nonce. The normal world never sees the raw TA binary
//! or its measurement source.

use crate::attestation::{AttestationReport, RootOfTrust};
use crate::hash::hmac_sha256;
use crate::trustzone::{CallerLevel, TrustZone, TzError};

/// Produces an attestation report for one trusted application.
///
/// The TA measurement is read within the secure world and mixed into a
/// composite measurement `H(device-boot ‖ ta)`, so the verifier can pin
/// both the platform firmware and the specific TA version.
///
/// # Errors
///
/// Propagates TrustZone failures: user-level callers cannot trigger the
/// world switch, unknown TAs are rejected.
pub fn attest_ta(
    tz: &mut TrustZone,
    caller: CallerLevel,
    rot: &RootOfTrust,
    boot_measurement: [u8; 32],
    ta_name: &str,
    nonce: [u8; 32],
) -> Result<AttestationReport, TzError> {
    let ta = ta_name.to_string();
    let ta_measurement = tz.smc(caller, |ctx| ctx.ta_measurement(&ta))?;
    // Composite measurement: platform boot chain extended with the TA.
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&boot_measurement);
    buf.extend_from_slice(&ta_measurement);
    let composite = crate::hash::sha256(&buf);
    Ok(crate::attestation::attest(rot, composite, nonce))
}

/// Computes the composite measurement a verifier should expect for a
/// released TA binary on a platform with a known boot measurement.
#[must_use]
pub fn expected_ta_measurement(boot_measurement: [u8; 32], ta_binary: &[u8]) -> [u8; 32] {
    let ta_measurement = crate::hash::sha256(ta_binary);
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&boot_measurement);
    buf.extend_from_slice(&ta_measurement);
    crate::hash::sha256(&buf)
}

/// Derives a session key between the verifier and an attested TA
/// (HKDF-style single-step expansion over the shared attestation key and
/// the fresh nonce). Both sides compute the same key after a successful
/// attestation; the secure channel for "secure execution and
/// communication of critical code" hangs off it.
#[must_use]
pub fn session_key(rot: &RootOfTrust, nonce: [u8; 32]) -> [u8; 32] {
    let mut info = Vec::with_capacity(48);
    info.extend_from_slice(b"ta-session-key-v1");
    info.extend_from_slice(&nonce);
    hmac_sha256(&rot.attestation_key(), &info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::Verifier;
    use crate::trustzone::World;

    fn booted_tz() -> TrustZone {
        let mut tz = TrustZone::new();
        tz.install_ta("monitor", b"robustness-monitor-v2", <[u8]>::to_vec)
            .unwrap();
        tz.enter_normal_world();
        tz
    }

    #[test]
    fn end_to_end_ta_attestation() {
        let mut tz = booted_tz();
        let rot = RootOfTrust::provision(b"arm-node-3");
        let boot = crate::hash::sha256(b"optee-boot-chain");
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        verifier.expect_measurement(expected_ta_measurement(boot, b"robustness-monitor-v2"));

        let nonce = verifier.challenge();
        let report = attest_ta(&mut tz, CallerLevel::Kernel, &rot, boot, "monitor", nonce).unwrap();
        assert!(verifier.verify(&report));
        // The world returned to normal after the SMC.
        assert_eq!(tz.world(), World::Normal);
    }

    #[test]
    fn wrong_ta_version_fails_verification() {
        let mut tz = booted_tz();
        let rot = RootOfTrust::provision(b"arm-node-3");
        let boot = crate::hash::sha256(b"optee-boot-chain");
        let mut verifier = Verifier::new();
        verifier.enroll(&rot);
        // Verifier expects v3, device runs v2.
        verifier.expect_measurement(expected_ta_measurement(boot, b"robustness-monitor-v3"));
        let nonce = verifier.challenge();
        let report = attest_ta(&mut tz, CallerLevel::Kernel, &rot, boot, "monitor", nonce).unwrap();
        assert!(!verifier.verify(&report));
    }

    #[test]
    fn user_level_cannot_request_quotes() {
        let mut tz = booted_tz();
        let rot = RootOfTrust::provision(b"arm-node-3");
        let err = attest_ta(
            &mut tz,
            CallerLevel::User,
            &rot,
            [0u8; 32],
            "monitor",
            [1u8; 32],
        );
        assert_eq!(err, Err(TzError::SmcFromUserLevel));
    }

    #[test]
    fn unknown_ta_is_rejected() {
        let mut tz = booted_tz();
        let rot = RootOfTrust::provision(b"arm-node-3");
        let err = attest_ta(
            &mut tz,
            CallerLevel::Kernel,
            &rot,
            [0u8; 32],
            "ghost",
            [1u8; 32],
        );
        assert!(matches!(err, Err(TzError::UnknownTa(_))));
    }

    #[test]
    fn session_keys_agree_and_rotate_with_nonce() {
        let rot = RootOfTrust::provision(b"arm-node-3");
        let k1 = session_key(&rot, [1u8; 32]);
        let k1_again = session_key(&rot, [1u8; 32]);
        let k2 = session_key(&rot, [2u8; 32]);
        assert_eq!(k1, k1_again);
        assert_ne!(k1, k2);
    }
}
