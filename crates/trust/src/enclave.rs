//! SGX-like enclave model.
//!
//! Captures the three cost mechanisms that dominate real SGX behaviour
//! (and therefore the shape of the Twine experiment): world transitions
//! (ecall/ocall ≈ 8–14 k cycles each), EPC paging when the working set
//! exceeds the protected-memory capacity, and the memory-encryption-
//! engine throughput tax. State mechanisms — measurement (MRENCLAVE),
//! sealing, local quotes — are functional, built on [`crate::hash`].

use crate::hash::{hmac_sha256, sha256};
use serde::{Deserialize, Serialize};

/// Cost/capacity parameters of the simulated enclave hardware.
///
/// Defaults correspond to published SGX1 measurements (EPC ≈ 93 MiB
/// usable, transitions ≈ 10 k cycles, EWB paging ≈ 40 k cycles/page).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnclaveConfig {
    /// Usable EPC capacity in KiB.
    pub epc_kib: usize,
    /// Cycles per ecall (entry transition).
    pub ecall_cycles: u64,
    /// Cycles per ocall (exit transition).
    pub ocall_cycles: u64,
    /// Cycles per EPC page evict+load (4 KiB granule).
    pub page_fault_cycles: u64,
    /// Core clock in GHz (to convert cycles into time for reports).
    pub clock_ghz: f64,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            epc_kib: 93 * 1024,
            ecall_cycles: 10_000,
            ocall_cycles: 10_000,
            page_fault_cycles: 40_000,
            clock_ghz: 3.0,
        }
    }
}

/// Counters accumulated by an enclave over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EnclaveStats {
    /// Number of ecalls performed.
    pub ecalls: u64,
    /// Number of ocalls performed.
    pub ocalls: u64,
    /// Page faults triggered by over-EPC working sets.
    pub page_faults: u64,
    /// Total overhead cycles charged (transitions + paging).
    pub overhead_cycles: u64,
}

/// A local attestation quote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// Enclave measurement (hash of the loaded code).
    pub measurement: [u8; 32],
    /// Caller-supplied report data (e.g. a key-exchange nonce).
    pub report_data: [u8; 32],
    /// HMAC over measurement‖report_data with the platform key.
    pub signature: [u8; 32],
}

/// A simulated SGX enclave instance.
///
/// ```
/// use vedliot_trust::enclave::{Enclave, EnclaveConfig};
///
/// let mut e = Enclave::create(b"robustness-monitor", EnclaveConfig::default());
/// let sum = e.ecall(16, || (1..=10).sum::<i32>());
/// assert_eq!(sum, 55);
/// ```
#[derive(Debug, Clone)]
pub struct Enclave {
    measurement: [u8; 32],
    platform_key: [u8; 32],
    config: EnclaveConfig,
    stats: EnclaveStats,
}

impl Enclave {
    /// Creates (loads and measures) an enclave from its code image.
    #[must_use]
    pub fn create(code: &[u8], config: EnclaveConfig) -> Self {
        let measurement = sha256(code);
        // Platform key derived from a (simulated) fused device secret.
        let platform_key = hmac_sha256(b"vedliot-platform-fuse", &measurement);
        Enclave {
            measurement,
            platform_key,
            config,
            stats: EnclaveStats::default(),
        }
    }

    /// The enclave measurement (MRENCLAVE equivalent).
    #[must_use]
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> EnclaveStats {
        self.stats
    }

    /// The configured cost model.
    #[must_use]
    pub fn config(&self) -> EnclaveConfig {
        self.config
    }

    /// Total simulated overhead in seconds.
    #[must_use]
    pub fn overhead_seconds(&self) -> f64 {
        self.stats.overhead_cycles as f64 / (self.config.clock_ghz * 1e9)
    }

    /// Enters the enclave, runs `f` with a working set of
    /// `working_set_kib`, and exits. Transition and paging costs are
    /// charged to the stats.
    pub fn ecall<R>(&mut self, working_set_kib: usize, f: impl FnOnce() -> R) -> R {
        self.stats.ecalls += 1;
        self.stats.overhead_cycles += self.config.ecall_cycles;
        if working_set_kib > self.config.epc_kib {
            // Every 4 KiB page beyond EPC capacity faults once per entry.
            let excess_pages = ((working_set_kib - self.config.epc_kib) as u64).div_ceil(4);
            self.stats.page_faults += excess_pages;
            self.stats.overhead_cycles += excess_pages * self.config.page_fault_cycles;
        }
        f()
    }

    /// Performs an ocall (exit to untrusted code, e.g. for a syscall the
    /// WASI layer cannot satisfy inside).
    pub fn ocall<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.stats.ocalls += 1;
        self.stats.overhead_cycles += self.config.ocall_cycles;
        f()
    }

    /// Produces a local quote over `report_data`.
    #[must_use]
    pub fn quote(&self, report_data: [u8; 32]) -> Quote {
        let mut message = Vec::with_capacity(64);
        message.extend_from_slice(&self.measurement);
        message.extend_from_slice(&report_data);
        Quote {
            measurement: self.measurement,
            report_data,
            signature: hmac_sha256(&self.platform_key, &message),
        }
    }

    /// Seals data to this enclave identity (key derived from the
    /// measurement; a different enclave cannot unseal).
    #[must_use]
    pub fn seal(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + 32);
        let mac = hmac_sha256(&self.platform_key, plaintext);
        out.extend_from_slice(&mac);
        out.extend_from_slice(&keystream_xor(&self.platform_key, plaintext));
        out
    }

    /// Unseals data previously sealed by an enclave with the same
    /// measurement on the same platform.
    ///
    /// Returns `None` when the blob is malformed or the integrity check
    /// fails (wrong enclave or tampered data).
    #[must_use]
    pub fn unseal(&self, sealed: &[u8]) -> Option<Vec<u8>> {
        if sealed.len() < 32 {
            return None;
        }
        let (mac, body) = sealed.split_at(32);
        let plaintext = keystream_xor(&self.platform_key, body);
        if hmac_sha256(&self.platform_key, &plaintext)[..] == mac[..] {
            Some(plaintext)
        } else {
            None
        }
    }
}

/// Verifies a quote against an expected measurement, recomputing the
/// signature with the platform key derived from that measurement.
#[must_use]
pub fn verify_quote(quote: &Quote, expected_measurement: &[u8; 32]) -> bool {
    if &quote.measurement != expected_measurement {
        return false;
    }
    let platform_key = hmac_sha256(b"vedliot-platform-fuse", expected_measurement);
    let mut message = Vec::with_capacity(64);
    message.extend_from_slice(&quote.measurement);
    message.extend_from_slice(&quote.report_data);
    hmac_sha256(&platform_key, &message) == quote.signature
}

/// XOR keystream derived by counter-mode HMAC (simulation-grade
/// confidentiality; symmetric so it both seals and unseals).
fn keystream_xor(key: &[u8; 32], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (block_idx, chunk) in data.chunks(32).enumerate() {
        let block = hmac_sha256(key, &(block_idx as u64).to_le_bytes());
        for (i, &b) in chunk.iter().enumerate() {
            out.push(b ^ block[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_depends_on_code() {
        let a = Enclave::create(b"version-1", EnclaveConfig::default());
        let b = Enclave::create(b"version-2", EnclaveConfig::default());
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn ecall_charges_transition_costs() {
        let mut e = Enclave::create(b"code", EnclaveConfig::default());
        let v = e.ecall(1, || 41) + 1;
        assert_eq!(v, 42);
        assert_eq!(e.stats().ecalls, 1);
        assert_eq!(
            e.stats().overhead_cycles,
            EnclaveConfig::default().ecall_cycles
        );
        e.ocall(|| ());
        assert_eq!(e.stats().ocalls, 1);
    }

    #[test]
    fn working_set_within_epc_never_faults() {
        let mut e = Enclave::create(b"code", EnclaveConfig::default());
        e.ecall(90 * 1024, || ());
        assert_eq!(e.stats().page_faults, 0);
    }

    #[test]
    fn oversized_working_set_pages() {
        let config = EnclaveConfig {
            epc_kib: 1024,
            ..EnclaveConfig::default()
        };
        let mut e = Enclave::create(b"code", config);
        e.ecall(1024 + 40, || ()); // 40 KiB over -> 10 pages
        assert_eq!(e.stats().page_faults, 10);
        assert!(e.stats().overhead_cycles > config.ecall_cycles);
        assert!(e.overhead_seconds() > 0.0);
    }

    #[test]
    fn quote_verifies_and_rejects_tampering() {
        let e = Enclave::create(b"monitor", EnclaveConfig::default());
        let nonce = [7u8; 32];
        let quote = e.quote(nonce);
        assert!(verify_quote(&quote, &e.measurement()));

        let mut forged = quote.clone();
        forged.report_data[0] ^= 1;
        assert!(!verify_quote(&forged, &e.measurement()));

        let other = Enclave::create(b"malware", EnclaveConfig::default());
        let wrong_code = other.quote(nonce);
        assert!(!verify_quote(&wrong_code, &e.measurement()));
    }

    #[test]
    fn seal_round_trips_and_binds_identity() {
        let e = Enclave::create(b"monitor", EnclaveConfig::default());
        let secret = b"model-weights-key".to_vec();
        let sealed = e.seal(&secret);
        assert_ne!(
            &sealed[32..],
            &secret[..],
            "ciphertext differs from plaintext"
        );
        assert_eq!(e.unseal(&sealed), Some(secret.clone()));

        // A different enclave cannot unseal.
        let other = Enclave::create(b"other", EnclaveConfig::default());
        assert_eq!(other.unseal(&sealed), None);

        // Tampered blob is rejected.
        let mut tampered = sealed.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert_eq!(e.unseal(&tampered), None);
    }

    #[test]
    fn unseal_rejects_short_blobs() {
        let e = Enclave::create(b"x", EnclaveConfig::default());
        assert_eq!(e.unseal(&[0u8; 8]), None);
    }
}
