//! Trusted execution environments for distributed AIoT (paper §IV-C).
//!
//! "VEDLIoT implements several hardware- and system-level tools to
//! improve the dependability and security of edge applications. … the
//! project has focused on developing end-to-end trust through a
//! distributed attestation mechanism, secure execution and communication
//! of critical code … The hardware protection offered by Intel SGX
//! enclaves is leveraged, and an open-source WebAssembly runtime
//! implementation to build a trusted runtime environment."
//!
//! * [`hash`] — SHA-256 and HMAC-SHA256 implemented from scratch (the
//!   measurement/signing substrate for everything below).
//! * [`enclave`] — an SGX-like enclave model: code measurement, EPC
//!   capacity with paging costs, ecall/ocall transition costs, sealing
//!   and local quotes (the cost parameters reproduce the Twine-style
//!   overhead experiment, E7).
//! * [`wasmlite`] — a validated, interpreted WebAssembly-like stack VM —
//!   the "trusted runtime … without dealing with language-specific APIs".
//! * [`kvdb`] — an embedded key-value store standing in for SQLite, with
//!   a native Rust implementation and a `wasmlite` bytecode program
//!   computing the same workload.
//! * [`trustzone`] — ARM TrustZone normal/secure world model with
//!   OP-TEE-style trusted-application sessions.
//! * [`attestation`] — secure boot chain over a hardware root of trust
//!   and the remote attestation protocol (challenge → quote → verify).
//! * [`ta_attest`] — remote attestation of TrustZone trusted
//!   applications (the ARM path of the paper's attestation story).
//!
//! # Example
//!
//! ```
//! use vedliot_trust::enclave::{Enclave, EnclaveConfig};
//!
//! let mut enclave = Enclave::create(b"monitor-v1", EnclaveConfig::default());
//! let result = enclave.ecall(64, || 2 + 2);
//! assert_eq!(result, 4);
//! assert_eq!(enclave.stats().ecalls, 1);
//! ```

pub mod attestation;
pub mod enclave;
pub mod hash;
pub mod kvdb;
pub mod ta_attest;
pub mod trustzone;
pub mod wasmlite;

pub use enclave::{Enclave, EnclaveConfig};
pub use hash::{hmac_sha256, sha256};
