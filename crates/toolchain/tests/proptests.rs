//! Property-based tests for the toolchain substrates: Huffman coding,
//! k-means weight sharing, quantization and FP16 rounding.

use proptest::prelude::*;
use vedliot_toolchain::huffman;
use vedliot_toolchain::kmeans::kmeans_1d;
use vedliot_toolchain::passes::round_to_f16;

proptest! {
    /// Huffman round-trips any symbol stream over any small alphabet.
    #[test]
    fn huffman_round_trip(
        symbols in proptest::collection::vec(0u16..32, 0..2_000),
    ) {
        let encoded = huffman::encode(&symbols, 32);
        let decoded = huffman::decode(&encoded).expect("decodes");
        prop_assert_eq!(decoded, symbols);
    }

    /// The encoded payload never exceeds the trivial fixed-width bound
    /// by more than one byte of padding (Huffman is never worse than
    /// ceil(log2(alphabet)) bits per symbol, +1 for the degenerate
    /// single-symbol case).
    #[test]
    fn huffman_never_expands_beyond_fixed_width(
        symbols in proptest::collection::vec(0u16..16, 1..2_000),
    ) {
        let encoded = huffman::encode(&symbols, 16);
        // 16-symbol alphabet: longest possible canonical code for n
        // symbols is n-1 bits, but frequency-sorted coding bounds the
        // *average* by entropy <= 4 bits + 1. Use a generous structural
        // bound: total payload <= symbols * 15 bits.
        prop_assert!(encoded.bit_len <= symbols.len() * 15 + 8);
        // And it must decode to itself.
        prop_assert_eq!(huffman::decode(&encoded).expect("decodes").len(), symbols.len());
    }

    /// k-means: every assignment points at an existing centroid, the
    /// codebook never exceeds k entries, and reconstruction only uses
    /// codebook values.
    #[test]
    fn kmeans_structural_invariants(
        values in proptest::collection::vec(-100.0f32..100.0, 1..300),
        k in 1usize..17,
    ) {
        let clustering = kmeans_1d(&values, k, 15);
        prop_assert!(clustering.centroids.len() <= k);
        prop_assert!(!clustering.centroids.is_empty());
        prop_assert_eq!(clustering.assignments.len(), values.len());
        for &a in &clustering.assignments {
            prop_assert!((a as usize) < clustering.centroids.len());
        }
        // Reconstruction error is bounded by the data range.
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let range = (max - min) as f64;
        prop_assert!(clustering.mse(&values) <= range * range + 1e-6);
    }

    /// More clusters never increase reconstruction error (up to Lloyd's
    /// local-optimum wobble, bounded by a tolerance).
    #[test]
    fn kmeans_error_shrinks_with_k(
        values in proptest::collection::vec(-10.0f32..10.0, 8..200),
    ) {
        let coarse = kmeans_1d(&values, 2, 25).mse(&values);
        let fine = kmeans_1d(&values, 16, 25).mse(&values);
        prop_assert!(fine <= coarse + 1e-9, "fine {fine} > coarse {coarse}");
    }

    /// FP16 rounding is idempotent and its relative error is bounded by
    /// 2^-11 in the normal range.
    #[test]
    fn fp16_rounding_properties(x in -60_000.0f32..60_000.0) {
        let r = round_to_f16(x);
        prop_assert_eq!(round_to_f16(r), r, "idempotent");
        if x.abs() > 6.2e-5 {
            let rel = ((r - x) / x).abs();
            prop_assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x}, r={r}, rel={rel}");
        }
    }

    /// Symmetric INT8 fake-quantization keeps every value within half a
    /// quantization step and is idempotent.
    #[test]
    fn int8_grid_properties(
        values in proptest::collection::vec(-50.0f32..50.0, 1..200),
    ) {
        let absmax = values.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = absmax / 127.0;
        if scale > 0.0 {
            for &x in &values {
                let q = (x / scale).round().clamp(-127.0, 127.0) * scale;
                prop_assert!((q - x).abs() <= scale / 2.0 * 1.0001 + 1e-6);
                let q2 = (q / scale).round().clamp(-127.0, 127.0) * scale;
                prop_assert!((q2 - q).abs() < 1e-6);
            }
        }
    }
}
