// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Structured channel-pruning tests on linear conv chains.

use vedliot_nnir::cost::CostReport;
use vedliot_nnir::exec::{RunOptions, Runner};
use vedliot_nnir::{zoo, Op, Shape, Tensor};
use vedliot_toolchain::passes::{Pass, PruneChannels};

fn chain() -> vedliot_nnir::Graph {
    zoo::tiny_cnn("cam", Shape::nchw(1, 3, 32, 32), &[16, 32, 64], 4).unwrap()
}

#[test]
fn channel_pruning_shrinks_macs_and_params() {
    let g = chain();
    let before = CostReport::of(&g).unwrap();
    let (pruned, detail) = PruneChannels::new(0.5).run(g).unwrap();
    pruned.validate().unwrap();
    let after = CostReport::of(&pruned).unwrap();
    assert!(
        after.total_macs < before.total_macs * 3 / 4,
        "MACs {} -> {} ({detail})",
        before.total_macs,
        after.total_macs
    );
    assert!(after.total_params < before.total_params);
}

#[test]
fn pruned_chain_still_executes_with_right_shapes() {
    let g = chain();
    let (pruned, _) = PruneChannels::new(0.5).run(g).unwrap();
    let out = Runner::builder()
        .build(&pruned)
        .unwrap()
        .execute(
            &[Tensor::random(Shape::nchw(1, 3, 32, 32), 5, 1.0)],
            RunOptions::default(),
        )
        .unwrap()
        .into_outputs();
    assert_eq!(out[0].shape().dims(), &[1, 4]);
}

#[test]
fn classifier_width_is_preserved() {
    // The last conv keeps its channels, so the dense layer's input width
    // is unchanged.
    let g = chain();
    let fc_in_before = {
        let fc = g.nodes().iter().find(|n| n.name == "fc").unwrap();
        g.node_input_shapes(fc)[0].dim(1).unwrap()
    };
    let (pruned, _) = PruneChannels::new(0.5).run(g).unwrap();
    let fc = pruned.nodes().iter().find(|n| n.name == "fc").unwrap();
    assert_eq!(
        pruned.node_input_shapes(fc)[0].dim(1).unwrap(),
        fc_in_before
    );
}

#[test]
fn branching_topologies_are_rejected() {
    let resnet = zoo::resnet50(10).unwrap();
    let err = PruneChannels::new(0.5).run(resnet);
    assert!(err.is_err(), "residual adds must be rejected");
}

#[test]
fn depthwise_chains_are_rejected() {
    let mobilenet = zoo::mobilenet_v3_large(10).unwrap();
    assert!(PruneChannels::new(0.5).run(mobilenet).is_err());
}

#[test]
fn keep_fraction_one_is_identity_in_cost() {
    let g = chain();
    let before = CostReport::of(&g).unwrap();
    let (same, _) = PruneChannels::new(1.0).run(g).unwrap();
    let after = CostReport::of(&same).unwrap();
    assert_eq!(before.total_macs, after.total_macs);
    assert_eq!(before.total_params, after.total_params);
}

#[test]
fn batchnorm_params_track_pruned_channels() {
    let g = chain();
    let (pruned, _) = PruneChannels::new(0.5).run(g).unwrap();
    let exec = Runner::builder().build(&pruned).unwrap();
    for node in pruned.nodes() {
        if node.op == Op::BatchNorm {
            let c = pruned.node_input_shapes(node)[0].dim(1).unwrap();
            let w = exec.node_weights(node).unwrap();
            assert_eq!(
                w[0].shape().elem_count(),
                c,
                "bn scale width at {}",
                node.name
            );
        }
    }
}
