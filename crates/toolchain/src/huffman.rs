//! Canonical Huffman coding over small symbol alphabets.
//!
//! Deep Compression's final stage Huffman-codes the cluster indices and
//! zero-run lengths of the pruned, clustered weight matrices. This is a
//! from-scratch implementation with exact bit accounting (the compression
//! ratios reported by [`crate::compress`] come from real encoded sizes,
//! not entropy estimates).

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A Huffman code table: symbol → (bits, length).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeBook {
    /// Code length in bits per symbol (0 = symbol unused).
    lengths: Vec<u8>,
    /// Canonical code value per symbol.
    codes: Vec<u32>,
}

/// An encoded bitstream plus its codebook.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encoded {
    /// The code table needed to decode.
    pub codebook: CodeBook,
    /// Packed bits, LSB-first within each byte.
    pub bits: Vec<u8>,
    /// Number of valid bits in `bits`.
    pub bit_len: usize,
    /// Number of symbols encoded.
    pub symbol_count: usize,
}

impl Encoded {
    /// Size of the payload in bytes (excluding the codebook).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.bit_len.div_ceil(8)
    }

    /// Size of the codebook in bytes: one length byte per possible symbol.
    #[must_use]
    pub fn codebook_bytes(&self) -> usize {
        self.codebook.lengths.len()
    }

    /// Total stored size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.payload_bytes() + self.codebook_bytes()
    }
}

#[derive(PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    // Tie-break on an id to make the tree deterministic.
    id: usize,
    node: Tree,
}

#[derive(PartialEq, Eq)]
enum Tree {
    Leaf(u16),
    Internal(Box<HeapNode>, Box<HeapNode>),
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for min-heap behaviour.
        other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut heap = BinaryHeap::new();
    let mut next_id = 0usize;
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            heap.push(HeapNode {
                weight: f,
                id: next_id,
                node: Tree::Leaf(sym as u16),
            });
            next_id += 1;
        }
    }
    let mut lengths = vec![0u8; freqs.len()];
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs 1 bit.
            if let Some(HeapNode {
                node: Tree::Leaf(sym),
                ..
            }) = heap.pop()
            {
                lengths[sym as usize] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
            break;
        };
        heap.push(HeapNode {
            weight: a.weight + b.weight,
            id: next_id,
            node: Tree::Internal(Box::new(a), Box::new(b)),
        });
        next_id += 1;
    }
    // Walk the tree assigning depths.
    fn walk(node: &HeapNode, depth: u8, lengths: &mut [u8]) {
        match &node.node {
            Tree::Leaf(sym) => lengths[*sym as usize] = depth.max(1),
            Tree::Internal(a, b) => {
                walk(a, depth + 1, lengths);
                walk(b, depth + 1, lengths);
            }
        }
    }
    if let Some(root) = heap.pop() {
        walk(&root, 0, &mut lengths);
    }
    lengths
}

impl CodeBook {
    /// Builds a canonical codebook from symbol frequencies.
    #[must_use]
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lengths = code_lengths(freqs);
        let codes = canonical_codes(&lengths);
        CodeBook { lengths, codes }
    }

    /// Code length of a symbol in bits (0 = unused).
    #[must_use]
    pub fn length(&self, symbol: u16) -> u8 {
        self.lengths.get(symbol as usize).copied().unwrap_or(0)
    }

    /// Number of possible symbols.
    #[must_use]
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }
}

/// Assigns canonical codes given lengths (shorter codes first, then by
/// symbol order).
fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut codes = vec![0u32; lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &symbols {
        code <<= lengths[s] - prev_len;
        codes[s] = code;
        code += 1;
        prev_len = lengths[s];
    }
    codes
}

/// Encodes a symbol sequence.
///
/// # Panics
///
/// Panics if a symbol is outside `0..alphabet_size` (an internal-usage
/// error, not a data error).
#[must_use]
pub fn encode(symbols: &[u16], alphabet_size: usize) -> Encoded {
    let mut freqs = vec![0u64; alphabet_size];
    for &s in symbols {
        freqs[s as usize] += 1;
    }
    let codebook = CodeBook::from_frequencies(&freqs);
    let mut bits = Vec::new();
    let mut bit_len = 0usize;
    let mut current = 0u8;
    for &s in symbols {
        let len = codebook.lengths[s as usize];
        let code = codebook.codes[s as usize];
        // Emit MSB-first within the code.
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            current |= (bit as u8) << (bit_len % 8);
            bit_len += 1;
            if bit_len.is_multiple_of(8) {
                bits.push(current);
                current = 0;
            }
        }
    }
    if !bit_len.is_multiple_of(8) {
        bits.push(current);
    }
    Encoded {
        codebook,
        bits,
        bit_len,
        symbol_count: symbols.len(),
    }
}

/// Decodes an [`Encoded`] stream back into symbols.
///
/// # Errors
///
/// Returns a descriptive error string if the bitstream is truncated or
/// contains an invalid code.
pub fn decode(encoded: &Encoded) -> Result<Vec<u16>, String> {
    // Rebuild the canonical code table and decode by walking code space.
    let lengths = &encoded.codebook.lengths;
    let codes = &encoded.codebook.codes;
    // (length, code) -> symbol lookup.
    let mut table: std::collections::HashMap<(u8, u32), u16> = std::collections::HashMap::new();
    for (sym, (&len, &code)) in lengths.iter().zip(codes.iter()).enumerate() {
        if len > 0 {
            table.insert((len, code), sym as u16);
        }
    }
    let read_bit = |i: usize| -> u8 { (encoded.bits[i / 8] >> (i % 8)) & 1 };
    let mut out = Vec::with_capacity(encoded.symbol_count);
    let mut pos = 0usize;
    while out.len() < encoded.symbol_count {
        let mut code = 0u32;
        let mut len = 0u8;
        loop {
            if pos >= encoded.bit_len {
                return Err("truncated huffman stream".into());
            }
            code = (code << 1) | read_bit(pos) as u32;
            pos += 1;
            len += 1;
            if let Some(&sym) = table.get(&(len, code)) {
                out.push(sym);
                break;
            }
            if len >= 32 {
                return Err("invalid huffman code".into());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let symbols = vec![0u16, 1, 1, 2, 2, 2, 2, 3];
        let enc = encode(&symbols, 4);
        assert_eq!(decode(&enc).unwrap(), symbols);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 1000 zeros + 10 ones: near-1-bit-per-symbol coding.
        let mut symbols = vec![0u16; 1000];
        symbols.extend(vec![1u16; 10]);
        let enc = encode(&symbols, 2);
        assert!(
            enc.payload_bytes() < 1010 / 4,
            "{} bytes",
            enc.payload_bytes()
        );
        assert_eq!(decode(&enc).unwrap(), symbols);
    }

    #[test]
    fn single_symbol_alphabet() {
        let symbols = vec![5u16; 64];
        let enc = encode(&symbols, 8);
        assert_eq!(enc.bit_len, 64);
        assert_eq!(decode(&enc).unwrap(), symbols);
    }

    #[test]
    fn empty_stream() {
        let enc = encode(&[], 4);
        assert_eq!(enc.bit_len, 0);
        assert_eq!(decode(&enc).unwrap(), Vec::<u16>::new());
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut symbols = vec![0u16; 100];
        symbols.extend(vec![1u16; 10]);
        symbols.extend(vec![2u16; 1]);
        let enc = encode(&symbols, 3);
        assert!(enc.codebook.length(0) <= enc.codebook.length(1));
        assert!(enc.codebook.length(1) <= enc.codebook.length(2));
    }

    #[test]
    fn truncated_stream_is_detected() {
        let symbols = vec![0u16, 1, 2, 3, 0, 1, 2, 3];
        let mut enc = encode(&symbols, 4);
        enc.bit_len /= 2;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn sixteen_entry_codebook_round_trip() {
        // The alphabet size Deep Compression uses for 4-bit conv clusters.
        let symbols: Vec<u16> = (0..4096).map(|i| ((i * 7 + i / 13) % 16) as u16).collect();
        let enc = encode(&symbols, 16);
        assert_eq!(decode(&enc).unwrap(), symbols);
        // Uniform-ish distribution over 16 symbols → ~4 bits/symbol.
        let bits_per_symbol = enc.bit_len as f64 / symbols.len() as f64;
        assert!((3.5..4.8).contains(&bits_per_symbol), "{bits_per_symbol}");
    }
}
