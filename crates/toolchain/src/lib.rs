//! Kenning-style model-optimization toolchain (paper §III).
//!
//! The VEDLIoT toolchain takes an ONNX model, performs "significant
//! surgery" on its computational graph — operator fusion, quantization,
//! neuron-wise or connection-wise pruning — compiles it for a target, and
//! measures "inference duration, resource usage, and processing quality"
//! after deployment. This crate is that pipeline over the
//! [`vedliot_nnir`] IR:
//!
//! * [`passes`] — graph-surgery passes behind a uniform [`passes::Pass`]
//!   trait with a [`passes::PassManager`]: Conv+BN fusion, connection
//!   pruning, neuron (channel) pruning for MLPs, INT8 post-training
//!   quantization with activation calibration, FP16 conversion.
//! * [`compress`] — the Deep Compression pipeline (Han et al., the
//!   paper's "49×" citation): prune → weight clustering → Huffman coding,
//!   with exact compressed-size accounting and a lossless decoder for the
//!   pruned/clustered model.
//! * [`huffman`] / [`kmeans`] — the coding substrates, built from scratch.
//! * [`deploy`] — Kenning's measurement surface: compile a model for a
//!   catalog target and report latency, memory, energy and quality
//!   (confusion matrix) in one [`deploy::DeploymentReport`].
//! * [`lint`] — the whole-zoo lint driver behind `vedliot lint`: the
//!   full static analyzer over every zoo network and the optimized
//!   variants every pass produces.
//!
//! # Example
//!
//! ```
//! use vedliot_toolchain::passes::{FuseConvBn, PassManager, QuantizeInt8};
//! use vedliot_nnir::{zoo, Tensor, Shape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = zoo::tiny_cnn("cam", Shape::nchw(1, 3, 32, 32), &[8, 16], 4)?;
//! let calib = vec![Tensor::random(Shape::nchw(1, 3, 32, 32), 1, 1.0)];
//! let mut pm = PassManager::new();
//! pm.push(FuseConvBn::new());
//! pm.push(QuantizeInt8::with_calibration(calib));
//! let (optimized, log) = pm.run(model)?;
//! assert_eq!(log.len(), 2);
//! assert!(!optimized.nodes().is_empty());
//! # Ok(())
//! # }
//! ```

pub mod compress;
pub mod deploy;
pub mod error;
pub mod huffman;
pub mod kmeans;
pub mod lint;
pub mod passes;

pub use compress::{deep_compress, CompressionConfig, CompressionReport};
pub use deploy::{benchmark_deployment, DeploymentReport};
pub use error::ToolchainError;
