//! Deployment benchmarking — Kenning's measurement surface.
//!
//! Paper §III: "Based on the implemented interfaces, the Kenning framework
//! can measure the inference duration, resource usage, and processing
//! quality on a given target … and generate a confusion matrix for
//! classification models." [`benchmark_deployment`] compiles (optimizes)
//! a model, runs it through the accelerator performance model for
//! duration/power, and through the reference executor for quality.

use crate::error::ToolchainError;
use crate::passes::{PassLog, PassManager};
use serde::{Deserialize, Serialize};
use vedliot_accel::catalog::AcceleratorSpec;
use vedliot_accel::perf::PerfModel;
use vedliot_nnir::cost::CostReport;
use vedliot_nnir::dataset::ClassificationSet;
use vedliot_nnir::train::evaluate;
use vedliot_nnir::{DataType, Graph};

/// Quality summary of a deployed classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualitySummary {
    /// Top-1 accuracy on the evaluation set.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Number of evaluation samples.
    pub samples: usize,
}

/// The full Kenning-style deployment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Model name (after optimization).
    pub model: String,
    /// Target platform name.
    pub target: String,
    /// Execution precision on the target.
    pub precision: DataType,
    /// Inference duration for batch-1 in milliseconds.
    pub latency_ms: f64,
    /// Throughput in inferences per second.
    pub throughput_ips: f64,
    /// Average power in watts.
    pub avg_power_w: f64,
    /// Energy per inference in joules.
    pub energy_per_inference_j: f64,
    /// Weight memory at the target precision, in bytes.
    pub weight_bytes: usize,
    /// Peak activation memory at the target precision, in bytes.
    pub activation_bytes: usize,
    /// Quality measurements (present when an evaluation set was given).
    pub quality: Option<QualitySummary>,
    /// What the optimization pipeline did.
    pub pass_log: Vec<PassLog>,
}

impl DeploymentReport {
    /// Renders the report as the markdown summary Kenning emits for each
    /// deployment ("Kenning can … generate a confusion matrix" — the
    /// quality block carries its headline numbers).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Deployment report: {} on {}\n\n",
            self.model, self.target
        ));
        out.push_str("| metric | value |\n|---|---|\n");
        out.push_str(&format!("| precision | {} |\n", self.precision));
        out.push_str(&format!(
            "| inference duration | {:.2} ms |\n",
            self.latency_ms
        ));
        out.push_str(&format!(
            "| throughput | {:.1} inf/s |\n",
            self.throughput_ips
        ));
        out.push_str(&format!("| average power | {:.2} W |\n", self.avg_power_w));
        out.push_str(&format!(
            "| energy / inference | {:.4} J |\n",
            self.energy_per_inference_j
        ));
        out.push_str(&format!(
            "| weight memory | {:.2} MiB |\n",
            self.weight_bytes as f64 / (1 << 20) as f64
        ));
        out.push_str(&format!(
            "| peak activation memory | {:.2} MiB |\n",
            self.activation_bytes as f64 / (1 << 20) as f64
        ));
        if let Some(q) = &self.quality {
            out.push_str(&format!(
                "| accuracy | {:.1}% ({} samples) |\n",
                q.accuracy * 100.0,
                q.samples
            ));
            out.push_str(&format!("| macro F1 | {:.3} |\n", q.macro_f1));
        }
        if !self.pass_log.is_empty() {
            out.push_str("\n## Optimization pipeline\n\n");
            for log in &self.pass_log {
                out.push_str(&format!("- **{}**: {}\n", log.pass, log.detail));
            }
        }
        out
    }
}

/// Optimizes a model with `pipeline`, deploys it onto `target` and
/// measures duration, resource usage and (optionally) quality.
///
/// # Errors
///
/// Propagates pass, performance-model and execution failures.
pub fn benchmark_deployment(
    model: Graph,
    pipeline: &PassManager,
    target: &AcceleratorSpec,
    eval: Option<&ClassificationSet>,
) -> Result<DeploymentReport, ToolchainError> {
    let (optimized, pass_log) = pipeline.run(model)?;
    let perf = PerfModel::new(target.clone());
    let run = perf
        .run(&optimized)
        .map_err(|e| ToolchainError::Deployment(e.to_string()))?;
    let cost = CostReport::of(&optimized)?;
    let quality = match eval {
        Some(set) => {
            let cm = evaluate(&optimized, set)?;
            Some(QualitySummary {
                accuracy: cm.accuracy(),
                macro_f1: cm.macro_f1(),
                samples: cm.total(),
            })
        }
        None => None,
    };
    Ok(DeploymentReport {
        model: optimized.name().to_string(),
        target: target.name.clone(),
        precision: run.precision,
        latency_ms: run.latency_ms,
        throughput_ips: run.throughput_ips,
        avg_power_w: run.avg_power_w,
        energy_per_inference_j: run.energy_per_inference_j,
        weight_bytes: cost.weight_bytes(run.precision),
        activation_bytes: cost.activation_bytes(run.precision),
        quality,
        pass_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{FuseConvBn, PruneConnections, QuantizeInt8};
    use vedliot_accel::catalog::catalog;
    use vedliot_nnir::dataset::gaussian_prototypes;
    use vedliot_nnir::train::{mlp, train_mlp, TrainConfig};
    use vedliot_nnir::{zoo, Shape};

    #[test]
    fn report_covers_duration_resources_and_quality() {
        let data = gaussian_prototypes(&Shape::nf(1, 16), 3, 20, 3.0, 9);
        let mut model = mlp("edge-classifier", 16, &[24], 3).unwrap();
        train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        let mut pm = PassManager::new();
        pm.push(QuantizeInt8::new());
        let db = catalog();
        let target = db.find("Myriad").unwrap();
        let report = benchmark_deployment(model, &pm, target, Some(&data)).unwrap();
        assert!(report.latency_ms > 0.0);
        assert!(report.avg_power_w > 0.0);
        assert!(report.weight_bytes > 0);
        let q = report.quality.expect("quality measured");
        assert!(q.accuracy > 0.8);
        assert_eq!(q.samples, data.len());
        assert_eq!(report.pass_log.len(), 1);
    }

    #[test]
    fn markdown_report_contains_all_sections() {
        let data = gaussian_prototypes(&Shape::nf(1, 8), 2, 10, 3.0, 4);
        let mut model = mlp("md", 8, &[], 2).unwrap();
        train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        let mut pm = PassManager::new();
        pm.push(QuantizeInt8::new());
        let db = catalog();
        let report =
            benchmark_deployment(model, &pm, db.find("Edge TPU").unwrap(), Some(&data)).unwrap();
        let md = report.to_markdown();
        assert!(md.contains("# Deployment report: md on Edge TPU"));
        assert!(md.contains("inference duration"));
        assert!(md.contains("accuracy"));
        assert!(md.contains("quantize-int8"));
    }

    #[test]
    fn optimization_reduces_latency_on_target() {
        // Fusion removes memory-bound BN traffic → the §III premise that
        // hardware-aware optimization "translates to improved execution
        // metrics when deployed".
        let model = zoo::tiny_cnn("cam", Shape::nchw(1, 3, 64, 64), &[16, 32], 4).unwrap();
        let db = catalog();
        let target = db.find("Zynq ZU3").unwrap();
        let empty = PassManager::new();
        let baseline = benchmark_deployment(model.clone(), &empty, target, None).unwrap();
        let mut pm = PassManager::new();
        pm.push(FuseConvBn::new());
        let fused = benchmark_deployment(model, &pm, target, None).unwrap();
        assert!(
            fused.latency_ms < baseline.latency_ms,
            "fusion {} !< baseline {}",
            fused.latency_ms,
            baseline.latency_ms
        );
    }

    #[test]
    fn pruning_alone_does_not_change_modelled_latency() {
        // §III's warning reproduced: connection pruning reduces
        // *theoretical* work but a dense execution engine gains nothing.
        let model = zoo::tiny_cnn("cam", Shape::nchw(1, 3, 32, 32), &[8, 16], 4).unwrap();
        let db = catalog();
        let target = db.find("GTX 1660").unwrap();
        let empty = PassManager::new();
        let baseline = benchmark_deployment(model.clone(), &empty, target, None).unwrap();
        let mut pm = PassManager::new();
        pm.push(PruneConnections::new(0.9));
        let pruned = benchmark_deployment(model, &pm, target, None).unwrap();
        assert!((pruned.latency_ms - baseline.latency_ms).abs() / baseline.latency_ms < 1e-9);
    }
}
