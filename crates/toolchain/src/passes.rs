//! Graph-surgery optimization passes.
//!
//! Paper §III: "The model's computational graph undergoes significant
//! surgery in the optimization phase … (e.g., operator fusion,
//! quantization, neuron-wise or connection-wise pruning)." Each surgery
//! is a [`Pass`]; a [`PassManager`] runs an ordered pipeline and records
//! what every pass did.

use crate::error::ToolchainError;
use serde::{Deserialize, Serialize};
use vedliot_nnir::analysis;
use vedliot_nnir::exec::{RunOptions, Runner};
use vedliot_nnir::graph::WeightInit;
use vedliot_nnir::{Graph, GraphBuilder, Op, Shape, Tensor, TensorId};

/// Remap lookup during a graph rebuild. The verifier's schedule
/// invariant (producers precede consumers) means a miss is a pass bug;
/// it surfaces as a typed error instead of a panic.
fn remapped(
    pass: &str,
    remap: &[Option<TensorId>],
    t: TensorId,
) -> Result<TensorId, ToolchainError> {
    remap
        .get(t.0)
        .copied()
        .flatten()
        .ok_or_else(|| ToolchainError::UnsupportedGraph {
            pass: pass.into(),
            detail: format!("tensor t{} consumed before it was rebuilt", t.0),
        })
}

/// Shape of a graph input during a rebuild; a verified graph always has
/// one.
fn input_shape<'g>(pass: &str, graph: &'g Graph, t: TensorId) -> Result<&'g Shape, ToolchainError> {
    graph
        .tensor_shape(t)
        .ok_or_else(|| ToolchainError::UnsupportedGraph {
            pass: pass.into(),
            detail: format!("graph input t{} has no shape", t.0),
        })
}

/// One optimization pass over a graph.
///
/// Passes consume and return whole graphs (graphs are cheap to rebuild
/// and this keeps every intermediate state valid), plus a human-readable
/// summary of what changed.
///
/// **Transform contract:** when run through a [`PassManager`], every
/// pass output is re-verified (`vedliot_nnir::analysis`): the
/// Error-severity passes must come back clean and the graph's
/// input/output interface must be unchanged, or the pipeline aborts
/// with [`vedliot_nnir::NnirError::VerifierRejected`] (`T001` for an
/// interface change). A pass may restructure the graph's interior
/// freely; it may not alter what the model consumes or produces.
pub trait Pass {
    /// Pass name for logs.
    fn name(&self) -> &str;

    /// Applies the pass.
    ///
    /// # Errors
    ///
    /// Returns [`ToolchainError::UnsupportedGraph`] when the graph shape
    /// is outside the pass's domain, or propagates graph errors.
    fn run(&self, graph: Graph) -> Result<(Graph, String), ToolchainError>;
}

/// Log entry produced by one pass in a pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassLog {
    /// Pass name.
    pub pass: String,
    /// What the pass reported.
    pub detail: String,
}

/// An ordered pipeline of passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pipeline.
    #[must_use]
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Number of passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs the pipeline with a verify-after-transform differential
    /// check around every pass: the transformed graph must pass the
    /// static verifier's Error-severity gate *and* preserve the model's
    /// I/O interface. A pass that breaks an invariant becomes a typed
    /// [`NnirError::VerifierRejected`](vedliot_nnir::NnirError) at the
    /// transform boundary — never a downstream miscompute.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure or verifier rejection.
    pub fn run(&self, graph: Graph) -> Result<(Graph, Vec<PassLog>), ToolchainError> {
        let mut g = graph;
        let mut logs = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let before = analysis::InterfaceSignature::of(&g);
            let (next, detail) = pass.run(g)?;
            analysis::verify_transform(pass.name(), &before, &next)?;
            logs.push(PassLog {
                pass: pass.name().to_string(),
                detail,
            });
            g = next;
        }
        Ok((g, logs))
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .finish()
    }
}

// --------------------------------------------------------------------
// Conv + BatchNorm fusion
// --------------------------------------------------------------------

/// Folds `BatchNorm` layers into their preceding `Conv2d` (the standard
/// inference-time operator fusion; removes 2 memory-bound ops per conv).
#[derive(Debug, Clone, Copy, Default)]
pub struct FuseConvBn;

impl FuseConvBn {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        FuseConvBn
    }
}

impl Pass for FuseConvBn {
    fn name(&self) -> &str {
        "fuse-conv-bn"
    }

    fn run(&self, graph: Graph) -> Result<(Graph, String), ToolchainError> {
        let fanout = graph.fanout();
        // BN nodes to fold: their input comes from a Conv2d whose output
        // feeds only this BN.
        let mut fold_bn: Vec<bool> = vec![false; graph.nodes().len()];
        for node in graph.nodes() {
            if node.op == Op::BatchNorm {
                if let Some(producer) = graph.producer(node.inputs[0]) {
                    let prod = graph.node(producer)?;
                    if matches!(prod.op, Op::Conv2d(_)) && fanout[node.inputs[0].0].len() == 1 {
                        fold_bn[node.id.0] = true;
                    }
                }
            }
        }

        let exec = Runner::builder().build(&graph)?;
        let mut b = GraphBuilder::new(graph.name().to_string());
        // Tensor remapping old -> new.
        let mut remap: Vec<Option<TensorId>> = vec![None; graph.tensor_count()];
        for &t in graph.inputs() {
            let shape = input_shape("fuse-conv-bn", &graph, t)?.clone();
            remap[t.0] = Some(b.input(shape));
        }
        let mut fused = 0usize;
        for node in graph.nodes() {
            // Folded BN nodes are absorbed at their conv's emission site.
            if fold_bn[node.id.0] {
                continue;
            }
            // Look ahead: is this conv followed by a foldable BN?
            let following_bn = if matches!(node.op, Op::Conv2d(_)) {
                fanout[node.output.0]
                    .iter()
                    .filter_map(|&nid| graph.node(nid).ok())
                    .find(|n| fold_bn[n.id.0])
            } else {
                None
            };

            let new_inputs: Vec<TensorId> = node
                .inputs
                .iter()
                .map(|t| remapped("fuse-conv-bn", &remap, *t))
                .collect::<Result<_, _>>()?;

            if let (Op::Conv2d(attrs), Some(bn)) = (&node.op, following_bn) {
                // Materialize and fold.
                let conv_w = exec.node_weights(node)?;
                let bn_w = exec.node_weights(bn)?;
                let scale = bn_w[0].data();
                let shift = bn_w[1].data();
                let mut attrs = *attrs;
                let kernel = &conv_w[0];
                let old_bias = if attrs.bias { Some(&conv_w[1]) } else { None };
                let oc = attrs.out_channels;
                let per_oc = kernel.shape().elem_count() / oc;
                let mut folded_kernel = kernel.clone();
                for (o, &s) in scale.iter().enumerate().take(oc) {
                    for w in &mut folded_kernel.data_mut()[o * per_oc..(o + 1) * per_oc] {
                        *w *= s;
                    }
                }
                let folded_bias: Vec<f32> = (0..oc)
                    .map(|o| shift[o] + scale[o] * old_bias.map_or(0.0, |b| b.data()[o]))
                    .collect();
                attrs.bias = true;
                let weights = WeightInit::Explicit(vec![
                    folded_kernel,
                    Tensor::from_vec(Shape::new(vec![oc]), folded_bias)?,
                ]);
                let out = b.apply_with_weights(
                    node.name.clone(),
                    Op::Conv2d(attrs),
                    &new_inputs,
                    weights,
                )?;
                // The BN's output now aliases the fused conv output.
                remap[node.output.0] = Some(out);
                remap[bn.output.0] = Some(out);
                fused += 1;
                continue;
            }

            let out = b.apply_with_weights(
                node.name.clone(),
                node.op.clone(),
                &new_inputs,
                node.weights.clone(),
            )?;
            remap[node.output.0] = Some(out);
        }
        let outputs: Vec<TensorId> = graph
            .outputs()
            .iter()
            .map(|t| remapped("fuse-conv-bn", &remap, *t))
            .collect::<Result<_, _>>()?;
        let g = b.finish(outputs);
        Ok((
            g,
            format!("folded {fused} batch-norm layers into convolutions"),
        ))
    }
}

// --------------------------------------------------------------------
// Connection-wise (magnitude) pruning
// --------------------------------------------------------------------

/// Magnitude pruning: zeroes the smallest-magnitude fraction of every
/// Conv2d/Dense weight tensor ("connection-wise pruning").
#[derive(Debug, Clone, Copy)]
pub struct PruneConnections {
    sparsity: f64,
}

impl PruneConnections {
    /// Creates the pass with a target sparsity in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1)`.
    #[must_use]
    pub fn new(sparsity: f64) -> Self {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
        PruneConnections { sparsity }
    }
}

impl Pass for PruneConnections {
    fn name(&self) -> &str {
        "prune-connections"
    }

    fn run(&self, mut graph: Graph) -> Result<(Graph, String), ToolchainError> {
        let mut total = 0usize;
        let mut zeroed = 0usize;
        // Materialize first (immutable borrow), then write back.
        let materialized: Vec<Option<Vec<Tensor>>> = {
            let exec = Runner::builder().build(&graph)?;
            graph
                .nodes()
                .iter()
                .map(|node| {
                    if matches!(node.op, Op::Conv2d(_) | Op::Dense { .. }) {
                        exec.node_weights(node).ok()
                    } else {
                        None
                    }
                })
                .collect()
        };
        for (node, weights) in graph.nodes_mut().iter_mut().zip(materialized) {
            let Some(mut weights) = weights else { continue };
            // Prune the main weight tensor only (index 0), never biases.
            let w = &mut weights[0];
            let n = w.data().len();
            let keep = n - ((n as f64) * self.sparsity).round() as usize;
            let mut magnitudes: Vec<f32> = w.data().iter().map(|x| x.abs()).collect();
            magnitudes.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            let threshold = if keep == 0 {
                f32::INFINITY
            } else if keep >= n {
                0.0
            } else {
                magnitudes[keep - 1]
            };
            for x in w.data_mut() {
                total += 1;
                if x.abs() < threshold || threshold == f32::INFINITY {
                    *x = 0.0;
                    zeroed += 1;
                }
            }
            node.weights = WeightInit::Explicit(weights);
        }
        let achieved = if total > 0 {
            zeroed as f64 / total as f64
        } else {
            0.0
        };
        Ok((
            graph,
            format!(
                "zeroed {zeroed}/{total} connections ({achieved:.1}% sparsity)",
                achieved = achieved * 100.0
            ),
        ))
    }
}

// --------------------------------------------------------------------
// Neuron-wise pruning (MLP chains)
// --------------------------------------------------------------------

/// Neuron-wise (structured) pruning for MLP chains: removes the
/// lowest-L2-norm output neurons of every hidden `Dense` layer, shrinking
/// the following layer's input accordingly.
#[derive(Debug, Clone, Copy)]
pub struct PruneNeurons {
    keep_fraction: f64,
}

impl PruneNeurons {
    /// Creates the pass keeping the given fraction of hidden neurons.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1]"
        );
        PruneNeurons { keep_fraction }
    }
}

impl Pass for PruneNeurons {
    fn name(&self) -> &str {
        "prune-neurons"
    }

    fn run(&self, graph: Graph) -> Result<(Graph, String), ToolchainError> {
        // Validate the chain shape: Input / Flatten / Dense / Activation.
        for node in graph.nodes() {
            match node.op {
                Op::Input(_) | Op::Flatten | Op::Dense { .. } | Op::Activation(_) | Op::Softmax => {
                }
                _ => {
                    return Err(ToolchainError::UnsupportedGraph {
                        pass: self.name().into(),
                        detail: format!("{} is not an MLP-chain operator", node.op.name()),
                    })
                }
            }
        }
        let dense_ids: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Dense { .. }))
            .map(|(i, _)| i)
            .collect();
        if dense_ids.len() < 2 {
            return Err(ToolchainError::UnsupportedGraph {
                pass: self.name().into(),
                detail: "need at least one hidden layer to prune".into(),
            });
        }

        let exec = Runner::builder().build(&graph)?;
        // Materialized weights per dense node.
        let mut weights: Vec<Vec<Tensor>> = Vec::new();
        for &i in &dense_ids {
            weights.push(exec.node_weights(&graph.nodes()[i])?);
        }

        // For every hidden layer (all but the last), select kept neurons.
        let mut kept_per_layer: Vec<Vec<usize>> = Vec::new();
        let mut removed = 0usize;
        for (li, &node_idx) in dense_ids.iter().enumerate() {
            let node = &graph.nodes()[node_idx];
            let Op::Dense { out_features, .. } = node.op else {
                unreachable!()
            };
            if li == dense_ids.len() - 1 {
                kept_per_layer.push((0..out_features).collect());
                continue;
            }
            let w = &weights[li][0];
            let in_f = w.shape().dim(1).unwrap_or(1);
            let mut norms: Vec<(usize, f64)> = (0..out_features)
                .map(|o| {
                    let row = &w.data()[o * in_f..(o + 1) * in_f];
                    (o, row.iter().map(|&x| (x as f64).powi(2)).sum::<f64>())
                })
                .collect();
            norms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let keep = ((out_features as f64) * self.keep_fraction).ceil().max(1.0) as usize;
            let mut kept: Vec<usize> = norms[..keep.min(out_features)]
                .iter()
                .map(|&(o, _)| o)
                .collect();
            kept.sort_unstable();
            removed += out_features - kept.len();
            kept_per_layer.push(kept);
        }

        // Rebuild the graph with sliced weights.
        let mut b = GraphBuilder::new(graph.name().to_string());
        let mut remap: Vec<Option<TensorId>> = vec![None; graph.tensor_count()];
        for &t in graph.inputs() {
            remap[t.0] = Some(b.input(input_shape("prune-neurons", &graph, t)?.clone()));
        }
        let mut dense_seen = 0usize;
        for node in graph.nodes() {
            let new_inputs: Vec<TensorId> = node
                .inputs
                .iter()
                .map(|t| remapped("prune-neurons", &remap, *t))
                .collect::<Result<_, _>>()?;
            let out = match &node.op {
                Op::Dense { bias, .. } => {
                    let li = dense_seen;
                    dense_seen += 1;
                    let kept = &kept_per_layer[li];
                    let prev_kept: Option<&Vec<usize>> = if li > 0 {
                        Some(&kept_per_layer[li - 1])
                    } else {
                        None
                    };
                    let w = &weights[li][0];
                    let in_f = w.shape().dim(1).unwrap_or(1);
                    let cols: Vec<usize> = match prev_kept {
                        Some(prev) => prev.clone(),
                        None => (0..in_f).collect(),
                    };
                    let mut new_w = Vec::with_capacity(kept.len() * cols.len());
                    for &o in kept {
                        for &c in &cols {
                            new_w.push(w.data()[o * in_f + c]);
                        }
                    }
                    let mut tensors =
                        vec![Tensor::from_vec(Shape::nf(kept.len(), cols.len()), new_w)?];
                    if *bias {
                        let old_b = &weights[li][1];
                        let new_b: Vec<f32> = kept.iter().map(|&o| old_b.data()[o]).collect();
                        tensors.push(Tensor::from_vec(Shape::new(vec![kept.len()]), new_b)?);
                    }
                    b.apply_with_weights(
                        node.name.clone(),
                        Op::Dense {
                            out_features: kept.len(),
                            bias: *bias,
                        },
                        &new_inputs,
                        WeightInit::Explicit(tensors),
                    )?
                }
                op => b.apply_with_weights(
                    node.name.clone(),
                    op.clone(),
                    &new_inputs,
                    node.weights.clone(),
                )?,
            };
            remap[node.output.0] = Some(out);
        }
        let outputs: Vec<TensorId> = graph
            .outputs()
            .iter()
            .map(|t| remapped("prune-neurons", &remap, *t))
            .collect::<Result<_, _>>()?;
        Ok((
            b.finish(outputs),
            format!(
                "removed {removed} hidden neurons (keep fraction {:.2})",
                self.keep_fraction
            ),
        ))
    }
}

// --------------------------------------------------------------------
// Channel pruning (linear conv chains)
// --------------------------------------------------------------------

/// Structured channel pruning for *linear* convolutional chains
/// (conv / bn / activation / pool / gap / flatten / dense sequences with
/// no branching): removes the lowest-L2-norm output channels of every
/// conv except the last one before a spatial-collapse boundary, slicing
/// the consumer's input channels and any following BatchNorm to match.
///
/// This is the conv-side of the paper's "neuron-wise pruning"; residual
/// topologies (where channel sets must stay aligned across adds) are out
/// of scope and rejected.
#[derive(Debug, Clone, Copy)]
pub struct PruneChannels {
    keep_fraction: f64,
}

impl PruneChannels {
    /// Creates the pass keeping the given fraction of channels.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1]"
        );
        PruneChannels { keep_fraction }
    }
}

impl Pass for PruneChannels {
    fn name(&self) -> &str {
        "prune-channels"
    }

    fn run(&self, graph: Graph) -> Result<(Graph, String), ToolchainError> {
        // Reject anything non-linear or with grouped convs.
        let fanout = graph.fanout();
        for node in graph.nodes() {
            match &node.op {
                Op::Input(_)
                | Op::BatchNorm
                | Op::Activation(_)
                | Op::MaxPool2d(_)
                | Op::AvgPool2d(_)
                | Op::GlobalAvgPool
                | Op::Flatten
                | Op::Dense { .. }
                | Op::Softmax
                | Op::FakeQuant { .. } => {}
                Op::Conv2d(attrs) if attrs.groups == 1 => {}
                other => {
                    return Err(ToolchainError::UnsupportedGraph {
                        pass: self.name().into(),
                        detail: format!("{} breaks the linear-chain requirement", other.name()),
                    })
                }
            }
            if fanout[node.output.0].len() > 1 {
                return Err(ToolchainError::UnsupportedGraph {
                    pass: self.name().into(),
                    detail: format!("node {} has fan-out > 1 (branching)", node.name),
                });
            }
        }

        // Which convs may be pruned: every conv whose *next* conv/dense
        // consumer can be sliced. The last conv before flatten/dense
        // keeps its channels (the classifier input width must not move).
        let exec = Runner::builder().build(&graph)?;
        let conv_indices: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Conv2d(_)))
            .map(|(i, _)| i)
            .collect();
        if conv_indices.len() < 2 {
            return Err(ToolchainError::UnsupportedGraph {
                pass: self.name().into(),
                detail: "need at least two convolutions to prune channels".into(),
            });
        }

        // kept[i] = kept output-channel indices of conv node i.
        let mut kept: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        let mut removed = 0usize;
        for (pos, &idx) in conv_indices.iter().enumerate() {
            let node = &graph.nodes()[idx];
            let Op::Conv2d(attrs) = &node.op else {
                unreachable!()
            };
            if pos == conv_indices.len() - 1 {
                kept.insert(idx, (0..attrs.out_channels).collect());
                continue;
            }
            let w = &exec.node_weights(node)?[0];
            let per_oc = w.shape().elem_count() / attrs.out_channels;
            let mut norms: Vec<(usize, f64)> = (0..attrs.out_channels)
                .map(|o| {
                    let slice = &w.data()[o * per_oc..(o + 1) * per_oc];
                    (o, slice.iter().map(|&x| (x as f64).powi(2)).sum())
                })
                .collect();
            norms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let keep_n = ((attrs.out_channels as f64) * self.keep_fraction)
                .ceil()
                .max(1.0) as usize;
            let mut keep: Vec<usize> = norms[..keep_n.min(attrs.out_channels)]
                .iter()
                .map(|&(o, _)| o)
                .collect();
            keep.sort_unstable();
            removed += attrs.out_channels - keep.len();
            kept.insert(idx, keep);
        }

        // Rebuild, slicing weights. Track which channel set each tensor
        // carries (None = untouched/full).
        let mut b = GraphBuilder::new(graph.name().to_string());
        let mut remap: Vec<Option<TensorId>> = vec![None; graph.tensor_count()];
        let mut channels_of: Vec<Option<Vec<usize>>> = vec![None; graph.tensor_count()];
        for &t in graph.inputs() {
            remap[t.0] = Some(b.input(input_shape("prune-channels", &graph, t)?.clone()));
        }
        for (idx, node) in graph.nodes().iter().enumerate() {
            let new_inputs: Vec<TensorId> = node
                .inputs
                .iter()
                .map(|t| remapped("prune-channels", &remap, *t))
                .collect::<Result<_, _>>()?;
            let in_channels = node.inputs.first().and_then(|t| channels_of[t.0].clone());
            let out = match &node.op {
                Op::Conv2d(attrs) => {
                    let weights = exec.node_weights(node)?;
                    let w = &weights[0];
                    let old_in = w.shape().dim(1).unwrap_or(1);
                    let kh = attrs.kernel.0;
                    let kw = attrs.kernel.1;
                    let in_keep: Vec<usize> =
                        in_channels.clone().unwrap_or_else(|| (0..old_in).collect());
                    let out_keep = kept[&idx].clone();
                    let mut new_w = Vec::with_capacity(out_keep.len() * in_keep.len() * kh * kw);
                    for &o in &out_keep {
                        for &c in &in_keep {
                            let base = ((o * old_in) + c) * kh * kw;
                            new_w.extend_from_slice(&w.data()[base..base + kh * kw]);
                        }
                    }
                    let mut tensors = vec![Tensor::from_vec(
                        Shape::new(vec![out_keep.len(), in_keep.len(), kh, kw]),
                        new_w,
                    )?];
                    if attrs.bias {
                        let bias = &weights[1];
                        tensors.push(Tensor::from_vec(
                            Shape::new(vec![out_keep.len()]),
                            out_keep.iter().map(|&o| bias.data()[o]).collect(),
                        )?);
                    }
                    let mut new_attrs = *attrs;
                    new_attrs.out_channels = out_keep.len();
                    let out = b.apply_with_weights(
                        node.name.clone(),
                        Op::Conv2d(new_attrs),
                        &new_inputs,
                        WeightInit::Explicit(tensors),
                    )?;
                    channels_of[node.output.0] = if out_keep.len() < attrs.out_channels {
                        Some(out_keep)
                    } else {
                        None
                    };
                    out
                }
                Op::BatchNorm => {
                    let weights = exec.node_weights(node)?;
                    let tensors = match &in_channels {
                        Some(keep) => vec![
                            Tensor::from_vec(
                                Shape::new(vec![keep.len()]),
                                keep.iter().map(|&c| weights[0].data()[c]).collect(),
                            )?,
                            Tensor::from_vec(
                                Shape::new(vec![keep.len()]),
                                keep.iter().map(|&c| weights[1].data()[c]).collect(),
                            )?,
                        ],
                        None => weights,
                    };
                    let out = b.apply_with_weights(
                        node.name.clone(),
                        Op::BatchNorm,
                        &new_inputs,
                        WeightInit::Explicit(tensors),
                    )?;
                    channels_of[node.output.0] = in_channels.clone();
                    out
                }
                Op::Dense { .. } if in_channels.is_some() => {
                    return Err(ToolchainError::UnsupportedGraph {
                        pass: self.name().into(),
                        detail:
                            "dense layer directly consumes pruned channels; prune through GAP only"
                                .into(),
                    });
                }
                op => {
                    // Channel-preserving ops propagate the channel set;
                    // GAP + flatten collapse spatial dims, so the dense
                    // consumer after GAP sees one feature per channel —
                    // handled by treating flatten output as channel-less
                    // only when the channel count was untouched.
                    let out = b.apply_with_weights(
                        node.name.clone(),
                        op.clone(),
                        &new_inputs,
                        node.weights.clone(),
                    )?;
                    channels_of[node.output.0] = in_channels.clone();
                    out
                }
            };
            remap[node.output.0] = Some(out);
        }
        let outputs: Vec<TensorId> = graph
            .outputs()
            .iter()
            .map(|t| remapped("prune-channels", &remap, *t))
            .collect::<Result<_, _>>()?;
        Ok((
            b.finish(outputs),
            format!(
                "removed {removed} conv channels (keep fraction {:.2})",
                self.keep_fraction
            ),
        ))
    }
}

// --------------------------------------------------------------------
// Quantization
// --------------------------------------------------------------------

/// Per-channel symmetric INT8 post-training quantization with
/// activation range calibration.
///
/// Weights get one scale per output channel (conv output channel /
/// dense row) — the per-tensor scheme the pass used to apply let one
/// large channel wash out the grid for every small one, which is where
/// the paper's PTQ accuracy tables and ours diverged. The quantized
/// weights are stored both as a dequantized f32 view (so every f32
/// consumer, including accuracy evaluation, sees fake-quantized
/// values) and as an `i8` code + scale payload
/// ([`Tensor::quant`](vedliot_nnir::tensor::Tensor::quant)) that the
/// runner's INT8 kernels execute directly; activation scales are
/// recorded from calibration data as `FakeQuant` nodes, which is what
/// makes a graph I201-eligible for the INT8 execution path.
#[derive(Debug, Clone, Default)]
pub struct QuantizeInt8 {
    calibration: Vec<Tensor>,
}

impl QuantizeInt8 {
    /// Weight-only quantization (no calibration data).
    #[must_use]
    pub fn new() -> Self {
        QuantizeInt8 {
            calibration: Vec::new(),
        }
    }

    /// Quantization with activation-range calibration inputs.
    #[must_use]
    pub fn with_calibration(calibration: Vec<Tensor>) -> Self {
        QuantizeInt8 { calibration }
    }
}

impl Pass for QuantizeInt8 {
    fn name(&self) -> &str {
        "quantize-int8"
    }

    fn run(&self, mut graph: Graph) -> Result<(Graph, String), ToolchainError> {
        // Activation calibration: max |activation| over calibration
        // runs, then FakeQuant nodes inserted after every producer so
        // the evaluated accuracy reflects *full* INT8 execution
        // (weights and activations).
        let mut act_scales = 0usize;
        if !self.calibration.is_empty() {
            let mut absmax = vec![0.0f32; graph.tensor_count()];
            {
                let mut exec = Runner::builder().build(&graph)?;
                let opts = RunOptions::new().capture_intermediates(true);
                for sample in &self.calibration {
                    let values = exec
                        .execute(std::slice::from_ref(sample), opts)?
                        .into_intermediates()
                        .unwrap_or_default();
                    for (i, v) in values.iter().enumerate() {
                        if let Some(t) = v {
                            absmax[i] = absmax[i].max(t.abs_max());
                        }
                    }
                }
            }
            act_scales = absmax.iter().filter(|&&m| m > 0.0).count();

            // Rebuild with FakeQuant after each producing node.
            let mut b = GraphBuilder::new(graph.name().to_string());
            let mut remap: Vec<Option<TensorId>> = vec![None; graph.tensor_count()];
            for &t in graph.inputs() {
                let new_input = b.input(input_shape("quantize-int8", &graph, t)?.clone());
                let scale = absmax[t.0] / 127.0;
                let quantized = if scale > 0.0 {
                    b.apply(format!("{t}.quant"), Op::FakeQuant { scale }, &[new_input])?
                } else {
                    new_input
                };
                remap[t.0] = Some(quantized);
            }
            for node in graph.nodes() {
                let new_inputs: Vec<TensorId> = node
                    .inputs
                    .iter()
                    .map(|t| remapped("quantize-int8", &remap, *t))
                    .collect::<Result<_, _>>()?;
                let out = b.apply_with_weights(
                    node.name.clone(),
                    node.op.clone(),
                    &new_inputs,
                    node.weights.clone(),
                )?;
                let scale = absmax[node.output.0] / 127.0;
                let quantized = if scale > 0.0 && !matches!(node.op, Op::FakeQuant { .. }) {
                    b.apply(
                        format!("{}.quant", node.name),
                        Op::FakeQuant { scale },
                        &[out],
                    )?
                } else {
                    out
                };
                remap[node.output.0] = Some(quantized);
            }
            let outputs: Vec<TensorId> = graph
                .outputs()
                .iter()
                .map(|t| remapped("quantize-int8", &remap, *t))
                .collect::<Result<_, _>>()?;
            graph = b.finish(outputs);
        }

        let materialized: Vec<Option<Vec<Tensor>>> = {
            let exec = Runner::builder().build(&graph)?;
            graph
                .nodes()
                .iter()
                .map(|node| {
                    if matches!(node.op, Op::Conv2d(_) | Op::Dense { .. }) {
                        exec.node_weights(node).ok()
                    } else {
                        None
                    }
                })
                .collect()
        };
        let mut quantized_layers = 0usize;
        for (node, weights) in graph.nodes_mut().iter_mut().zip(materialized) {
            let Some(mut weights) = weights else { continue };
            weights[0].quantize_i8_per_channel();
            node.weights = WeightInit::Explicit(weights);
            quantized_layers += 1;
        }

        // Consult the quant-safety dataflow analysis on the calibrated
        // graph: a layer whose INT8 execution the propagated value
        // ranges cannot prove within the engine tolerance keeps its
        // fake-quantized f32 weights (the accuracy story is unchanged)
        // but loses the i8 deployment payload, so no engine mistakes it
        // for a proven INT8 kernel.
        let mut refuted = 0usize;
        if !self.calibration.is_empty() {
            let safety = vedliot_nnir::analysis::QuantSafety::of(&graph);
            for (node, verdict) in graph.nodes_mut().iter_mut().zip(safety.verdicts()) {
                if verdict.eligible {
                    continue;
                }
                let WeightInit::Explicit(weights) = &mut node.weights else {
                    continue;
                };
                if let Some(w) = weights.first_mut() {
                    if w.quant().is_some() {
                        w.clear_quant();
                        refuted += 1;
                    }
                }
            }
        }
        Ok((
            graph,
            format!(
                "quantized {quantized_layers} layers to per-channel INT8 \
                 ({act_scales} activation scales calibrated, {refuted} refuted by quant-safety analysis)"
            ),
        ))
    }
}

/// Converts weights to FP16 (round-to-nearest-even via bit manipulation)
/// and back — the accuracy effect of FP16 deployment.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvertFp16;

impl ConvertFp16 {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        ConvertFp16
    }
}

/// Rounds an f32 to the nearest representable f16 value (returned as f32).
#[must_use]
pub fn round_to_f16(x: f32) -> f32 {
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;
    // Handle zero / subnormal-f32 as zero (far below f16 range anyway).
    if exp == 0 {
        return f32::from_bits(sign);
    }
    if exp == 0xFF {
        return x; // inf / NaN pass through
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflows f16 -> ±inf.
        return f32::from_bits(sign | 0x7F80_0000);
    }
    if unbiased < -24 {
        return f32::from_bits(sign);
    }
    if unbiased < -14 {
        // f16 subnormal: quantize mantissa steps of 2^-24.
        let scale = (2.0f32).powi(24);
        let q = (x * scale).round() / scale;
        return q;
    }
    // Normal range: keep 10 mantissa bits, round to nearest even.
    let shift = 13;
    let round_bit = 1u32 << (shift - 1);
    let sticky_mask = round_bit - 1;
    let mut mant = frac >> shift;
    let round = frac & round_bit != 0;
    let sticky = frac & sticky_mask != 0;
    if round && (sticky || mant & 1 == 1) {
        mant += 1;
    }
    let mut new_exp = exp as u32;
    if mant == 0x400 {
        mant = 0;
        new_exp += 1;
    }
    f32::from_bits(sign | (new_exp << 23) | (mant << shift))
}

impl Pass for ConvertFp16 {
    fn name(&self) -> &str {
        "convert-fp16"
    }

    fn run(&self, mut graph: Graph) -> Result<(Graph, String), ToolchainError> {
        let materialized: Vec<Option<Vec<Tensor>>> = {
            let exec = Runner::builder().build(&graph)?;
            graph
                .nodes()
                .iter()
                .map(|node| {
                    if matches!(node.op, Op::Conv2d(_) | Op::Dense { .. } | Op::BatchNorm) {
                        exec.node_weights(node).ok()
                    } else {
                        None
                    }
                })
                .collect()
        };
        let mut converted = 0usize;
        for (node, weights) in graph.nodes_mut().iter_mut().zip(materialized) {
            let Some(mut weights) = weights else { continue };
            for t in &mut weights {
                for x in t.data_mut() {
                    *x = round_to_f16(*x);
                }
            }
            node.weights = WeightInit::Explicit(weights);
            converted += 1;
        }
        Ok((graph, format!("converted {converted} layers to FP16")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::dataset::gaussian_prototypes;
    use vedliot_nnir::train::{evaluate, mlp, train_mlp, TrainConfig};
    use vedliot_nnir::zoo;

    fn cnn() -> Graph {
        zoo::tiny_cnn("t", Shape::nchw(1, 3, 16, 16), &[8, 16], 4).unwrap()
    }

    #[test]
    fn fusion_removes_batchnorms_and_preserves_output() {
        let g = cnn();
        let bn_before = g.nodes().iter().filter(|n| n.op == Op::BatchNorm).count();
        assert!(bn_before > 0);
        let input = Tensor::random(Shape::nchw(1, 3, 16, 16), 3, 1.0);
        let before = Runner::builder()
            .build(&g)
            .unwrap()
            .execute(std::slice::from_ref(&input), RunOptions::default())
            .unwrap()
            .into_outputs();
        let (fused, detail) = FuseConvBn::new().run(g).unwrap();
        fused.validate().unwrap();
        assert_eq!(
            fused
                .nodes()
                .iter()
                .filter(|n| n.op == Op::BatchNorm)
                .count(),
            0
        );
        assert!(detail.contains(&bn_before.to_string()));
        let after = Runner::builder()
            .build(&fused)
            .unwrap()
            .execute(&[input], RunOptions::default())
            .unwrap()
            .into_outputs();
        let diff = before[0].max_abs_diff(&after[0]).unwrap();
        assert!(diff < 1e-4, "fusion changed outputs by {diff}");
    }

    #[test]
    fn fusion_reduces_node_and_op_count() {
        let g = cnn();
        let n_before = g.nodes().len();
        let (fused, _) = FuseConvBn::new().run(g).unwrap();
        assert!(fused.nodes().len() < n_before);
    }

    #[test]
    fn pruning_reaches_target_sparsity() {
        let g = cnn();
        let (pruned, detail) = PruneConnections::new(0.7).run(g).unwrap();
        pruned.validate().unwrap();
        assert!(detail.contains("70.0%"), "{detail}");
        // Count zeros directly.
        let exec = Runner::builder().build(&pruned).unwrap();
        for node in pruned.nodes() {
            if matches!(node.op, Op::Conv2d(_)) {
                let w = &exec.node_weights(node).unwrap()[0];
                let zeros = w.data().iter().filter(|&&x| x == 0.0).count();
                let frac = zeros as f64 / w.data().len() as f64;
                assert!(frac >= 0.6, "layer {} sparsity {frac}", node.name);
            }
        }
    }

    #[test]
    fn pruning_keeps_large_weights() {
        let mut model = mlp("m", 4, &[], 2).unwrap();
        let data = gaussian_prototypes(&Shape::nf(1, 4), 2, 10, 3.0, 3);
        train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        let exec = Runner::builder().build(&model).unwrap();
        let before = exec.node_weights(&model.nodes()[0]).unwrap()[0].clone();
        let max_before = before.abs_max();
        let (pruned, _) = PruneConnections::new(0.5).run(model).unwrap();
        let exec = Runner::builder().build(&pruned).unwrap();
        let after = exec.node_weights(&pruned.nodes()[0]).unwrap()[0].clone();
        // The single largest weight always survives.
        assert_eq!(after.abs_max(), max_before);
    }

    #[test]
    fn neuron_pruning_shrinks_hidden_layer() {
        let data = gaussian_prototypes(&Shape::nf(1, 12), 3, 30, 3.0, 7);
        let mut model = mlp("m", 12, &[32], 3).unwrap();
        let base_acc = train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        let (pruned, _) = PruneNeurons::new(0.5).run(model).unwrap();
        pruned.validate().unwrap();
        let hidden = pruned
            .nodes()
            .iter()
            .find(|n| n.name == "fc1")
            .expect("hidden layer");
        assert!(matches!(
            hidden.op,
            Op::Dense {
                out_features: 16,
                ..
            }
        ));
        // Accuracy survives structured pruning of a separable problem.
        let acc = evaluate(&pruned, &data).unwrap().accuracy();
        assert!(
            acc > base_acc - 0.15,
            "accuracy dropped {base_acc} -> {acc}"
        );
    }

    #[test]
    fn neuron_pruning_rejects_cnns() {
        let err = PruneNeurons::new(0.5).run(cnn());
        assert!(matches!(err, Err(ToolchainError::UnsupportedGraph { .. })));
    }

    /// Per-tensor symmetric INT8 fake-quantization — the scheme the
    /// pass used before per-channel scales, kept as the comparison
    /// baseline for the accuracy-delta tests.
    fn fake_quant_i8(x: f32, scale: f32) -> f32 {
        if scale == 0.0 {
            return 0.0;
        }
        (x / scale).round().clamp(-127.0, 127.0) * scale
    }

    #[test]
    fn quantization_snaps_weights_to_per_channel_grid() {
        let g = cnn();
        let (quant, _) = QuantizeInt8::new().run(g).unwrap();
        let exec = Runner::builder().build(&quant).unwrap();
        for node in quant.nodes() {
            if matches!(node.op, Op::Conv2d(_)) {
                let w = &exec.node_weights(node).unwrap()[0];
                let payload = w.quant().expect("i8 payload emitted");
                let rows = payload.scales.len();
                let row_len = w.data().len() / rows;
                for (r, &scale) in payload.scales.iter().enumerate() {
                    for (i, &x) in w.data()[r * row_len..][..row_len].iter().enumerate() {
                        // The f32 view is exactly code * row scale.
                        let code = f32::from(payload.codes[r * row_len + i]);
                        assert_eq!(x, code * scale, "row {r} weight {x} off its channel grid");
                    }
                }
            }
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let g = cnn();
        let exec = Runner::builder().build(&g).unwrap();
        let originals: Vec<Option<Tensor>> = g
            .nodes()
            .iter()
            .map(|n| {
                if matches!(n.op, Op::Conv2d(_)) {
                    Some(exec.node_weights(n).unwrap()[0].clone())
                } else {
                    None
                }
            })
            .collect();
        let (quant, _) = QuantizeInt8::new().run(g).unwrap();
        let exec = Runner::builder().build(&quant).unwrap();
        for (node, orig) in quant.nodes().iter().zip(originals) {
            let Some(orig) = orig else { continue };
            let w = &exec.node_weights(node).unwrap()[0];
            let scale = orig.abs_max() / 127.0;
            let diff = w.max_abs_diff(&orig).unwrap();
            assert!(diff <= scale / 2.0 * 1.0001 + 1e-6);
        }
    }

    #[test]
    fn per_channel_scales_shrink_quantization_error_vs_per_tensor() {
        // Channels with very different magnitudes are exactly where the
        // old per-tensor scheme lost accuracy: the largest row set the
        // grid step for every other row. Build such a dense layer and
        // measure both schemes' weight- and output-space damage.
        let dense_graph = |w: Tensor| {
            let out_f = w.shape().dim(0).unwrap();
            let in_f = w.shape().dim(1).unwrap();
            let mut b = GraphBuilder::new("hetero");
            let x = b.input(Shape::nf(1, in_f));
            let fc = b
                .apply_with_weights(
                    "fc",
                    Op::Dense {
                        out_features: out_f,
                        bias: false,
                    },
                    &[x],
                    WeightInit::Explicit(vec![w]),
                )
                .unwrap();
            b.finish(vec![fc])
        };
        let run = |g: &Graph, input: &Tensor| {
            Runner::builder()
                .build(g)
                .unwrap()
                .execute(std::slice::from_ref(input), RunOptions::default())
                .unwrap()
                .into_outputs()
                .remove(0)
        };

        let mut original = Tensor::random(Shape::nf(4, 16), 21, 1.0);
        // Spread row magnitudes across four orders of magnitude.
        {
            let data = original.data_mut();
            for (r, gain) in [100.0f32, 1.0, 0.1, 0.01].into_iter().enumerate() {
                for x in &mut data[r * 16..][..16] {
                    *x *= gain;
                }
            }
        }
        let mut per_channel = original.clone();
        per_channel.quantize_i8_per_channel();
        let mut per_tensor = original.clone();
        let tensor_scale = per_tensor.abs_max() / 127.0;
        for x in per_tensor.data_mut() {
            *x = fake_quant_i8(*x, tensor_scale);
        }

        let pc_err = per_channel.max_abs_diff(&original).unwrap();
        let pt_err = per_tensor.max_abs_diff(&original).unwrap();
        assert!(
            pc_err < pt_err,
            "weight error: per-channel {pc_err} vs per-tensor {pt_err}"
        );

        let input = Tensor::random(Shape::nf(1, 16), 33, 1.0);
        let float_out = run(&dense_graph(original), &input);
        let pc_delta = run(&dense_graph(per_channel), &input)
            .max_abs_diff(&float_out)
            .unwrap();
        let pt_delta = run(&dense_graph(per_tensor), &input)
            .max_abs_diff(&float_out)
            .unwrap();
        assert!(
            pc_delta < pt_delta,
            "output delta: per-channel {pc_delta} vs per-tensor {pt_delta}"
        );
    }

    #[test]
    fn per_channel_accuracy_beats_per_tensor_on_trained_model() {
        // The compressed-zoo claim: per-channel PTQ accuracy is no
        // worse than the per-tensor scheme on a trained model.
        let data = gaussian_prototypes(&Shape::nf(1, 16), 4, 40, 3.0, 13);
        let mut model = mlp("m", 16, &[24], 4).unwrap();
        train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();

        // Per-tensor baseline, applied the way the pass used to.
        let mut per_tensor = model.clone();
        let materialized: Vec<Option<Vec<Tensor>>> = {
            let exec = Runner::builder().build(&per_tensor).unwrap();
            per_tensor
                .nodes()
                .iter()
                .map(|n| matches!(n.op, Op::Dense { .. }).then(|| exec.node_weights(n).unwrap()))
                .collect()
        };
        for (node, weights) in per_tensor.nodes_mut().iter_mut().zip(materialized) {
            let Some(mut weights) = weights else { continue };
            let scale = weights[0].abs_max() / 127.0;
            for x in weights[0].data_mut() {
                *x = fake_quant_i8(*x, scale);
            }
            node.weights = WeightInit::Explicit(weights);
        }
        let pt_acc = evaluate(&per_tensor, &data).unwrap().accuracy();

        let (per_channel, _) = QuantizeInt8::new().run(model).unwrap();
        let pc_acc = evaluate(&per_channel, &data).unwrap().accuracy();
        assert!(
            pc_acc >= pt_acc,
            "per-channel accuracy {pc_acc} < per-tensor {pt_acc}"
        );
    }

    #[test]
    fn quantized_model_accuracy_loss_is_negligible() {
        // The §III claim: "quantize parameters … with negligible accuracy
        // loss" on a well-separated problem.
        let data = gaussian_prototypes(&Shape::nf(1, 16), 4, 40, 3.0, 13);
        let mut model = mlp("m", 16, &[24], 4).unwrap();
        let base = train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        let (quant, _) = QuantizeInt8::new().run(model).unwrap();
        let acc = evaluate(&quant, &data).unwrap().accuracy();
        assert!(acc >= base - 0.05, "INT8 accuracy {acc} vs float {base}");
    }

    #[test]
    fn calibration_counts_activation_scales() {
        let g = cnn();
        let calib = vec![
            Tensor::random(Shape::nchw(1, 3, 16, 16), 1, 1.0),
            Tensor::random(Shape::nchw(1, 3, 16, 16), 2, 1.0),
        ];
        let (_, detail) = QuantizeInt8::with_calibration(calib).run(g).unwrap();
        assert!(!detail.contains("(0 activation scales"), "{detail}");
    }

    #[test]
    fn calibration_inserts_fake_quant_nodes() {
        let g = cnn();
        let nodes_before = g.nodes().len();
        let calib = vec![Tensor::random(Shape::nchw(1, 3, 16, 16), 1, 1.0)];
        let (quantized, _) = QuantizeInt8::with_calibration(calib).run(g).unwrap();
        quantized.validate().unwrap();
        let fq = quantized
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::FakeQuant { .. }))
            .count();
        assert!(fq > nodes_before / 2, "only {fq} FakeQuant nodes inserted");
        // The quantized graph still executes.
        let out = Runner::builder()
            .build(&quantized)
            .unwrap()
            .execute(
                &[Tensor::random(Shape::nchw(1, 3, 16, 16), 9, 1.0)],
                RunOptions::default(),
            )
            .unwrap()
            .into_outputs();
        assert_eq!(out[0].shape().dims(), &[1, 4]);
    }

    #[test]
    fn full_int8_quantization_keeps_mlp_accuracy() {
        // Weights AND activations on the INT8 grid — the deployable PTQ
        // accuracy measurement.
        let data = gaussian_prototypes(&Shape::nf(1, 16), 3, 30, 3.0, 19);
        let mut model = mlp("full-ptq", 16, &[24], 3).unwrap();
        let base = train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        let calib: Vec<Tensor> = data.samples.iter().take(8).cloned().collect();
        let (quantized, _) = QuantizeInt8::with_calibration(calib).run(model).unwrap();
        let acc = evaluate(&quantized, &data).unwrap().accuracy();
        assert!(
            acc >= base - 0.05,
            "full INT8 accuracy {acc} vs float {base}"
        );
    }

    #[test]
    fn int8_kernel_matches_fake_quant_reference_on_eligible_zoo_models() {
        // The INT8 numeric contract: on an I201-eligible calibrated
        // graph the i8-weight / i32-accumulate kernel differs from the
        // fake-quant f32 reference only by f32 summation rounding —
        // within 1e-4 * max(1, |out|_inf).
        let models: Vec<(Graph, Shape)> = vec![
            (zoo::lenet5(10).unwrap(), Shape::nchw(1, 1, 28, 28)),
            (
                zoo::tiny_cnn("gesture", Shape::nchw(1, 3, 16, 16), &[8, 16], 4).unwrap(),
                Shape::nchw(1, 3, 16, 16),
            ),
            (
                zoo::conv1d_classifier("motor", 2, 64, &[8, 16], 3).unwrap(),
                Shape::nchw(1, 2, 1, 64),
            ),
        ];
        for (model, shape) in models {
            let name = model.name().to_string();
            let calib: Vec<Tensor> = (0..4)
                .map(|s| Tensor::random(shape.clone(), s + 1, 1.0))
                .collect();
            let (quantized, _) = QuantizeInt8::with_calibration(calib).run(model).unwrap();
            assert!(
                analysis::int8_ready(&quantized),
                "{name} not I201-eligible after calibration"
            );
            let mut int8 = Runner::builder().build(&quantized).unwrap();
            assert!(int8.uses_int8(), "{name}: INT8 plan did not engage");
            let mut reference = Runner::builder().int8(false).build(&quantized).unwrap();
            let input = Tensor::random(shape, 99, 1.0);
            let got = int8
                .execute(
                    std::slice::from_ref(&input),
                    RunOptions::new().profile(true),
                )
                .unwrap();
            assert!(got.profile().unwrap().int8_nodes() > 0, "{name}");
            let want = reference.execute(&[input], RunOptions::default()).unwrap();
            let diff = got.outputs()[0].max_abs_diff(&want.outputs()[0]).unwrap();
            let bound = 1e-4 * want.outputs()[0].abs_max().max(1.0);
            assert!(
                diff <= bound,
                "{name}: INT8 vs fake-quant diff {diff} > {bound}"
            );
        }
    }

    #[test]
    fn fp16_round_trip_properties() {
        // Exactly representable values pass through.
        for x in [0.0f32, 1.0, -2.0, 0.5, 1024.0] {
            assert_eq!(round_to_f16(x), x);
        }
        // Relative error bounded by 2^-11 in the normal range.
        for i in 1..100 {
            let x = 0.123 * i as f32;
            let r = round_to_f16(x);
            assert!(((r - x) / x).abs() < 1.0 / 2048.0, "{x} -> {r}");
        }
        // Overflow saturates to infinity.
        assert!(round_to_f16(1e6).is_infinite());
        assert!(round_to_f16(-1e6).is_infinite());
        // Underflow flushes to zero.
        assert_eq!(round_to_f16(1e-9), 0.0);
    }

    #[test]
    fn fp16_pass_touches_all_weight_layers() {
        let g = cnn();
        let (converted, detail) = ConvertFp16::new().run(g).unwrap();
        converted.validate().unwrap();
        assert!(detail.starts_with("converted"));
        assert!(converted
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Conv2d(_) | Op::BatchNorm))
            .all(|n| n.weights.is_explicit()));
    }

    #[test]
    fn pass_manager_runs_in_order_and_logs() {
        let g = cnn();
        let mut pm = PassManager::new();
        pm.push(FuseConvBn::new());
        pm.push(PruneConnections::new(0.5));
        pm.push(QuantizeInt8::new());
        assert_eq!(pm.len(), 3);
        let (out, logs) = pm.run(g).unwrap();
        out.validate().unwrap();
        assert_eq!(
            logs.iter().map(|l| l.pass.as_str()).collect::<Vec<_>>(),
            vec!["fuse-conv-bn", "prune-connections", "quantize-int8"]
        );
    }

    #[test]
    #[should_panic(expected = "sparsity must be in [0, 1)")]
    fn full_sparsity_is_rejected() {
        let _ = PruneConnections::new(1.0);
    }

    /// A pass that breaks a graph invariant (wrong explicit weight
    /// shape, smuggled in through `nodes_mut`).
    struct CorruptingPass;

    impl Pass for CorruptingPass {
        fn name(&self) -> &str {
            "corrupting-pass"
        }

        fn run(&self, mut graph: Graph) -> Result<(Graph, String), ToolchainError> {
            for node in graph.nodes_mut() {
                if matches!(node.op, Op::Conv2d(_)) {
                    node.weights =
                        WeightInit::Explicit(vec![Tensor::zeros(Shape::new(vec![1, 1, 1, 1]))]);
                    break;
                }
            }
            Ok((graph, "corrupted a conv".into()))
        }
    }

    /// A pass that silently changes the model's I/O interface.
    struct RebatchingPass;

    impl Pass for RebatchingPass {
        fn name(&self) -> &str {
            "rebatching-pass"
        }

        fn run(&self, graph: Graph) -> Result<(Graph, String), ToolchainError> {
            Ok((graph.with_batch(2)?, "doubled the batch".into()))
        }
    }

    #[test]
    fn verify_after_transform_rejects_invariant_breakers() {
        let mut pm = PassManager::new();
        pm.push(CorruptingPass);
        let err = pm.run(cnn()).unwrap_err();
        match err {
            ToolchainError::Graph(vedliot_nnir::NnirError::VerifierRejected {
                code,
                detail,
                ..
            }) => {
                assert_eq!(code, "V005");
                assert!(detail.contains("corrupting-pass"), "{detail}");
            }
            other => panic!("expected VerifierRejected, got {other:?}"),
        }
    }

    #[test]
    fn verify_after_transform_rejects_interface_changes() {
        let mut pm = PassManager::new();
        pm.push(RebatchingPass);
        let err = pm.run(cnn()).unwrap_err();
        match err {
            ToolchainError::Graph(vedliot_nnir::NnirError::VerifierRejected { code, .. }) => {
                assert_eq!(code, "T001");
            }
            other => panic!("expected VerifierRejected, got {other:?}"),
        }
    }
}
