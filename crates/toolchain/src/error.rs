//! Toolchain error type.

use std::fmt;
use vedliot_nnir::NnirError;

/// Error produced by optimization passes, compression or deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolchainError {
    /// The underlying graph operation failed.
    Graph(NnirError),
    /// A pass received a graph it cannot handle.
    UnsupportedGraph {
        /// Pass name.
        pass: String,
        /// Why the graph is unsupported.
        detail: String,
    },
    /// A configuration parameter was out of range.
    InvalidConfig(String),
    /// Deployment/performance modelling failed.
    Deployment(String),
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Graph(e) => write!(f, "graph error: {e}"),
            ToolchainError::UnsupportedGraph { pass, detail } => {
                write!(f, "{pass} cannot process this graph: {detail}")
            }
            ToolchainError::InvalidConfig(detail) => write!(f, "invalid configuration: {detail}"),
            ToolchainError::Deployment(detail) => write!(f, "deployment failure: {detail}"),
        }
    }
}

impl std::error::Error for ToolchainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ToolchainError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnirError> for ToolchainError {
    fn from(e: NnirError) -> Self {
        ToolchainError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_sourced() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ToolchainError>();
        let e = ToolchainError::from(NnirError::GraphCyclic);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("cycle"));
    }
}
