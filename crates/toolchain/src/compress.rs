//! The Deep Compression pipeline (Han, Mao & Dally — the paper's
//! reference [7] and the source of its "compressed down to 49x" claim).
//!
//! Three stages, exactly as in the original: (1) connection pruning,
//! (2) trained quantization via k-means weight sharing, (3) Huffman
//! coding of the cluster indices and the zero-run lengths of the sparse
//! weight stream. Compressed sizes are *real encoded sizes* (payload +
//! codebooks + Huffman tables), not entropy estimates, and the
//! compressed model can be reconstructed exactly.

use crate::error::ToolchainError;
use crate::huffman;
use crate::kmeans::kmeans_1d;
use serde::{Deserialize, Serialize};
use vedliot_nnir::exec::Runner;
use vedliot_nnir::graph::WeightInit;
use vedliot_nnir::{Graph, Op, Tensor};

/// Configuration of the Deep Compression pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// Fraction of weights pruned per layer (Han prunes ~90% of FC).
    pub sparsity: f64,
    /// Bits per cluster index (2^bits centroids; Han uses 5 for FC).
    pub cluster_bits: u8,
    /// Maximum zero-run length symbol (runs longer than this are split).
    pub max_run: u16,
    /// k-means iterations.
    pub kmeans_iterations: usize,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            sparsity: 0.9,
            cluster_bits: 5,
            max_run: 255,
            kmeans_iterations: 25,
        }
    }
}

/// Per-layer compression accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCompression {
    /// Layer name.
    pub name: String,
    /// Original dense f32 size in bytes (main weights only).
    pub original_bytes: usize,
    /// Encoded cluster-index stream size (payload + Huffman table).
    pub index_bytes: usize,
    /// Encoded zero-run stream size.
    pub run_bytes: usize,
    /// Codebook size (centroids at f32).
    pub codebook_bytes: usize,
    /// Number of surviving (non-zero) weights.
    pub nonzeros: usize,
    /// Total weight count.
    pub total_weights: usize,
}

impl LayerCompression {
    /// Total compressed size in bytes.
    #[must_use]
    pub fn compressed_bytes(&self) -> usize {
        self.index_bytes + self.run_bytes + self.codebook_bytes
    }

    /// Compression ratio for this layer.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes() == 0 {
            return 0.0;
        }
        self.original_bytes as f64 / self.compressed_bytes() as f64
    }
}

/// Whole-model compression report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionReport {
    /// Model name.
    pub model: String,
    /// Configuration used.
    pub config: CompressionConfig,
    /// Per-layer records.
    pub layers: Vec<LayerCompression>,
    /// Bias and other uncompressed parameter bytes (stored raw in both
    /// the original and compressed model).
    pub raw_bytes: usize,
}

impl CompressionReport {
    /// Original model size in bytes (all parameters at f32).
    #[must_use]
    pub fn original_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.original_bytes).sum::<usize>() + self.raw_bytes
    }

    /// Compressed model size in bytes.
    #[must_use]
    pub fn compressed_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(LayerCompression::compressed_bytes)
            .sum::<usize>()
            + self.raw_bytes
    }

    /// Whole-model compression ratio — the paper's "49×" quantity.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let c = self.compressed_bytes();
        if c == 0 {
            return 0.0;
        }
        self.original_bytes() as f64 / c as f64
    }

    /// Overall weight sparsity achieved by the pruning stage.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.total_weights).sum();
        let nz: usize = self.layers.iter().map(|l| l.nonzeros).sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - nz as f64 / total as f64
    }
}

/// Encodes one pruned, clustered weight stream and returns exact sizes.
///
/// The sparse format follows Deep Compression: for every non-zero weight
/// we store the zero-run distance from the previous non-zero (split when
/// it exceeds `max_run`, inserting a phantom zero-valued entry exactly as
/// Han et al. do) and the cluster index; both streams are Huffman-coded.
fn encode_sparse(assignments: &[Option<u16>], clusters: usize, max_run: u16) -> (usize, usize) {
    let mut runs: Vec<u16> = Vec::new();
    let mut indices: Vec<u16> = Vec::new();
    let mut run = 0u16;
    for a in assignments {
        match a {
            Some(idx) => {
                runs.push(run);
                indices.push(*idx);
                run = 0;
            }
            None => {
                run += 1;
                if run == max_run {
                    // Phantom entry: maximal run with a reserved index.
                    runs.push(run);
                    indices.push(0);
                    run = 0;
                }
            }
        }
    }
    let run_stream = huffman::encode(&runs, max_run as usize + 1);
    let index_stream = huffman::encode(&indices, clusters.max(1));
    (run_stream.total_bytes(), index_stream.total_bytes())
}

/// Runs the full pipeline on a model, returning the reconstructed
/// (pruned + clustered) graph and the size accounting.
///
/// The returned graph is exactly what a decoder would reconstruct: every
/// surviving weight is replaced by its cluster centroid. Accuracy of the
/// compressed model is measured by evaluating this graph.
///
/// # Errors
///
/// Returns [`ToolchainError::InvalidConfig`] for out-of-range parameters
/// or propagates graph errors.
pub fn deep_compress(
    graph: &Graph,
    config: &CompressionConfig,
) -> Result<(Graph, CompressionReport), ToolchainError> {
    if !(0.0..1.0).contains(&config.sparsity) {
        return Err(ToolchainError::InvalidConfig(format!(
            "sparsity {} outside [0, 1)",
            config.sparsity
        )));
    }
    if config.cluster_bits == 0 || config.cluster_bits > 12 {
        return Err(ToolchainError::InvalidConfig(format!(
            "cluster_bits {} outside 1..=12",
            config.cluster_bits
        )));
    }

    let mut out = graph.clone();
    let materialized: Vec<Option<Vec<Tensor>>> = {
        let exec = Runner::builder().build(&out)?;
        out.nodes()
            .iter()
            .map(|node| {
                if matches!(node.op, Op::Conv2d(_) | Op::Dense { .. }) {
                    exec.node_weights(node).ok()
                } else {
                    None
                }
            })
            .collect()
    };

    let mut layers = Vec::new();
    let mut raw_bytes = 0usize;
    // Count non-compressible parameters (biases, batch norms).
    {
        let exec = Runner::builder().build(graph)?;
        for node in graph.nodes() {
            match node.op {
                Op::Conv2d(_) | Op::Dense { .. } => {
                    if let Ok(w) = exec.node_weights(node) {
                        for t in w.iter().skip(1) {
                            raw_bytes += t.shape().elem_count() * 4;
                        }
                    }
                }
                Op::BatchNorm => {
                    if let Ok(w) = exec.node_weights(node) {
                        for t in &w {
                            raw_bytes += t.shape().elem_count() * 4;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Stage 1 threshold: a single *global* magnitude cut across every
    // prunable tensor. A uniform per-layer quota starves small decisive
    // layers (a 4-class head pruned to 10% keeps ~6 weights and the
    // model collapses); ranking all weights together moves the pruning
    // budget to the wide hidden layers where most near-zero weights
    // actually live, at identical overall sparsity.
    let threshold = {
        let mut magnitudes: Vec<f32> = materialized
            .iter()
            .flatten()
            .flat_map(|w| w[0].data().iter().map(|x| x.abs()))
            .collect();
        let total = magnitudes.len();
        let keep = total - ((total as f64) * config.sparsity).round() as usize;
        magnitudes.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        if keep == 0 {
            f32::INFINITY
        } else if keep >= total {
            0.0
        } else {
            magnitudes[keep - 1]
        }
    };

    for (node, weights) in out.nodes_mut().iter_mut().zip(materialized) {
        let Some(mut weights) = weights else { continue };
        let w = &mut weights[0];
        let n = w.data().len();
        let mut surviving: Vec<f32> = Vec::new();
        let mut survivor_mask: Vec<bool> = Vec::with_capacity(n);
        for &x in w.data() {
            let alive = x.abs() >= threshold && threshold != f32::INFINITY && x != 0.0;
            survivor_mask.push(alive);
            if alive {
                surviving.push(x);
            }
        }

        // Stage 2: weight sharing via k-means.
        let k = 1usize << config.cluster_bits;
        let clustering = kmeans_1d(&surviving, k, config.kmeans_iterations);

        // Stage 3: Huffman-coded sparse encoding.
        let mut assignments: Vec<Option<u16>> = Vec::with_capacity(n);
        let mut next = 0usize;
        for &alive in &survivor_mask {
            if alive {
                assignments.push(Some(clustering.assignments[next]));
                next += 1;
            } else {
                assignments.push(None);
            }
        }
        let (run_bytes, index_bytes) = encode_sparse(
            &assignments,
            clustering.centroids.len().max(1),
            config.max_run,
        );

        // Write reconstructed weights back.
        let rec = clustering.reconstruct();
        let mut next = 0usize;
        for (x, &alive) in w.data_mut().iter_mut().zip(survivor_mask.iter()) {
            *x = if alive {
                let v = rec[next];
                next += 1;
                v
            } else {
                0.0
            };
        }
        node.weights = WeightInit::Explicit(weights);

        layers.push(LayerCompression {
            name: node.name.clone(),
            original_bytes: n * 4,
            index_bytes,
            run_bytes,
            codebook_bytes: clustering.centroids.len() * 4,
            nonzeros: surviving.len(),
            total_weights: n,
        });
    }

    out.validate()?;
    Ok((
        out,
        CompressionReport {
            model: graph.name().to_string(),
            config: *config,
            layers,
            raw_bytes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedliot_nnir::dataset::gaussian_prototypes;
    use vedliot_nnir::train::{evaluate, mlp, train_mlp, TrainConfig};
    use vedliot_nnir::Shape;

    fn trained_mlp() -> (Graph, vedliot_nnir::dataset::ClassificationSet) {
        let data = gaussian_prototypes(&Shape::nf(1, 64), 4, 40, 3.0, 21);
        let mut model = mlp("lenet-300-100-ish", 64, &[48, 24], 4).unwrap();
        train_mlp(&mut model, &data, &TrainConfig::default()).unwrap();
        (model, data)
    }

    #[test]
    fn compression_achieves_order_of_magnitude_ratio() {
        let (model, _) = trained_mlp();
        let (_, report) = deep_compress(&model, &CompressionConfig::default()).unwrap();
        let ratio = report.ratio();
        assert!(ratio > 8.0, "compression ratio {ratio:.1} too small");
        assert!(report.sparsity() > 0.85);
    }

    #[test]
    fn compressed_model_keeps_accuracy() {
        // §III: "compressed … with negligible accuracy loss".
        let (model, data) = trained_mlp();
        let base = evaluate(&model, &data).unwrap().accuracy();
        let (compressed, _) = deep_compress(
            &model,
            &CompressionConfig {
                sparsity: 0.8,
                ..CompressionConfig::default()
            },
        )
        .unwrap();
        let acc = evaluate(&compressed, &data).unwrap().accuracy();
        assert!(
            acc >= base - 0.08,
            "accuracy dropped too far: {base:.3} -> {acc:.3}"
        );
    }

    #[test]
    fn more_sparsity_means_smaller_model() {
        let (model, _) = trained_mlp();
        let lo = deep_compress(
            &model,
            &CompressionConfig {
                sparsity: 0.5,
                ..CompressionConfig::default()
            },
        )
        .unwrap()
        .1;
        let hi = deep_compress(
            &model,
            &CompressionConfig {
                sparsity: 0.95,
                ..CompressionConfig::default()
            },
        )
        .unwrap()
        .1;
        assert!(hi.compressed_bytes() < lo.compressed_bytes());
        assert!(hi.ratio() > lo.ratio());
    }

    #[test]
    fn fewer_cluster_bits_shrink_payload() {
        let (model, _) = trained_mlp();
        let b8 = deep_compress(
            &model,
            &CompressionConfig {
                cluster_bits: 8,
                ..CompressionConfig::default()
            },
        )
        .unwrap()
        .1;
        let b3 = deep_compress(
            &model,
            &CompressionConfig {
                cluster_bits: 3,
                ..CompressionConfig::default()
            },
        )
        .unwrap()
        .1;
        assert!(b3.compressed_bytes() <= b8.compressed_bytes());
    }

    #[test]
    fn reconstructed_weights_use_only_centroid_values() {
        let (model, _) = trained_mlp();
        let config = CompressionConfig {
            cluster_bits: 3,
            ..CompressionConfig::default()
        };
        let (compressed, _) = deep_compress(&model, &config).unwrap();
        let exec = Runner::builder().build(&compressed).unwrap();
        for node in compressed.nodes() {
            if matches!(node.op, Op::Dense { .. }) {
                let w = &exec.node_weights(node).unwrap()[0];
                let mut distinct: Vec<f32> =
                    w.data().iter().copied().filter(|&x| x != 0.0).collect();
                distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
                distinct.dedup();
                assert!(
                    distinct.len() <= 8,
                    "layer {} has {} distinct non-zero values with 3-bit clustering",
                    node.name,
                    distinct.len()
                );
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (model, _) = trained_mlp();
        assert!(deep_compress(
            &model,
            &CompressionConfig {
                sparsity: 1.0,
                ..CompressionConfig::default()
            }
        )
        .is_err());
        assert!(deep_compress(
            &model,
            &CompressionConfig {
                cluster_bits: 0,
                ..CompressionConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn report_accounting_is_self_consistent() {
        let (model, _) = trained_mlp();
        let (_, report) = deep_compress(&model, &CompressionConfig::default()).unwrap();
        let layer_sum: usize = report
            .layers
            .iter()
            .map(LayerCompression::compressed_bytes)
            .sum();
        assert_eq!(report.compressed_bytes(), layer_sum + report.raw_bytes);
        for layer in &report.layers {
            assert!(layer.nonzeros <= layer.total_weights);
            assert!(layer.ratio() > 1.0, "layer {} did not compress", layer.name);
        }
    }
}
