//! Whole-zoo lint driver: the `vedliot lint` / `harness lint` backend.
//!
//! Runs the full static analyzer ([`vedliot_nnir::analysis`]) over every
//! evaluation network in the zoo *and* over optimized variants of the
//! small networks (fused, pruned, quantized, FP16-converted,
//! deep-compressed). The toolchain's verify-after-transform gate already
//! guarantees the variants are Error-clean; the lint sweep additionally
//! surfaces Warning/Info findings (dead nodes, aliased seeds, batch-dim
//! drift, INT8 saturation risk) that the hard gates deliberately allow.

use crate::compress::{deep_compress, CompressionConfig};
use crate::error::ToolchainError;
use crate::passes::{
    ConvertFp16, FuseConvBn, Pass, PassManager, PruneChannels, PruneConnections, QuantizeInt8,
};
use vedliot_nnir::analysis::{Analyzer, Report, Severity, Totals};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};

/// One linted model (a zoo network or an optimized variant of one).
#[derive(Debug)]
pub struct LintEntry {
    /// Display name, e.g. `lenet5` or `tiny-cnn + quantize-int8`.
    pub model: String,
    /// The full analyzer's findings for this model.
    pub report: Report,
}

/// Result of linting the whole suite.
#[derive(Debug)]
pub struct LintSummary {
    /// One entry per linted model, in suite order.
    pub entries: Vec<LintEntry>,
}

impl LintSummary {
    /// Suite-wide severity totals, accumulated with the shared
    /// [`Totals`] counter every diagnostic renderer uses.
    #[must_use]
    pub fn totals(&self) -> Totals {
        let mut totals = Totals::default();
        for entry in &self.entries {
            totals.accumulate(entry.report.totals());
        }
        totals
    }

    /// Total findings at exactly the given severity across all models.
    #[must_use]
    pub fn count_at(&self, severity: Severity) -> usize {
        self.totals().at(severity)
    }

    /// Whether every model is clean at the given severity or above.
    #[must_use]
    pub fn is_clean(&self, severity: Severity) -> bool {
        self.entries.iter().all(|e| e.report.is_clean(severity))
    }

    /// Renders the per-model reports plus a one-line totals footer.
    /// Per-model lines and the footer both go through the shared
    /// [`vedliot_nnir::analysis`] diagnostic formatter.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.report.render(&entry.model));
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} models, {}\n",
            self.entries.len(),
            self.totals()
        ));
        out
    }
}

/// The small network the optimized variants are derived from.
fn variant_base() -> Result<Graph, ToolchainError> {
    Ok(zoo::tiny_cnn(
        "tiny-cnn",
        Shape::nchw(1, 3, 16, 16),
        &[8, 16],
        4,
    )?)
}

fn lint(analyzer: &Analyzer, entries: &mut Vec<LintEntry>, model: &str, graph: &Graph) {
    entries.push(LintEntry {
        model: model.to_string(),
        report: analyzer.analyze(graph),
    });
}

/// Runs one pass over the variant base and lints the result.
fn lint_variant(
    analyzer: &Analyzer,
    entries: &mut Vec<LintEntry>,
    pass: impl Pass + 'static,
) -> Result<(), ToolchainError> {
    let name = format!("tiny-cnn + {}", pass.name());
    let mut pm = PassManager::new();
    pm.push(pass);
    let (optimized, _) = pm.run(variant_base()?)?;
    lint(analyzer, entries, &name, &optimized);
    Ok(())
}

/// Lints every zoo model plus optimized/compressed variants.
///
/// This is the backend of `vedliot lint` and the harness `lint`
/// experiment. The suite covers:
///
/// * all seven zoo networks (LeNet-5 through YOLOv4), and
/// * the small CNN after each toolchain pass (fusion, connection and
///   channel pruning, calibrated INT8 quantization, FP16 conversion)
///   and after the Deep Compression pipeline.
///
/// # Errors
///
/// Propagates graph-construction or pass failures — including
/// [`vedliot_nnir::NnirError::VerifierRejected`] from the toolchain's
/// verify-after-transform gate; the lint sweep itself never fails on
/// findings (findings go in the [`LintSummary`]).
pub fn lint_suite() -> Result<LintSummary, ToolchainError> {
    let analyzer = Analyzer::full();
    let mut entries = Vec::new();

    // The whole zoo.
    lint(&analyzer, &mut entries, "lenet5", &zoo::lenet5(10)?);
    lint(&analyzer, &mut entries, "tiny-cnn", &variant_base()?);
    lint(
        &analyzer,
        &mut entries,
        "conv1d-classifier",
        &zoo::conv1d_classifier("conv1d", 1, 64, &[8, 16], 3)?,
    );
    lint(
        &analyzer,
        &mut entries,
        "mobilenet-v3-large",
        &zoo::mobilenet_v3_large(100)?,
    );
    lint(&analyzer, &mut entries, "resnet50", &zoo::resnet50(10)?);
    lint(
        &analyzer,
        &mut entries,
        "efficientnet-v2-s",
        &zoo::efficientnet_v2_s(100)?,
    );
    lint(&analyzer, &mut entries, "yolov4", &zoo::yolov4(416, 80)?);

    // Optimized variants of the small CNN, one per toolchain pass.
    lint_variant(&analyzer, &mut entries, FuseConvBn::new())?;
    lint_variant(&analyzer, &mut entries, PruneConnections::new(0.5))?;
    lint_variant(&analyzer, &mut entries, PruneChannels::new(0.5))?;
    let calib = vec![Tensor::random(Shape::nchw(1, 3, 16, 16), 7, 1.0)];
    lint_variant(
        &analyzer,
        &mut entries,
        QuantizeInt8::with_calibration(calib),
    )?;
    lint_variant(&analyzer, &mut entries, ConvertFp16::new())?;

    // The Deep Compression pipeline's decoded model.
    let (compressed, _) = deep_compress(
        &variant_base()?,
        &CompressionConfig {
            sparsity: 0.5,
            ..CompressionConfig::default()
        },
    )?;
    lint(
        &analyzer,
        &mut entries,
        "tiny-cnn + deep-compress",
        &compressed,
    );

    Ok(LintSummary { entries })
}

// --------------------------------------------------------------------
// Dataflow-analysis report (`vedliot lint --analyze`)
// --------------------------------------------------------------------

/// One model's dataflow-analysis summary — a `vedliot lint --analyze`
/// report row: tensor liveness, the arena memory plan and the
/// quant-safety verdict counts.
#[derive(Debug)]
pub struct AnalyzeEntry {
    /// Model name.
    pub model: String,
    /// Value tensors in the graph.
    pub tensors: usize,
    /// Values no consumer or graph output ever reads (W107).
    pub dead_values: usize,
    /// Arena slots the memory plan allocates.
    pub plan_slots: usize,
    /// Peak value-arena bytes under the plan.
    pub peak_bytes: u64,
    /// Value-arena bytes of the one-slot-per-tensor layout.
    pub unplanned_bytes: u64,
    /// Nodes the quant-safety dataflow analysis proves INT8-eligible.
    pub int8_proven: usize,
    /// Worst-case |activation| the value-range analysis propagates to
    /// any graph output (inputs seeded at `|x| <= 1`).
    pub output_absmax: f32,
}

impl AnalyzeEntry {
    /// Fractional peak-memory reduction of the plan (`0.25` = 25%).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.unplanned_bytes == 0 {
            0.0
        } else {
            1.0 - self.peak_bytes as f64 / self.unplanned_bytes as f64
        }
    }
}

/// Runs the dataflow analyses (liveness, value ranges, quant safety)
/// and the arena memory planner over one graph.
#[must_use]
pub fn analyze_model(graph: &Graph) -> AnalyzeEntry {
    use vedliot_nnir::analysis::{value_ranges, Liveness, QuantSafety};
    use vedliot_nnir::exec::MemoryPlan;

    let live = Liveness::of(graph);
    let plan = MemoryPlan::plan(graph);
    let ranges = value_ranges(graph, 1.0);
    let output_absmax = graph
        .outputs()
        .iter()
        .filter_map(|t| ranges.get(t.0))
        .map(|iv| iv.abs_max())
        .fold(0.0f32, f32::max);
    AnalyzeEntry {
        model: graph.name().to_string(),
        tensors: graph.tensor_count(),
        dead_values: live.dead_values(graph).len(),
        plan_slots: plan.slot_count(),
        peak_bytes: plan.peak_bytes(),
        unplanned_bytes: plan.unplanned_bytes(),
        int8_proven: QuantSafety::of(graph).eligible_count(),
        output_absmax,
    }
}

/// Analyzes every zoo network — the backend of `vedliot lint
/// --analyze`.
///
/// # Errors
///
/// Propagates zoo graph-construction failures.
pub fn analyze_suite() -> Result<Vec<AnalyzeEntry>, ToolchainError> {
    Ok(vec![
        analyze_model(&zoo::lenet5(10)?),
        analyze_model(&variant_base()?),
        analyze_model(&zoo::conv1d_classifier("conv1d", 1, 64, &[8, 16], 3)?),
        analyze_model(&zoo::mobilenet_v3_large(100)?),
        analyze_model(&zoo::resnet50(10)?),
        analyze_model(&zoo::efficientnet_v2_s(100)?),
        analyze_model(&zoo::yolov4(416, 80)?),
    ])
}

/// Renders the per-model analysis rows plus a totals footer.
#[must_use]
pub fn render_analysis(entries: &[AnalyzeEntry]) -> String {
    let mut out = String::from(
        "model                 tensors  dead  slots  peak_bytes  unplanned_bytes  saved  int8  |out|max\n",
    );
    for e in entries {
        out.push_str(&format!(
            "{:<21} {:>7} {:>5} {:>6} {:>11} {:>16} {:>5.1}% {:>5} {:>9.3e}\n",
            e.model,
            e.tensors,
            e.dead_values,
            e.plan_slots,
            e.peak_bytes,
            e.unplanned_bytes,
            e.reduction() * 100.0,
            e.int8_proven,
            e.output_absmax,
        ));
    }
    let peak: u64 = entries.iter().map(|e| e.peak_bytes).sum();
    let unplanned: u64 = entries.iter().map(|e| e.unplanned_bytes).sum();
    let saved = if unplanned == 0 {
        0.0
    } else {
        1.0 - peak as f64 / unplanned as f64
    };
    out.push_str(&format!(
        "analyze: {} models, {peak} peak bytes planned vs {unplanned} unplanned ({:.1}% saved)\n",
        entries.len(),
        saved * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_zoo_and_variants() {
        let summary = lint_suite().unwrap();
        assert!(
            summary.entries.len() >= 13,
            "expected zoo + variants, got {}",
            summary.entries.len()
        );
        let names: Vec<&str> = summary.entries.iter().map(|e| e.model.as_str()).collect();
        assert!(names.contains(&"resnet50"));
        assert!(names.contains(&"tiny-cnn + quantize-int8"));
        assert!(names.contains(&"tiny-cnn + deep-compress"));
    }

    #[test]
    fn suite_is_error_clean() {
        // Acceptance gate: every zoo model and every optimized variant
        // lints clean at Error severity.
        let summary = lint_suite().unwrap();
        for entry in &summary.entries {
            assert!(
                entry.report.is_clean(Severity::Error),
                "{} has errors:\n{}",
                entry.model,
                entry.report.render(&entry.model)
            );
        }
    }

    #[test]
    fn suite_is_warning_clean() {
        // Regression for the lint-driven sweep: the zoo builders once
        // reused block-local node names ("residual", "add", "res.add")
        // across blocks, producing 99 W102 duplicate-name findings —
        // every node now carries a unique name, and no other
        // warning-severity finding exists in the suite. Info findings
        // (I201 quantization-readiness) are expected and allowed.
        let summary = lint_suite().unwrap();
        for entry in &summary.entries {
            assert!(
                entry.report.is_clean(Severity::Warning),
                "{} has warnings:\n{}",
                entry.model,
                entry.report.render(&entry.model)
            );
        }
    }

    #[test]
    fn render_has_totals_footer() {
        let summary = lint_suite().unwrap();
        let text = summary.render();
        assert!(text.contains("lint:"), "{text}");
        assert!(text.contains("errors"), "{text}");
        // The footer goes through the shared Totals formatter.
        assert!(text.contains(&summary.totals().to_string()), "{text}");
    }

    #[test]
    fn analyze_covers_zoo_with_planned_savings() {
        let entries = analyze_suite().unwrap();
        assert_eq!(entries.len(), 7);
        for e in &entries {
            assert_eq!(e.dead_values, 0, "{} has dead values", e.model);
            assert!(
                e.plan_slots < e.tensors,
                "{} plan did not share slots",
                e.model
            );
            assert!(
                e.reduction() > 0.0,
                "{} plan saved nothing ({} vs {})",
                e.model,
                e.peak_bytes,
                e.unplanned_bytes
            );
            // Interval propagation is conservative: shallow nets get a
            // finite bound, deep stacks may widen to infinity — but
            // never to NaN.
            assert!(!e.output_absmax.is_nan(), "{} range is NaN", e.model);
        }
        // The conv zoo models clear the 25% acceptance bar.
        for model in ["lenet5", "tiny-cnn", "mobilenetv3-large", "resnet50"] {
            let e = entries.iter().find(|e| e.model == model).unwrap();
            assert!(
                e.reduction() >= 0.25,
                "{model}: reduction {:.3} below the bar",
                e.reduction()
            );
        }
    }

    #[test]
    fn analysis_render_has_header_and_footer() {
        let entries = analyze_suite().unwrap();
        let text = render_analysis(&entries);
        assert!(text.starts_with("model"), "{text}");
        assert!(text.contains("resnet50"), "{text}");
        assert!(text.contains("analyze: 7 models"), "{text}");
    }
}
