//! Whole-zoo lint driver: the `vedliot lint` / `harness lint` backend.
//!
//! Runs the full static analyzer ([`vedliot_nnir::analysis`]) over every
//! evaluation network in the zoo *and* over optimized variants of the
//! small networks (fused, pruned, quantized, FP16-converted,
//! deep-compressed). The toolchain's verify-after-transform gate already
//! guarantees the variants are Error-clean; the lint sweep additionally
//! surfaces Warning/Info findings (dead nodes, aliased seeds, batch-dim
//! drift, INT8 saturation risk) that the hard gates deliberately allow.

use crate::compress::{deep_compress, CompressionConfig};
use crate::error::ToolchainError;
use crate::passes::{
    ConvertFp16, FuseConvBn, Pass, PassManager, PruneChannels, PruneConnections, QuantizeInt8,
};
use vedliot_nnir::analysis::{Analyzer, Report, Severity};
use vedliot_nnir::{zoo, Graph, Shape, Tensor};

/// One linted model (a zoo network or an optimized variant of one).
#[derive(Debug)]
pub struct LintEntry {
    /// Display name, e.g. `lenet5` or `tiny-cnn + quantize-int8`.
    pub model: String,
    /// The full analyzer's findings for this model.
    pub report: Report,
}

/// Result of linting the whole suite.
#[derive(Debug)]
pub struct LintSummary {
    /// One entry per linted model, in suite order.
    pub entries: Vec<LintEntry>,
}

impl LintSummary {
    /// Total findings at exactly the given severity across all models.
    #[must_use]
    pub fn count_at(&self, severity: Severity) -> usize {
        self.entries
            .iter()
            .map(|e| e.report.at(severity).count())
            .sum()
    }

    /// Whether every model is clean at the given severity or above.
    #[must_use]
    pub fn is_clean(&self, severity: Severity) -> bool {
        self.entries.iter().all(|e| e.report.is_clean(severity))
    }

    /// Renders the per-model reports plus a one-line totals footer.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.report.render(&entry.model));
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} models, {} errors, {} warnings, {} notes\n",
            self.entries.len(),
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Info),
        ));
        out
    }
}

/// The small network the optimized variants are derived from.
fn variant_base() -> Result<Graph, ToolchainError> {
    Ok(zoo::tiny_cnn(
        "tiny-cnn",
        Shape::nchw(1, 3, 16, 16),
        &[8, 16],
        4,
    )?)
}

fn lint(analyzer: &Analyzer, entries: &mut Vec<LintEntry>, model: &str, graph: &Graph) {
    entries.push(LintEntry {
        model: model.to_string(),
        report: analyzer.analyze(graph),
    });
}

/// Runs one pass over the variant base and lints the result.
fn lint_variant(
    analyzer: &Analyzer,
    entries: &mut Vec<LintEntry>,
    pass: impl Pass + 'static,
) -> Result<(), ToolchainError> {
    let name = format!("tiny-cnn + {}", pass.name());
    let mut pm = PassManager::new();
    pm.push(pass);
    let (optimized, _) = pm.run(variant_base()?)?;
    lint(analyzer, entries, &name, &optimized);
    Ok(())
}

/// Lints every zoo model plus optimized/compressed variants.
///
/// This is the backend of `vedliot lint` and the harness `lint`
/// experiment. The suite covers:
///
/// * all seven zoo networks (LeNet-5 through YOLOv4), and
/// * the small CNN after each toolchain pass (fusion, connection and
///   channel pruning, calibrated INT8 quantization, FP16 conversion)
///   and after the Deep Compression pipeline.
///
/// # Errors
///
/// Propagates graph-construction or pass failures — including
/// [`vedliot_nnir::NnirError::VerifierRejected`] from the toolchain's
/// verify-after-transform gate; the lint sweep itself never fails on
/// findings (findings go in the [`LintSummary`]).
pub fn lint_suite() -> Result<LintSummary, ToolchainError> {
    let analyzer = Analyzer::full();
    let mut entries = Vec::new();

    // The whole zoo.
    lint(&analyzer, &mut entries, "lenet5", &zoo::lenet5(10)?);
    lint(&analyzer, &mut entries, "tiny-cnn", &variant_base()?);
    lint(
        &analyzer,
        &mut entries,
        "conv1d-classifier",
        &zoo::conv1d_classifier("conv1d", 1, 64, &[8, 16], 3)?,
    );
    lint(
        &analyzer,
        &mut entries,
        "mobilenet-v3-large",
        &zoo::mobilenet_v3_large(100)?,
    );
    lint(&analyzer, &mut entries, "resnet50", &zoo::resnet50(10)?);
    lint(
        &analyzer,
        &mut entries,
        "efficientnet-v2-s",
        &zoo::efficientnet_v2_s(100)?,
    );
    lint(&analyzer, &mut entries, "yolov4", &zoo::yolov4(416, 80)?);

    // Optimized variants of the small CNN, one per toolchain pass.
    lint_variant(&analyzer, &mut entries, FuseConvBn::new())?;
    lint_variant(&analyzer, &mut entries, PruneConnections::new(0.5))?;
    lint_variant(&analyzer, &mut entries, PruneChannels::new(0.5))?;
    let calib = vec![Tensor::random(Shape::nchw(1, 3, 16, 16), 7, 1.0)];
    lint_variant(
        &analyzer,
        &mut entries,
        QuantizeInt8::with_calibration(calib),
    )?;
    lint_variant(&analyzer, &mut entries, ConvertFp16::new())?;

    // The Deep Compression pipeline's decoded model.
    let (compressed, _) = deep_compress(
        &variant_base()?,
        &CompressionConfig {
            sparsity: 0.5,
            ..CompressionConfig::default()
        },
    )?;
    lint(
        &analyzer,
        &mut entries,
        "tiny-cnn + deep-compress",
        &compressed,
    );

    Ok(LintSummary { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_zoo_and_variants() {
        let summary = lint_suite().unwrap();
        assert!(
            summary.entries.len() >= 13,
            "expected zoo + variants, got {}",
            summary.entries.len()
        );
        let names: Vec<&str> = summary.entries.iter().map(|e| e.model.as_str()).collect();
        assert!(names.contains(&"resnet50"));
        assert!(names.contains(&"tiny-cnn + quantize-int8"));
        assert!(names.contains(&"tiny-cnn + deep-compress"));
    }

    #[test]
    fn suite_is_error_clean() {
        // Acceptance gate: every zoo model and every optimized variant
        // lints clean at Error severity.
        let summary = lint_suite().unwrap();
        for entry in &summary.entries {
            assert!(
                entry.report.is_clean(Severity::Error),
                "{} has errors:\n{}",
                entry.model,
                entry.report.render(&entry.model)
            );
        }
    }

    #[test]
    fn suite_is_warning_clean() {
        // Regression for the lint-driven sweep: the zoo builders once
        // reused block-local node names ("residual", "add", "res.add")
        // across blocks, producing 99 W102 duplicate-name findings —
        // every node now carries a unique name, and no other
        // warning-severity finding exists in the suite. Info findings
        // (I201 quantization-readiness) are expected and allowed.
        let summary = lint_suite().unwrap();
        for entry in &summary.entries {
            assert!(
                entry.report.is_clean(Severity::Warning),
                "{} has warnings:\n{}",
                entry.model,
                entry.report.render(&entry.model)
            );
        }
    }

    #[test]
    fn render_has_totals_footer() {
        let summary = lint_suite().unwrap();
        let text = summary.render();
        assert!(text.contains("lint:"), "{text}");
        assert!(text.contains("errors"), "{text}");
    }
}
