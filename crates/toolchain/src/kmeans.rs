//! 1-D k-means clustering for weight sharing.
//!
//! Deep Compression quantizes the surviving weights of a pruned layer by
//! clustering them into 2^b centroids (the "trained quantization" stage).
//! Lloyd's algorithm over scalars with deterministic linear
//! initialization is exactly what the original paper uses.

use serde::{Deserialize, Serialize};

/// Result of clustering a weight set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster centroids (codebook), ascending.
    pub centroids: Vec<f32>,
    /// Cluster index per input value.
    pub assignments: Vec<u16>,
}

impl Clustering {
    /// Reconstructs the clustered values (each value replaced by its
    /// centroid).
    #[must_use]
    pub fn reconstruct(&self) -> Vec<f32> {
        self.assignments
            .iter()
            .map(|&a| self.centroids[a as usize])
            .collect()
    }

    /// Mean squared reconstruction error against the original values.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different length than the assignments.
    #[must_use]
    pub fn mse(&self, original: &[f32]) -> f64 {
        assert_eq!(original.len(), self.assignments.len());
        if original.is_empty() {
            return 0.0;
        }
        let sum: f64 = original
            .iter()
            .zip(self.assignments.iter())
            .map(|(&x, &a)| {
                let d = (x - self.centroids[a as usize]) as f64;
                d * d
            })
            .sum();
        sum / original.len() as f64
    }
}

/// Clusters scalar values into at most `k` centroids using Lloyd's
/// algorithm with linear (min..max) initialization.
///
/// Returns an empty clustering for empty input. If the data has fewer
/// distinct values than `k`, unused centroids collapse and are pruned
/// from the codebook.
///
/// # Panics
///
/// Panics if `k == 0` or `k > u16::MAX as usize + 1`.
#[must_use]
pub fn kmeans_1d(values: &[f32], k: usize, iterations: usize) -> Clustering {
    assert!(k > 0, "k must be positive");
    assert!(k <= u16::MAX as usize + 1, "k exceeds index range");
    if values.is_empty() {
        return Clustering {
            centroids: Vec::new(),
            assignments: Vec::new(),
        };
    }
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut centroids: Vec<f32> = if k == 1 || (max - min) == 0.0 {
        vec![(min + max) / 2.0]
    } else {
        (0..k)
            .map(|i| min + (max - min) * i as f32 / (k - 1) as f32)
            .collect()
    };

    let mut assignments = vec![0u16; values.len()];
    for _ in 0..iterations.max(1) {
        // Assignment step: centroids are sorted, use binary search on
        // midpoints for O(n log k).
        for (i, &v) in values.iter().enumerate() {
            assignments[i] = nearest(&centroids, v);
        }
        // Update step.
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (&v, &a) in values.iter().zip(assignments.iter()) {
            sums[a as usize] += v as f64;
            counts[a as usize] += 1;
        }
        let mut moved = false;
        for (c, (&sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
            if count > 0 {
                let new = (sum / count as f64) as f32;
                if new != *c {
                    *c = new;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
        centroids.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }

    // Final assignment and pruning of empty clusters.
    for (i, &v) in values.iter().enumerate() {
        assignments[i] = nearest(&centroids, v);
    }
    let mut used: Vec<bool> = vec![false; centroids.len()];
    for &a in &assignments {
        used[a as usize] = true;
    }
    let remap: Vec<Option<u16>> = {
        let mut next = 0u16;
        used.iter()
            .map(|&u| {
                if u {
                    let id = next;
                    next += 1;
                    Some(id)
                } else {
                    None
                }
            })
            .collect()
    };
    let pruned: Vec<f32> = centroids
        .iter()
        .zip(used.iter())
        .filter(|&(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    for a in &mut assignments {
        // An assigned cluster is by construction marked used, so the
        // remap entry exists; keep the assignment untouched otherwise.
        if let Some(new) = remap[*a as usize] {
            *a = new;
        }
    }
    Clustering {
        centroids: pruned,
        assignments,
    }
}

fn nearest(centroids: &[f32], v: f32) -> u16 {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (v - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_clusters() {
        let values = vec![-1.0, -1.1, -0.9, 1.0, 1.1, 0.9];
        let c = kmeans_1d(&values, 2, 20);
        assert_eq!(c.centroids.len(), 2);
        assert!((c.centroids[0] + 1.0).abs() < 0.2);
        assert!((c.centroids[1] - 1.0).abs() < 0.2);
        // First three values share a cluster, last three the other.
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[3]);
    }

    #[test]
    fn reconstruction_error_decreases_with_k() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32 / 10.0).sin()).collect();
        let mse4 = kmeans_1d(&values, 4, 30).mse(&values);
        let mse16 = kmeans_1d(&values, 16, 30).mse(&values);
        assert!(mse16 < mse4);
    }

    #[test]
    fn constant_input_collapses_to_one_centroid() {
        let values = vec![0.5f32; 50];
        let c = kmeans_1d(&values, 8, 10);
        assert_eq!(c.centroids.len(), 1);
        assert!(c.mse(&values) < 1e-12);
    }

    #[test]
    fn empty_input() {
        let c = kmeans_1d(&[], 4, 10);
        assert!(c.centroids.is_empty() && c.assignments.is_empty());
    }

    #[test]
    fn reconstruct_uses_centroids_exactly() {
        let values = vec![0.0f32, 0.1, 0.9, 1.0];
        let c = kmeans_1d(&values, 2, 10);
        let rec = c.reconstruct();
        for r in rec {
            assert!(c.centroids.contains(&r));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = kmeans_1d(&[1.0], 0, 5);
    }
}
