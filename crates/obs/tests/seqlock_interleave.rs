// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Seqlock interleave regression for the `TraceRing`.
//!
//! The ring is plain safe atomics (the workspace forbids `unsafe`), so
//! a torn read cannot be UB — but it *could* still hand back a record
//! stitched from two different writers if the per-slot versioning were
//! wrong. This test races many writers against concurrent
//! snapshotting readers and proves coherence structurally: every word
//! of a span is derived from its sequence number alone, so any record
//! mixing words from two writes fails the derivation check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vedliot_obs::{SpanOutcome, SpanRecord, TraceRing};

/// A span whose every field is a fixed function of `seq`. A reader
/// that observes a record where any field disagrees with this
/// derivation has seen a torn (interleaved) write.
fn derived_span(seq: u64) -> SpanRecord {
    SpanRecord {
        seq,
        enqueue_us: 1_000 * seq,
        dequeue_us: 1_000 * seq + 7,
        exec_start_us: 1_000 * seq + 11,
        exec_end_us: 1_000 * seq + 200,
        reply_us: 1_000 * seq + 205,
        linger_us: (seq % 8).min(7),
        batch: (seq % 9) as u32,
        retries: (seq % 3) as u32,
        model: (seq % 5) as u16,
        priority: (seq % 4) as u8,
        outcome: if seq.is_multiple_of(2) {
            SpanOutcome::Ok
        } else {
            SpanOutcome::Failed
        },
    }
}

fn assert_coherent(span: &SpanRecord) {
    let expect = derived_span(span.seq);
    assert_eq!(
        *span, expect,
        "torn read: snapshot returned a record interleaved from two writes"
    );
}

#[test]
fn concurrent_writers_and_readers_never_observe_torn_records() {
    const WRITERS: usize = 4;
    const SPANS_PER_WRITER: u64 = 20_000;

    // A small ring maximizes slot contention: every writer laps the
    // ring thousands of times while readers scan it.
    let ring = Arc::new(TraceRing::new(8));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                // Disjoint seq streams per writer, all derivable.
                let mut seq = w as u64 + 1;
                for _ in 0..SPANS_PER_WRITER {
                    ring.record(&derived_span(seq));
                    seq += WRITERS as u64;
                }
            });
        }
        for _ in 0..3 {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut seen = 0usize;
                loop {
                    for span in ring.snapshot() {
                        assert_coherent(&span);
                        seen += 1;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                // The readers genuinely raced the writers.
                assert!(seen > 0, "reader never observed a stable record");
            });
        }
        // Writers finish on their own; then release the readers. Scope
        // join order: spawn order is writers first, but we must flip
        // the stop flag from a thread that outlives the writers — do
        // it from a dedicated waiter keyed on the recorded+dropped
        // total reaching the write count.
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        scope.spawn(move || {
            let total = (WRITERS as u64) * SPANS_PER_WRITER;
            while ring.recorded() + ring.dropped() < total {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    // Conservation: every record attempt either landed or was counted
    // as dropped, and the final ring contents are coherent and stable.
    assert_eq!(
        ring.recorded() + ring.dropped(),
        (WRITERS as u64) * SPANS_PER_WRITER
    );
    let finale = ring.snapshot();
    assert!(!finale.is_empty());
    for span in &finale {
        assert_coherent(span);
        assert!(span.is_monotonic());
    }
}

#[test]
fn snapshot_mid_write_skips_rather_than_tears() {
    // Deterministic single-threaded sanity companion: interleave a
    // snapshot between two writes to the same slot and check the ring
    // returns exactly the stable record.
    let ring = TraceRing::new(1);
    ring.record(&derived_span(1));
    let first = ring.snapshot();
    assert_eq!(first.len(), 1);
    assert_coherent(&first[0]);

    ring.record(&derived_span(2));
    let second = ring.snapshot();
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].seq, 2);
    assert_coherent(&second[0]);
    assert_eq!(ring.recorded(), 2);
    assert_eq!(ring.dropped(), 0);
}
