//! Property tests for the observability substrate: histogram quantile
//! accuracy, trace-ring torn-read freedom, and exporter round-trips.

use proptest::prelude::*;
use std::sync::Arc;
use vedliot_obs::hist::{bucket_of, Histogram, HistogramSnapshot};
use vedliot_obs::{Export, Metric, MetricValue, SpanOutcome, SpanRecord, TraceRing};

/// Exact sample quantile with the same rank convention the histogram
/// documents: entry `ceil(q·n) - 1` of the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Snapshot of a histogram that recorded exactly `samples`.
fn snap_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Out-of-place merge, so operands can be reused across assertions.
fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    /// Histogram quantiles agree with exact sorted-sample quantiles to
    /// within one bucket's relative error: the estimate lands in the
    /// same log2 bucket as the exact value (so it is within a factor
    /// of two), for every tested quantile.
    #[test]
    fn quantiles_match_exact_within_one_bucket(
        samples in proptest::collection::vec(0u64..1_000_000, 1..400),
        qi in 0usize..5,
    ) {
        let q = [0.10, 0.50, 0.90, 0.99, 1.0][qi];
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let estimate = snap.quantile(q);
        prop_assert_eq!(
            bucket_of(estimate), bucket_of(exact),
            "q={} estimate={} exact={}", q, estimate, exact
        );
        // And the estimate never leaves the observed range.
        prop_assert!(estimate >= snap.min && estimate <= snap.max);
    }

    /// Whatever subset of spans a snapshot returns, every record in it
    /// is untorn: the ring's seqlock must never expose a mix of two
    /// writers' fields. Each writer stamps every field with a value
    /// derived from its seq, so a torn record is detectable.
    #[test]
    fn ring_snapshots_are_never_torn(capacity in 1usize..32, writers in 1usize..5) {
        let ring = Arc::new(TraceRing::new(capacity));
        let mut handles = Vec::new();
        for w in 0..writers {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let seq = (w as u64) * 1_000_000 + i;
                    ring.record(&coherent_span(seq));
                }
            }));
        }
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut checked = 0usize;
                for _ in 0..200 {
                    for span in ring.snapshot() {
                        assert_coherent(&span);
                        checked += 1;
                    }
                }
                checked
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        // Quiescent state: a final snapshot is full and coherent.
        let final_spans = ring.snapshot();
        prop_assert_eq!(final_spans.len(), capacity.min(writers * 500));
        for span in &final_spans {
            assert_coherent(span);
        }
        prop_assert_eq!(ring.recorded() + ring.dropped(), (writers * 500) as u64);
    }

    /// Merging snapshots is commutative and *bucket-exact*: the merge
    /// equals the snapshot one histogram would hold had it recorded the
    /// concatenated stream — same count, sum, min, max, and every
    /// bucket — including when either operand is empty.
    #[test]
    fn snapshot_merge_is_commutative_and_bucket_exact(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        let ab = merged(&sa, &sb);
        prop_assert_eq!(&ab, &merged(&sb, &sa));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(&ab, &snap_of(&both));
    }

    /// Merging is associative, so fleet aggregation can fold
    /// per-model snapshots in any grouping.
    #[test]
    fn snapshot_merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..120),
        b in proptest::collection::vec(0u64..1_000_000, 0..120),
        c in proptest::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        prop_assert_eq!(
            merged(&merged(&sa, &sb), &sc),
            merged(&sa, &merged(&sb, &sc))
        );
    }

    /// `quantile(q)` is monotonically non-decreasing in `q`, stays in
    /// the observed `[min, max]`, and the empty snapshot answers 0
    /// everywhere and equals `HistogramSnapshot::empty()`.
    #[test]
    fn quantile_is_monotonic_in_q(
        samples in proptest::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let snap = snap_of(&samples);
        let mut prev = 0u64;
        for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
            let v = snap.quantile(q);
            prop_assert!(v >= prev, "q={} gave {} after {}", q, v, prev);
            prev = v;
        }
        if samples.is_empty() {
            prop_assert_eq!(&snap, &HistogramSnapshot::empty());
            prop_assert_eq!(snap.quantile(0.5), 0);
        } else {
            prop_assert!(snap.quantile(0.01) >= snap.min);
            prop_assert!(snap.quantile(1.0) <= snap.max);
        }
    }

    /// Single-bucket edge: a constant stream occupies one bucket, so
    /// the min/max clamp collapses every quantile to the exact value.
    #[test]
    fn single_bucket_quantiles_collapse_to_the_value(
        value in 0u64..1_000_000,
        n in 1usize..50,
        qi in 0usize..5,
    ) {
        let q = [0.01, 0.50, 0.90, 0.99, 1.0][qi];
        let snap = snap_of(&vec![value; n]);
        prop_assert_eq!(snap.count, n as u64);
        prop_assert_eq!(snap.min, value);
        prop_assert_eq!(snap.max, value);
        prop_assert_eq!(snap.quantile(q), value);
    }

    /// Export JSON round-trips losslessly for arbitrary metric sets.
    #[test]
    fn export_json_round_trips(
        n_metrics in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let mut metrics = Vec::new();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for i in 0..n_metrics {
            let value = match next() % 3 {
                0 => MetricValue::Counter(next()),
                1 => MetricValue::Gauge(next() as f64 / 1e6),
                _ => {
                    let h = Histogram::new();
                    for _ in 0..(next() % 20) {
                        h.record(next() % 1_000_000);
                    }
                    MetricValue::Histogram(h.snapshot())
                }
            };
            let mut labels = Vec::new();
            for l in 0..(next() % 3) {
                labels.push((format!("key_{l}"), format!("val\"ue {}", next() % 100)));
            }
            metrics.push(Metric {
                name: format!("metric_{i}"),
                help: format!("help \"quoted\" \\slashed\nnewline {i}"),
                labels,
                value,
            });
        }
        let export = Export { subsystem: format!("sub-{seed}"), metrics };
        prop_assert_eq!(Export::from_json(&export.to_json()), Some(export));
    }
}

/// A span whose every field is a deterministic function of `seq`.
fn coherent_span(seq: u64) -> SpanRecord {
    SpanRecord {
        seq,
        enqueue_us: seq.wrapping_mul(3),
        dequeue_us: seq.wrapping_mul(5),
        exec_start_us: seq.wrapping_mul(7),
        exec_end_us: seq.wrapping_mul(11),
        reply_us: seq.wrapping_mul(13),
        linger_us: seq.wrapping_mul(17),
        batch: (seq % 97) as u32,
        retries: (seq % 89) as u32,
        model: (seq % 11) as u16,
        priority: (seq % 3) as u8,
        outcome: SpanOutcome::Ok,
    }
}

fn assert_coherent(span: &SpanRecord) {
    assert_eq!(
        span,
        &coherent_span(span.seq),
        "torn span escaped the seqlock"
    );
}
