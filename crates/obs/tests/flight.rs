// Test/bench/example target: panics are the failure report.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Flight-recorder integration: a scripted incident flows through the
//! journal, the windowed series, and the SLO engine together; the
//! causal chain of a shed request reaches the burn alert that caused
//! it, and all three exporters stay byte-identical to pinned goldens.

use std::sync::Arc;
use vedliot_obs::{
    BurnWindows, CauseId, Clock, Event, EventJournal, EventKind, Exportable, ManualClock,
    Objective, Slo, SloEngine, TimeSeries,
};

/// Rewrites the golden under `UPDATE_GOLDENS=1` instead of comparing,
/// so intentional exporter changes are blessed with one rerun.
fn check_golden(relative: &str, pinned: &str, actual: &str) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let path = format!("{}/tests/{relative}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, actual).unwrap();
        return;
    }
    assert_eq!(
        actual.trim_end(),
        pinned.trim_end(),
        "exporter output drifted from {relative}; rerun with UPDATE_GOLDENS=1 to bless"
    );
}

/// The scripted incident every assertion and golden in this file sees:
/// healthy traffic, a burst of failures that fires the availability
/// burn alert, burn-driven shedding citing the alert, recovery, clear.
fn scripted_incident() -> (Arc<EventJournal>, TimeSeries, SloEngine) {
    let journal = Arc::new(EventJournal::new(256));
    let mut series = TimeSeries::new("flight", 10, 16);
    let mut slo = SloEngine::new(vec![Objective::new(
        "availability",
        Slo::Availability { target: 0.9 },
        BurnWindows {
            short: 10,
            long: 40,
            threshold: 2.0,
        },
    )])
    .unwrap()
    .with_journal(Arc::clone(&journal));

    // t 0..40: healthy traffic.
    for at in 0..40u64 {
        journal.append(
            at,
            EventKind::RequestAdmitted,
            CauseId::request(at),
            CauseId::NONE,
            0,
        );
        series.record_ok(at, 100 + at);
        slo.record_request(at, true, 100 + at);
    }
    assert!(slo.evaluate(39).is_empty(), "healthy traffic must not fire");

    // t 40..60: total failure. The availability budget burns hot.
    for at in 40..60u64 {
        journal.append(
            at,
            EventKind::RequestAdmitted,
            CauseId::request(at),
            CauseId::NONE,
            0,
        );
        series.record_err(at);
        slo.record_request(at, false, 0);
    }
    let fired = slo.evaluate(59);
    assert_eq!(fired.len(), 1);
    assert!(fired[0].fired);
    let alert_seq = fired[0].event_seq;
    assert!(alert_seq > 0);

    // Burn-driven degradation: health flips, admission sheds citing
    // the alert event as the cause.
    let degraded = journal.append(
        60,
        EventKind::HealthDegraded,
        CauseId::model(0),
        CauseId::event(alert_seq),
        0,
    );
    for at in 60..70u64 {
        journal.append(
            at,
            EventKind::RequestShed,
            CauseId::request(at),
            CauseId::event(degraded),
            2,
        );
    }

    // t 70..200: recovery; the alert clears and health recovers.
    for at in 70..200u64 {
        series.record_ok(at, 120);
        slo.record_request(at, true, 120);
    }
    let cleared = slo.evaluate(199);
    assert_eq!(cleared.len(), 1);
    assert!(!cleared[0].fired);
    journal.append(
        200,
        EventKind::HealthRecovered,
        CauseId::model(0),
        CauseId::event(degraded),
        0,
    );

    (journal, series, slo)
}

#[test]
fn shed_request_chains_back_to_the_burn_alert() {
    let (journal, _, slo) = scripted_incident();
    // "What shed request 65?" — one chain query answers with the full
    // causal story: shed <- degraded <- alert fired (root).
    let chain = journal.chain(CauseId::request(65));
    let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::RequestShed));
    assert!(kinds.contains(&EventKind::HealthDegraded));
    assert!(kinds.contains(&EventKind::SloAlertFired));
    assert!(
        chain.iter().any(|e| e.cause.is_none()),
        "the chain reaches a root cause"
    );
    // The walk is upward-only: other shed victims stay out of it.
    assert_eq!(
        chain
            .iter()
            .filter(|e| e.kind == EventKind::RequestShed)
            .count(),
        1
    );
    assert_eq!(slo.alerts_fired(), 1);
    assert_eq!(slo.alerts_cleared(), 1);
    // The clear cites the fire: the objective's chain holds both.
    let alert_chain = journal.chain(CauseId::slo(0));
    let alert_kinds: Vec<EventKind> = alert_chain.iter().map(|e| e.kind).collect();
    assert!(alert_kinds.contains(&EventKind::SloAlertFired));
    assert!(alert_kinds.contains(&EventKind::SloAlertCleared));
}

#[test]
fn the_incident_is_bit_deterministic() {
    let run = || {
        let (journal, series, slo) = scripted_incident();
        let events: Vec<Event> = journal.snapshot();
        (events, series.export().to_json(), slo.export().to_json())
    };
    assert_eq!(run(), run());
}

#[test]
fn manual_clock_drives_series_reproducibly() {
    let clock = ManualClock::at(0);
    let mut series = TimeSeries::new("ticks", 5, 8);
    for i in 0..30u64 {
        clock.set(i);
        series.record_ok(clock.now(), i * 7 % 40);
    }
    assert!(series.rate(29, 10) > 0.0);
    assert_eq!(series.late(), 0);
}

#[test]
fn journal_export_matches_goldens() {
    let (journal, _, _) = scripted_incident();
    let export = journal.export();
    check_golden(
        "goldens/flight_journal.json",
        include_str!("goldens/flight_journal.json"),
        &export.to_json(),
    );
    check_golden(
        "goldens/flight_journal.prom",
        include_str!("goldens/flight_journal.prom"),
        &export.to_prometheus(),
    );
}

#[test]
fn series_export_matches_goldens() {
    let (_, series, _) = scripted_incident();
    let export = series.export();
    check_golden(
        "goldens/flight_series.json",
        include_str!("goldens/flight_series.json"),
        &export.to_json(),
    );
    check_golden(
        "goldens/flight_series.prom",
        include_str!("goldens/flight_series.prom"),
        &export.to_prometheus(),
    );
}

#[test]
fn slo_export_matches_goldens() {
    let (_, _, slo) = scripted_incident();
    let export = slo.export();
    check_golden(
        "goldens/flight_slo.json",
        include_str!("goldens/flight_slo.json"),
        &export.to_json(),
    );
    check_golden(
        "goldens/flight_slo.prom",
        include_str!("goldens/flight_slo.prom"),
        &export.to_prometheus(),
    );
}

/// The J-code registry in DESIGN.md §8 and `EventKind` must never
/// drift apart: every variant's code and name must appear together in
/// a registry table row, and no two variants may share a code.
#[test]
fn journal_registry_matches_design_doc() {
    let design = include_str!("../../../DESIGN.md");
    let rows: Vec<&str> = design.lines().filter(|l| l.starts_with("| J")).collect();
    assert_eq!(
        rows.len(),
        EventKind::ALL.len(),
        "DESIGN.md J-registry has {} rows for {} event kinds",
        rows.len(),
        EventKind::ALL.len()
    );
    let mut seen = std::collections::HashSet::new();
    for kind in EventKind::ALL {
        assert!(seen.insert(kind.code()), "duplicate code {}", kind.code());
        let row = rows
            .iter()
            .find(|r| r.starts_with(&format!("| {} ", kind.code())))
            .unwrap_or_else(|| panic!("{} missing from the DESIGN.md registry", kind.code()));
        assert!(
            row.contains(&format!("| {} ", kind.name())),
            "registry row for {} does not document name {:?}: {row}",
            kind.code(),
            kind.name()
        );
    }
}
