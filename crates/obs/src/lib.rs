//! Observability substrate for the VEDLIoT reproduction.
//!
//! The paper's evaluation methodology is *measurement*: Fig. 4 compares
//! measured against theoretical performance per platform, and §II-A's
//! dynamically configurable infrastructure is driven by per-node
//! power/thermal/utilization telemetry. This crate is the shared
//! machinery that lets every subsystem produce such measurements
//! without perturbing the thing being measured:
//!
//! * [`hist`] — wait-free log2-bucketed atomic histograms. Workers
//!   record a sample with a handful of relaxed atomic increments; a
//!   snapshot yields the *full* latency distribution, not just two
//!   percentiles (and replaces the serving layer's old
//!   mutex-guarded rolling window — the reply-path hot lock).
//! * [`trace`] — a bounded lock-free ring of request-lifecycle
//!   [`SpanRecord`](trace::SpanRecord)s. Each request's timeline
//!   (enqueue → queue-wait → batch-linger → dispatch → execute →
//!   reply) is written with per-slot seqlock versioning: writers never
//!   block, readers retry until they observe a torn-free record.
//! * [`export`] — one [`Exportable`](export::Exportable) trait and two
//!   renderers (hand-rolled JSON and Prometheus text exposition) shared
//!   by serving metrics, runner profiles and RECS telemetry, so every
//!   subsystem exports over the same path. The vendored `serde` is a
//!   no-op stand-in, so the JSON model here *is* the wire format — it
//!   round-trips through [`export::Export::from_json`].
//! * [`journal`] — the flight recorder: a bounded seqlock ring of
//!   typed, timestamped [`Event`](journal::Event)s with stable J-codes
//!   and namespaced [`CauseId`](journal::CauseId) correlation, so
//!   "why did device 117 roll back" is a
//!   [`chain`](journal::EventJournal::chain) query, not a re-run.
//! * [`series`] — windowed time-series: a ring of fixed-width time
//!   buckets (rate / error-ratio / quantile-over-window) driven by
//!   injectable clocks, so fleet tick-time and serve wall-time both
//!   work and seeded runs reproduce bucket contents exactly.
//! * [`slo`] — declared objectives (availability, p99, event budgets)
//!   evaluated as multi-window burn rates; alerts are journal events,
//!   closing the observe→act loop (serve can drive `Health` off burn).
//!
//! The overhead budget (DESIGN.md §9): disabled observability costs one
//! branch per batch; enabled tracing is a few relaxed atomics per
//! request and must stay within a single-digit-percent tax, asserted
//! live by experiment E23 (`harness observe`); the journal + SLO layer
//! is held to the same budget by E28 (`harness slo`).

pub mod export;
pub mod hist;
pub mod journal;
pub mod series;
pub mod slo;
pub mod trace;

pub use export::{Export, Exportable, Metric, MetricValue};
pub use hist::{Histogram, HistogramSnapshot};
pub use journal::{CauseId, Event, EventJournal, EventKind};
pub use series::{Clock, ManualClock, TimeSeries, WallClock};
pub use slo::{BurnRate, BurnWindows, Objective, Slo, SloEngine, SloState, SloTransition};
pub use trace::{SpanOutcome, SpanRecord, StageBreakdown, TraceRing};
