//! Observability substrate for the VEDLIoT reproduction.
//!
//! The paper's evaluation methodology is *measurement*: Fig. 4 compares
//! measured against theoretical performance per platform, and §II-A's
//! dynamically configurable infrastructure is driven by per-node
//! power/thermal/utilization telemetry. This crate is the shared
//! machinery that lets every subsystem produce such measurements
//! without perturbing the thing being measured:
//!
//! * [`hist`] — wait-free log2-bucketed atomic histograms. Workers
//!   record a sample with a handful of relaxed atomic increments; a
//!   snapshot yields the *full* latency distribution, not just two
//!   percentiles (and replaces the serving layer's old
//!   mutex-guarded rolling window — the reply-path hot lock).
//! * [`trace`] — a bounded lock-free ring of request-lifecycle
//!   [`SpanRecord`](trace::SpanRecord)s. Each request's timeline
//!   (enqueue → queue-wait → batch-linger → dispatch → execute →
//!   reply) is written with per-slot seqlock versioning: writers never
//!   block, readers retry until they observe a torn-free record.
//! * [`export`] — one [`Exportable`](export::Exportable) trait and two
//!   renderers (hand-rolled JSON and Prometheus text exposition) shared
//!   by serving metrics, runner profiles and RECS telemetry, so every
//!   subsystem exports over the same path. The vendored `serde` is a
//!   no-op stand-in, so the JSON model here *is* the wire format — it
//!   round-trips through [`export::Export::from_json`].
//!
//! The overhead budget (DESIGN.md §9): disabled observability costs one
//! branch per batch; enabled tracing is a few relaxed atomics per
//! request and must stay within a single-digit-percent tax, asserted
//! live by experiment E23 (`harness observe`).

pub mod export;
pub mod hist;
pub mod trace;

pub use export::{Export, Exportable, Metric, MetricValue};
pub use hist::{Histogram, HistogramSnapshot};
pub use trace::{SpanOutcome, SpanRecord, StageBreakdown, TraceRing};
