//! The unified exporter: one trait, two wire formats.
//!
//! Every observable subsystem (serving metrics, runner profiles, RECS
//! telemetry, trace breakdowns) implements [`Exportable`] by describing
//! itself as an [`Export`] — a named set of counters, gauges and
//! histograms. The [`Export`] then renders to hand-rolled JSON
//! ([`Export::to_json`]) or Prometheus text exposition
//! ([`Export::to_prometheus`]), so a scraper sees one schema no matter
//! which layer produced the numbers.
//!
//! The vendored `serde` is a marker-trait stand-in with no serializer,
//! so the JSON written here *is* the interchange format; it parses back
//! via [`Export::from_json`] (round-trip property-tested), which is
//! what keeps the pinned CI goldens honest.

use crate::hist::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Instantaneous level (finite values only; non-finite renders 0).
    Gauge(f64),
    /// Full distribution.
    Histogram(HistogramSnapshot),
}

/// One named metric with a help string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name (lowercase snake_case by convention).
    pub name: String,
    /// One-line description, rendered into `# HELP` / JSON.
    pub help: String,
    /// Dimension labels as `(key, value)` pairs in producer-chosen
    /// order (`model`, `priority`, …). Empty for unlabelled metrics,
    /// and omitted from the JSON wire format when empty so pre-label
    /// exports keep their exact bytes.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

impl Metric {
    /// A monotonically increasing counter.
    #[must_use]
    pub fn counter(name: impl Into<String>, help: impl Into<String>, value: u64) -> Self {
        Metric {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: MetricValue::Counter(value),
        }
    }

    /// An instantaneous level.
    #[must_use]
    pub fn gauge(name: impl Into<String>, help: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A full distribution.
    #[must_use]
    pub fn histogram(
        name: impl Into<String>,
        help: impl Into<String>,
        value: HistogramSnapshot,
    ) -> Self {
        Metric {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: MetricValue::Histogram(value),
        }
    }

    /// Appends one dimension label (builder-style).
    #[must_use]
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// An exportable snapshot: a subsystem name plus its metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Export {
    /// Subsystem the metrics belong to (`serve`, `runner`, `recs`, …).
    pub subsystem: String,
    /// The metrics, in a stable order chosen by the producer.
    pub metrics: Vec<Metric>,
}

/// Anything that can describe itself to the unified exporter.
pub trait Exportable {
    /// The subsystem's current metrics.
    fn export(&self) -> Export;
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escapes a Prometheus HELP text (backslash and line feed — the two
/// characters the exposition format requires escaped there). Leaving a
/// raw `\` in a HELP line is invalid exposition output.
fn prom_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prom_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a `{k="v",…}` label set; empty string when no labels.
fn prom_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", prom_name(k), prom_label_value(v));
    }
    out.push('}');
    out
}

/// Sanitizes a name into the Prometheus metric-name alphabet.
fn prom_name(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

impl Export {
    /// Renders the export as compact JSON with a stable key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"subsystem\":\"");
        json_escape(&mut out, &self.subsystem);
        out.push_str("\",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape(&mut out, &m.name);
            out.push_str("\",\"help\":\"");
            json_escape(&mut out, &m.help);
            out.push_str("\",");
            if !m.labels.is_empty() {
                out.push_str("\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    json_escape(&mut out, k);
                    out.push_str("\":\"");
                    json_escape(&mut out, v);
                    out.push('"');
                }
                out.push_str("},");
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", finite(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"counts\":[",
                        h.count, h.sum, h.min, h.max
                    );
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the export in the Prometheus text exposition format.
    /// Metric names are prefixed `vedliot_<subsystem>_`; histograms
    /// emit cumulative `_bucket{le="…"}` series over the log2 bounds
    /// (up to the highest occupied bucket) plus `_sum`/`_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        let prefix = prom_name(&self.subsystem);
        for m in &self.metrics {
            let name = format!("vedliot_{prefix}_{}", prom_name(&m.name));
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let labels = prom_labels(&m.labels);
            let _ = writeln!(out, "# HELP {name} {}", prom_help(&m.help));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{labels} {}", finite(*v));
                }
                MetricValue::Histogram(h) => {
                    // Bucket series splice `le` into the shared label set.
                    let le_prefix = if m.labels.is_empty() {
                        String::from("{")
                    } else {
                        format!("{},", &labels[..labels.len() - 1])
                    };
                    let last = h.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &c) in h.counts.iter().enumerate().take(last + 1) {
                        cumulative += c;
                        let (_, hi) = crate::hist::bucket_bounds(i);
                        let _ = writeln!(out, "{name}_bucket{le_prefix}le=\"{hi}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{le_prefix}le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum);
                    let _ = writeln!(out, "{name}_count{labels} {}", h.count);
                }
            }
        }
        out
    }

    /// Parses an export back from [`to_json`](Self::to_json) output.
    /// Returns `None` on any structural mismatch — this is a schema
    /// reader for round-trip checks and golden diffing, not a general
    /// JSON library.
    #[must_use]
    pub fn from_json(text: &str) -> Option<Export> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let export = p.export()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(export)
        } else {
            None
        }
    }
}

/// Minimal recursive-descent reader for the schema `to_json` writes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn key(&mut self, expected: &str) -> Option<()> {
        let k = self.string()?;
        if k == expected {
            self.eat(b':')
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn u64_number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn u64_array(&mut self) -> Option<Vec<u64>> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            out.push(self.u64_number()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }

    fn export(&mut self) -> Option<Export> {
        self.eat(b'{')?;
        self.key("subsystem")?;
        let subsystem = self.string()?;
        self.eat(b',')?;
        self.key("metrics")?;
        self.eat(b'[')?;
        let mut metrics = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            loop {
                metrics.push(self.metric()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        break;
                    }
                    _ => return None,
                }
            }
        }
        self.eat(b'}')?;
        Some(Export { subsystem, metrics })
    }

    fn label_map(&mut self) -> Option<Vec<(String, String)>> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            let k = self.string()?;
            self.eat(b':')?;
            let v = self.string()?;
            out.push((k, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }

    fn metric(&mut self) -> Option<Metric> {
        self.eat(b'{')?;
        self.key("name")?;
        let name = self.string()?;
        self.eat(b',')?;
        self.key("help")?;
        let help = self.string()?;
        self.eat(b',')?;
        // `labels` is only written when non-empty, so the next key is
        // either `labels` or `type`.
        let next = self.string()?;
        self.eat(b':')?;
        let mut labels = Vec::new();
        let kind = if next == "labels" {
            labels = self.label_map()?;
            if labels.is_empty() {
                // An empty map is never written; reject it so the
                // round-trip stays byte-exact.
                return None;
            }
            self.eat(b',')?;
            self.key("type")?;
            self.string()?
        } else if next == "type" {
            self.string()?
        } else {
            return None;
        };
        self.eat(b',')?;
        let value = match kind.as_str() {
            "counter" => {
                self.key("value")?;
                MetricValue::Counter(self.u64_number()?)
            }
            "gauge" => {
                self.key("value")?;
                MetricValue::Gauge(self.number()?)
            }
            "histogram" => {
                self.key("count")?;
                let count = self.u64_number()?;
                self.eat(b',')?;
                self.key("sum")?;
                let sum = self.u64_number()?;
                self.eat(b',')?;
                self.key("min")?;
                let min = self.u64_number()?;
                self.eat(b',')?;
                self.key("max")?;
                let max = self.u64_number()?;
                self.eat(b',')?;
                self.key("counts")?;
                let counts = self.u64_array()?;
                MetricValue::Histogram(HistogramSnapshot {
                    counts,
                    count,
                    sum,
                    min,
                    max,
                })
            }
            _ => return None,
        };
        self.eat(b'}')?;
        Some(Metric {
            name,
            help,
            labels,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_export() -> Export {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6] {
            h.record(v);
        }
        Export {
            subsystem: "demo".into(),
            metrics: vec![
                Metric::counter("served", "requests served", 42),
                Metric::gauge("mean_batch", "mean requests per batch", 3.5),
                Metric::histogram("latency_us", "reply latency", h.snapshot()),
            ],
        }
    }

    #[test]
    fn json_format_is_stable() {
        let j = sample_export().to_json();
        assert!(j.starts_with("{\"subsystem\":\"demo\",\"metrics\":["));
        assert!(j.contains(
            "{\"name\":\"served\",\"help\":\"requests served\",\"type\":\"counter\",\"value\":42}"
        ));
        assert!(j.contains(
            "{\"name\":\"mean_batch\",\"help\":\"mean requests per batch\",\"type\":\"gauge\",\"value\":3.5}"
        ));
        assert!(j.contains("\"type\":\"histogram\",\"count\":6,\"sum\":21,\"min\":1,\"max\":6,\"counts\":[0,1,2,3,"));
    }

    #[test]
    fn json_round_trips() {
        let e = sample_export();
        assert_eq!(Export::from_json(&e.to_json()), Some(e));
    }

    #[test]
    fn json_round_trips_awkward_strings() {
        let e = Export {
            subsystem: "we\"ird\\sub".into(),
            metrics: vec![
                Metric::counter("a\nb", "tabs\tand \u{1}controls and ünïcode", 0)
                    .with_label("mo\"del", "zo\\o\n"),
            ],
        };
        assert_eq!(Export::from_json(&e.to_json()), Some(e));
    }

    #[test]
    fn labelled_metrics_round_trip_and_render() {
        let e = Export {
            subsystem: "serve".into(),
            metrics: vec![
                Metric::counter("served", "served by class", 7)
                    .with_label("model", "lenet5")
                    .with_label("priority", "high"),
                Metric::histogram("latency_us", "latency by model", {
                    let h = Histogram::new();
                    h.record(3);
                    h.snapshot()
                })
                .with_label("model", "lenet5"),
            ],
        };
        let j = e.to_json();
        assert!(j.contains(
            "{\"name\":\"served\",\"help\":\"served by class\",\
             \"labels\":{\"model\":\"lenet5\",\"priority\":\"high\"},\
             \"type\":\"counter\",\"value\":7}"
        ));
        assert_eq!(Export::from_json(&j), Some(e.clone()));
        let p = e.to_prometheus();
        assert!(p.contains("vedliot_serve_served{model=\"lenet5\",priority=\"high\"} 7\n"));
        assert!(p.contains("vedliot_serve_latency_us_bucket{model=\"lenet5\",le=\"3\"} 1\n"));
        assert!(p.contains("vedliot_serve_latency_us_bucket{model=\"lenet5\",le=\"+Inf\"} 1\n"));
        assert!(p.contains("vedliot_serve_latency_us_sum{model=\"lenet5\"} 3\n"));
        assert!(p.contains("vedliot_serve_latency_us_count{model=\"lenet5\"} 1\n"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert_eq!(Export::from_json(""), None);
        assert_eq!(Export::from_json("{\"subsystem\":\"x\"}"), None);
        let good = sample_export().to_json();
        assert_eq!(Export::from_json(&good[..good.len() - 1]), None);
        assert_eq!(Export::from_json(&format!("{good} trailing")), None);
    }

    #[test]
    fn prometheus_format_is_stable() {
        let p = sample_export().to_prometheus();
        let expected_head = "\
# HELP vedliot_demo_served requests served
# TYPE vedliot_demo_served counter
vedliot_demo_served 42
# HELP vedliot_demo_mean_batch mean requests per batch
# TYPE vedliot_demo_mean_batch gauge
vedliot_demo_mean_batch 3.5
# HELP vedliot_demo_latency_us reply latency
# TYPE vedliot_demo_latency_us histogram
vedliot_demo_latency_us_bucket{le=\"0\"} 0
vedliot_demo_latency_us_bucket{le=\"1\"} 1
vedliot_demo_latency_us_bucket{le=\"3\"} 3
vedliot_demo_latency_us_bucket{le=\"7\"} 6
vedliot_demo_latency_us_bucket{le=\"+Inf\"} 6
vedliot_demo_latency_us_sum 21
vedliot_demo_latency_us_count 6
";
        assert_eq!(p, expected_head);
    }

    #[test]
    fn prometheus_sanitizes_names() {
        let e = Export {
            subsystem: "my sub".into(),
            metrics: vec![Metric::gauge("9lives-total", "multi\nline help", f64::NAN)],
        };
        let p = e.to_prometheus();
        assert!(p.contains("vedliot_my_sub__9lives_total 0\n"));
        // The exposition format wants line feeds *escaped* in HELP, not
        // swallowed.
        assert!(p.contains("# HELP vedliot_my_sub__9lives_total multi\\nline help\n"));
    }

    /// Regression: model names and event labels are user-controlled
    /// strings; a quote or backslash in a label value (or a backslash
    /// in HELP text) must come out escaped, never as raw exposition
    /// syntax.
    #[test]
    fn prometheus_escapes_label_values_and_help() {
        let e = Export {
            subsystem: "serve".into(),
            metrics: vec![Metric::counter("served", "path C:\\models\nper tenant", 7)
                .with_label("model", "zo\\o\"v1\"\nnightly")],
        };
        let p = e.to_prometheus();
        assert!(
            p.contains("vedliot_serve_served{model=\"zo\\\\o\\\"v1\\\"\\nnightly\"} 7\n"),
            "label value must escape backslash, quote and newline: {p}"
        );
        assert!(
            p.contains("# HELP vedliot_serve_served path C:\\\\models\\nper tenant\n"),
            "HELP must escape backslash and newline: {p}"
        );
        // No line in the rendering may be broken by a raw newline from
        // a label or help string.
        for line in p.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("vedliot_"),
                "invalid exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn empty_histogram_export_round_trips() {
        let e = Export {
            subsystem: "s".into(),
            metrics: vec![Metric::histogram("h", "", HistogramSnapshot::empty())],
        };
        assert_eq!(Export::from_json(&e.to_json()), Some(e.clone()));
        // An empty histogram still emits the +Inf bucket and totals.
        let p = e.to_prometheus();
        assert!(p.contains("vedliot_s_h_bucket{le=\"+Inf\"} 0\n"));
        assert!(p.contains("vedliot_s_h_count 0\n"));
    }
}
