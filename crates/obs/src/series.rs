//! Windowed time-series over fixed-width time buckets.
//!
//! A [`TimeSeries`] is a bounded ring of fixed-width buckets, each
//! holding ok/error counts and a log2 latency histogram. Queries —
//! [`rate`](TimeSeries::rate), [`error_ratio`](TimeSeries::error_ratio),
//! [`quantile`](TimeSeries::quantile) — answer over a trailing window
//! ending at a caller-supplied "now", so the SLO engine can evaluate
//! multi-window burn rates over the same data the exporters render.
//!
//! Time is deliberately abstract: every method takes `u64` instants in
//! whatever unit the owner journals in. Serve feeds microseconds since
//! its trace epoch, fleet feeds simulation ticks, and E28's determinism
//! arm feeds the request sequence number itself — all three are
//! "clocks", and seeded runs reproduce bucket contents bit-for-bit.
//! The [`Clock`] trait plus [`WallClock`]/[`ManualClock`] cover the
//! live (CLI `vedliot top`) and seeded (tests, experiments) cases.

use crate::hist::{bucket_of, HistogramSnapshot, BUCKETS};
use crate::{Export, Exportable, Metric};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// An injectable time source. Units are owner-defined (µs, ticks,
/// request seq) — the series only compares and subtracts instants.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> u64;
}

/// Wall time in microseconds since construction — the live clock.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock advanced by hand — what seeded tests and the
/// fleet simulation inject.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `now`.
    #[must_use]
    pub fn at(now: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(now),
        }
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute instant.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// One fixed-width bucket: counts plus a log2 latency histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Bucket {
    /// Absolute bucket index (`instant / width`).
    index: u64,
    ok: u64,
    err: u64,
    latency_counts: Vec<u64>,
    latency_sum: u64,
    latency_min: u64,
    latency_max: u64,
}

impl Bucket {
    fn empty(index: u64) -> Bucket {
        Bucket {
            index,
            ok: 0,
            err: 0,
            latency_counts: vec![0; BUCKETS],
            latency_sum: 0,
            latency_min: u64::MAX,
            latency_max: 0,
        }
    }

    fn total(&self) -> u64 {
        self.ok + self.err
    }
}

/// A bounded ring of fixed-width time buckets.
///
/// Not thread-safe by itself — owners that share it put it behind a
/// mutex (the SLO engine) or own it exclusively. Recording is a few
/// integer adds; queries walk at most `retain` buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    width: u64,
    retain: usize,
    /// Newest-last ring of consecutive buckets (gaps are materialized
    /// as empty buckets so windows stay O(retain)).
    buckets: Vec<Bucket>,
    /// Samples older than the retained window, counted not stored.
    late: u64,
}

impl TimeSeries {
    /// A series of `retain` buckets, each `width` clock units wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or `retain` is 0.
    #[must_use]
    pub fn new(name: impl Into<String>, width: u64, retain: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(retain > 0, "series must retain at least one bucket");
        TimeSeries {
            name: name.into(),
            width,
            retain,
            buckets: Vec::new(),
            late: 0,
        }
    }

    /// The series name (exporter label).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bucket width in clock units.
    #[must_use]
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Samples that arrived older than the retained window and were
    /// counted but not stored.
    #[must_use]
    pub fn late(&self) -> u64 {
        self.late
    }

    fn bucket_at(&mut self, at: u64) -> Option<&mut Bucket> {
        let index = at / self.width;
        match self.buckets.last() {
            None => self.buckets.push(Bucket::empty(index)),
            Some(last) if index > last.index => {
                // Materialize gap buckets, bounded by the ring size.
                let first_needed = index.saturating_sub(self.retain as u64 - 1);
                let mut next = (last.index + 1).max(first_needed);
                if next > last.index + 1 {
                    self.buckets.clear();
                }
                while next <= index {
                    self.buckets.push(Bucket::empty(next));
                    next += 1;
                }
                let excess = self.buckets.len().saturating_sub(self.retain);
                if excess > 0 {
                    self.buckets.drain(..excess);
                }
            }
            Some(_) => {}
        }
        let first = self.buckets[0].index;
        if index < first {
            self.late += 1;
            return None;
        }
        let offset = (index - first) as usize;
        self.buckets.get_mut(offset)
    }

    /// Records a successful sample with its latency.
    pub fn record_ok(&mut self, at: u64, latency: u64) {
        if let Some(b) = self.bucket_at(at) {
            b.ok += 1;
            b.latency_counts[bucket_of(latency)] += 1;
            b.latency_sum += latency;
            b.latency_min = b.latency_min.min(latency);
            b.latency_max = b.latency_max.max(latency);
        }
    }

    /// Records a failed sample (no latency attributed).
    pub fn record_err(&mut self, at: u64) {
        if let Some(b) = self.bucket_at(at) {
            b.err += 1;
        }
    }

    fn window(&self, now: u64, window: u64) -> impl Iterator<Item = &Bucket> {
        let hi = now / self.width;
        let lo = now.saturating_sub(window.saturating_sub(1)) / self.width;
        self.buckets
            .iter()
            .filter(move |b| b.index >= lo && b.index <= hi)
    }

    /// Samples (ok + err) per clock unit over the trailing `window`
    /// ending at `now`. Bucket-granular: the window is widened to whole
    /// buckets, so the same inputs always yield the same rate.
    #[must_use]
    pub fn rate(&self, now: u64, window: u64) -> f64 {
        let total: u64 = self.window(now, window).map(Bucket::total).sum();
        let hi = now / self.width;
        let lo = now.saturating_sub(window.saturating_sub(1)) / self.width;
        let span = (hi - lo + 1) * self.width;
        total as f64 / span as f64
    }

    /// Raw `(ok, err)` counts over the trailing `window` ending at
    /// `now` (bucket-granular, like every window query).
    #[must_use]
    pub fn counts(&self, now: u64, window: u64) -> (u64, u64) {
        let (mut ok, mut err) = (0u64, 0u64);
        for b in self.window(now, window) {
            ok += b.ok;
            err += b.err;
        }
        (ok, err)
    }

    /// Errors as a fraction of all samples over the trailing `window`;
    /// 0 when the window is empty.
    #[must_use]
    pub fn error_ratio(&self, now: u64, window: u64) -> f64 {
        let (ok, err) = self.counts(now, window);
        if ok + err == 0 {
            0.0
        } else {
            err as f64 / (ok + err) as f64
        }
    }

    /// The latency distribution over the trailing `window` as one
    /// merged snapshot (error samples carry no latency).
    #[must_use]
    pub fn latency(&self, now: u64, window: u64) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for b in self.window(now, window) {
            if b.ok == 0 {
                continue;
            }
            let snap = HistogramSnapshot {
                counts: b.latency_counts.clone(),
                count: b.ok,
                sum: b.latency_sum,
                min: b.latency_min,
                max: b.latency_max,
            };
            merged.merge(&snap);
        }
        merged
    }

    /// The `q`-quantile of latency over the trailing `window`
    /// (bucket-resolution, like [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, now: u64, window: u64, q: f64) -> u64 {
        self.latency(now, window).quantile(q)
    }

    /// Newest instant covered by any retained bucket, or 0 when empty —
    /// what the exporter uses as its "now".
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.buckets
            .last()
            .map_or(0, |b| (b.index + 1) * self.width - 1)
    }
}

impl Exportable for TimeSeries {
    /// Subsystem `series`: rate/error-ratio/latency over the full
    /// retained window, labelled with the series name.
    fn export(&self) -> Export {
        let now = self.horizon();
        let window = self.width * self.retain as u64;
        let label = |m: Metric| m.with_label("series", self.name.clone());
        Export {
            subsystem: "series".into(),
            metrics: vec![
                label(Metric::gauge(
                    "rate",
                    "samples per clock unit over the retained window",
                    self.rate(now, window),
                )),
                label(Metric::gauge(
                    "error_ratio",
                    "errors over all samples in the retained window",
                    self.error_ratio(now, window),
                )),
                label(Metric::counter(
                    "late_samples",
                    "samples older than the retained window (counted, not stored)",
                    self.late,
                )),
                label(Metric::histogram(
                    "latency",
                    "latency distribution over the retained window",
                    self.latency(now, window),
                )),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_and_windows_select() {
        let mut s = TimeSeries::new("replies", 10, 8);
        for at in 0..40u64 {
            s.record_ok(at, at + 1);
        }
        s.record_err(35);
        // Window covering everything.
        assert_eq!(s.error_ratio(39, 40), 1.0 / 41.0);
        let lat = s.latency(39, 40);
        assert_eq!(lat.count, 40);
        assert_eq!(lat.min, 1);
        assert_eq!(lat.max, 40);
        // Trailing single bucket [30, 39]: 10 ok + 1 err.
        assert_eq!(s.error_ratio(39, 10), 1.0 / 11.0);
        assert_eq!(s.latency(39, 10).count, 10);
        let r = s.rate(39, 10);
        assert!(
            (r - 1.1).abs() < 1e-12,
            "11 samples over one 10-wide bucket: {r}"
        );
    }

    #[test]
    fn ring_drops_old_buckets_and_counts_late_samples() {
        let mut s = TimeSeries::new("x", 10, 4);
        s.record_ok(5, 1);
        s.record_ok(95, 1); // jumps far ahead: old bucket evicted
        assert_eq!(s.latency(95, 100).count, 1, "bucket 0 fell out of the ring");
        s.record_ok(3, 9); // older than the retained window
        assert_eq!(s.late(), 1);
        assert_eq!(s.latency(95, 100).count, 1);
    }

    #[test]
    fn gap_buckets_materialize_as_empty() {
        let mut s = TimeSeries::new("x", 10, 8);
        s.record_ok(5, 1);
        s.record_ok(25, 1); // skips bucket 1
        assert_eq!(s.latency(29, 30).count, 2);
        assert_eq!(s.rate(29, 30), 2.0 / 30.0);
        // The empty middle bucket dilutes the trailing 20-wide window.
        assert_eq!(s.rate(29, 20), 1.0 / 20.0);
    }

    #[test]
    fn deterministic_replay_is_bitwise_identical() {
        let build = || {
            let mut s = TimeSeries::new("det", 7, 5);
            for i in 0..200u64 {
                if i % 13 == 0 {
                    s.record_err(i);
                } else {
                    s.record_ok(i, i * 3 % 97);
                }
            }
            s
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.rate(199, 35).to_bits(), b.rate(199, 35).to_bits());
        assert_eq!(
            a.error_ratio(199, 35).to_bits(),
            b.error_ratio(199, 35).to_bits()
        );
        assert_eq!(a.quantile(199, 35, 0.99), b.quantile(199, 35, 0.99));
    }

    #[test]
    fn clocks_are_injectable() {
        let manual = ManualClock::at(100);
        assert_eq!(manual.now(), 100);
        manual.advance(20);
        assert_eq!(manual.now(), 120);
        manual.set(7);
        assert_eq!(manual.now(), 7);
        let wall = WallClock::new();
        let a = wall.now();
        let b = wall.now();
        assert!(b >= a, "wall clock is monotonic");
    }

    #[test]
    fn export_round_trips() {
        let mut s = TimeSeries::new("replies", 10, 4);
        for at in 0..30u64 {
            s.record_ok(at, 100 + at);
        }
        s.record_err(29);
        let export = s.export();
        assert_eq!(export.subsystem, "series");
        assert!(export
            .metrics
            .iter()
            .all(|m| m.labels == vec![("series".to_string(), "replies".to_string())]));
        assert_eq!(Export::from_json(&export.to_json()), Some(export));
    }
}
