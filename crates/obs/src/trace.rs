//! Request-lifecycle spans and the bounded lock-free trace ring.
//!
//! A [`SpanRecord`] is one request's timeline through the serving
//! pipeline, as five monotonic microsecond timestamps (relative to the
//! server's trace epoch) plus the linger attribution:
//!
//! ```text
//! enqueue ──queue-wait──► dequeue ──dispatch──► exec_start ──execute──► exec_end ──reply──► reply
//!          └─batch-linger┘(carved out of the enqueue→dequeue interval)
//! ```
//!
//! Because the stages are *defined* as differences of one monotonic
//! clock, they sum to the end-to-end latency exactly (integer
//! microseconds) — the invariant the CI observability smoke asserts.
//!
//! The [`TraceRing`] stores the most recent `capacity` spans. Writers
//! are lock-free: a slot is claimed by a single CAS on its seqlock
//! version (odd = write in progress) and filled with relaxed stores;
//! a writer that loses the CAS race (only possible when another writer
//! has lapped the whole ring mid-write) drops its span and counts it.
//! Readers retry a slot until they observe the same even version on
//! both sides of the field loads, so a snapshot never contains a torn
//! record — property-tested under concurrent hammering in
//! `tests/proptests.rs`.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::{Export, Exportable, Metric};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// How a traced request left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SpanOutcome {
    /// Answered with a model output.
    #[default]
    Ok,
    /// Answered with an execution error.
    Failed,
    /// Purged because its deadline expired.
    TimedOut,
    /// Isolated as the poison by quarantine bisection.
    Quarantined,
    /// Evicted from the queue to make room for a strictly
    /// higher-priority request (multi-tenant admission).
    Shed,
}

impl SpanOutcome {
    fn code(self) -> u64 {
        match self {
            SpanOutcome::Ok => 0,
            SpanOutcome::Failed => 1,
            SpanOutcome::TimedOut => 2,
            SpanOutcome::Quarantined => 3,
            SpanOutcome::Shed => 4,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            1 => SpanOutcome::Failed,
            2 => SpanOutcome::TimedOut,
            3 => SpanOutcome::Quarantined,
            4 => SpanOutcome::Shed,
            _ => SpanOutcome::Ok,
        }
    }
}

impl fmt::Display for SpanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Failed => "failed",
            SpanOutcome::TimedOut => "timed_out",
            SpanOutcome::Quarantined => "quarantined",
            SpanOutcome::Shed => "shed",
        })
    }
}

/// One request's span timeline. All timestamps are microseconds since
/// the owning server's trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SpanRecord {
    /// Submission sequence number (1-based).
    pub seq: u64,
    /// Accepted into the submission queue.
    pub enqueue_us: u64,
    /// Drained out of the queue into a formed batch (for a request
    /// purged while still queued, this equals `reply_us`).
    pub dequeue_us: u64,
    /// First execution attempt began.
    pub exec_start_us: u64,
    /// Final execution attempt finished (includes retries + backoff).
    pub exec_end_us: u64,
    /// Reply recorded (the end-to-end completion point).
    pub reply_us: u64,
    /// Portion of the queued interval spent deliberately lingering for
    /// batch companions (`≤ dequeue_us − enqueue_us`).
    pub linger_us: u64,
    /// Size of the batch this request executed in (0 if never batched).
    pub batch: u32,
    /// Execution retries this request survived.
    pub retries: u32,
    /// Numeric id of the model pool that served the request (assigned
    /// by the gateway in load order; 0 for single-model servers).
    pub model: u16,
    /// Priority class code (0 = high, 1 = normal, 2 = batch).
    pub priority: u8,
    /// Terminal outcome.
    pub outcome: SpanOutcome,
}

/// Number of packed words per ring slot.
const WORDS: usize = 8;

impl SpanRecord {
    /// Queue-wait stage: queued time not attributed to lingering.
    #[must_use]
    pub fn queue_wait_us(&self) -> u64 {
        (self.dequeue_us.saturating_sub(self.enqueue_us)).saturating_sub(self.linger_us)
    }

    /// Dispatch stage: batch formed → first execution attempt.
    #[must_use]
    pub fn dispatch_us(&self) -> u64 {
        self.exec_start_us.saturating_sub(self.dequeue_us)
    }

    /// Execute stage: first attempt begins → final attempt ends
    /// (retries and backoff included).
    #[must_use]
    pub fn execute_us(&self) -> u64 {
        self.exec_end_us.saturating_sub(self.exec_start_us)
    }

    /// Reply stage: execution done → reply recorded.
    #[must_use]
    pub fn reply_stage_us(&self) -> u64 {
        self.reply_us.saturating_sub(self.exec_end_us)
    }

    /// End-to-end latency (enqueue → reply).
    #[must_use]
    pub fn end_to_end_us(&self) -> u64 {
        self.reply_us.saturating_sub(self.enqueue_us)
    }

    /// Sum of the five stages. Equals [`end_to_end_us`](Self::end_to_end_us)
    /// exactly whenever the record [`is_monotonic`](Self::is_monotonic).
    #[must_use]
    pub fn stage_sum_us(&self) -> u64 {
        self.queue_wait_us()
            + self.linger_us
            + self.dispatch_us()
            + self.execute_us()
            + self.reply_stage_us()
    }

    /// Whether the timeline is well-formed: timestamps are monotone and
    /// the linger attribution fits inside the queued interval.
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        self.enqueue_us <= self.dequeue_us
            && self.dequeue_us <= self.exec_start_us
            && self.exec_start_us <= self.exec_end_us
            && self.exec_end_us <= self.reply_us
            && self.linger_us <= self.dequeue_us - self.enqueue_us
    }

    fn pack(&self) -> [u64; WORDS] {
        // Word 7 layout (high → low):
        //   batch:16 | retries:16 | model:16 | priority:8 | outcome:8
        // Batch and retries saturate at u16::MAX; real batches are
        // single digits and a request that retried 65k times has a
        // bigger problem than a clipped trace field.
        [
            self.seq,
            self.enqueue_us,
            self.dequeue_us,
            self.exec_start_us,
            self.exec_end_us,
            self.reply_us,
            self.linger_us,
            (u64::from(self.batch.min(0xFFFF)) << 48)
                | (u64::from(self.retries.min(0xFFFF)) << 32)
                | (u64::from(self.model) << 16)
                | (u64::from(self.priority) << 8)
                | self.outcome.code(),
        ]
    }

    fn unpack(words: [u64; WORDS]) -> Self {
        SpanRecord {
            seq: words[0],
            enqueue_us: words[1],
            dequeue_us: words[2],
            exec_start_us: words[3],
            exec_end_us: words[4],
            reply_us: words[5],
            linger_us: words[6],
            batch: ((words[7] >> 48) & 0xFFFF) as u32,
            retries: ((words[7] >> 32) & 0xFFFF) as u32,
            model: ((words[7] >> 16) & 0xFFFF) as u16,
            priority: ((words[7] >> 8) & 0xFF) as u8,
            outcome: SpanOutcome::from_code(words[7] & 0xFF),
        }
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "span#{} [{}] e2e={}us queue={}us linger={}us dispatch={}us execute={}us reply={}us batch={} retries={} model={} prio={}",
            self.seq,
            self.outcome,
            self.end_to_end_us(),
            self.queue_wait_us(),
            self.linger_us,
            self.dispatch_us(),
            self.execute_us(),
            self.reply_stage_us(),
            self.batch,
            self.retries,
            self.model,
            self.priority
        )
    }
}

/// One seqlock-versioned slot: `version` is even when stable, odd while
/// a writer owns it; it strictly increases, so a reader that sees the
/// same even version before and after its field loads read a coherent
/// record. Version 0 means "never written".
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// Bounded lock-free ring of the most recent spans.
pub struct TraceRing {
    slots: Vec<Slot>,
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRing {
    /// A ring retaining the most recent `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "trace ring needs at least one slot");
        TraceRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans successfully recorded (including those since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans dropped because a concurrent writer held the claimed slot.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one span. Lock-free and non-blocking: the only loss mode
    /// is a writer lapped by the entire ring mid-write, counted in
    /// [`dropped`](Self::dropped).
    pub fn record(&self, span: &SpanRecord) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len() as u64) as usize;
        let slot = &self.slots[idx];
        let version = slot.version.load(Ordering::Acquire);
        if version & 1 == 1
            || slot
                .version
                .compare_exchange(version, version + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (word, value) in slot.words.iter().zip(span.pack()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.version.store(version + 2, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every stable span currently in the ring, ordered by
    /// submission sequence. Slots mid-write are retried a few times,
    /// then skipped; torn records are never returned.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self.slots.iter().filter_map(read_slot).collect();
        spans.sort_unstable_by_key(|s| s.seq);
        spans
    }
}

fn read_slot(slot: &Slot) -> Option<SpanRecord> {
    for _ in 0..16 {
        let before = slot.version.load(Ordering::Acquire);
        if before == 0 {
            return None; // never written
        }
        if before & 1 == 1 {
            std::hint::spin_loop();
            continue; // writer active
        }
        let mut words = [0u64; WORDS];
        for (out, word) in words.iter_mut().zip(&slot.words) {
            *out = word.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) == before {
            return Some(SpanRecord::unpack(words));
        }
    }
    None
}

impl Exportable for TraceRing {
    /// Subsystem `trace`: the ring's own health — spans recorded and
    /// spans dropped — so span loss is visible to scrapers instead of
    /// only via the `Debug` impl.
    fn export(&self) -> Export {
        Export {
            subsystem: "trace".into(),
            metrics: vec![
                Metric::counter(
                    "spans_recorded",
                    "spans recorded into the trace ring (including overwritten)",
                    self.recorded(),
                ),
                Metric::counter(
                    "spans_dropped",
                    "spans lost to a writer lapped mid-record",
                    self.dropped(),
                ),
                Metric::gauge(
                    "ring_capacity",
                    "slots in the trace ring",
                    self.capacity() as f64,
                ),
            ],
        }
    }
}

/// Per-stage latency attribution over a set of spans — the answer to
/// "where did the p99 go": queue, linger, dispatch, execute or reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Spans aggregated.
    pub spans: u64,
    /// Queue-wait distribution (µs).
    pub queue_us: HistogramSnapshot,
    /// Batch-linger distribution (µs).
    pub linger_us: HistogramSnapshot,
    /// Dispatch distribution (µs).
    pub dispatch_us: HistogramSnapshot,
    /// Execute distribution (µs, retries included).
    pub execute_us: HistogramSnapshot,
    /// Reply distribution (µs).
    pub reply_us: HistogramSnapshot,
    /// End-to-end distribution (µs).
    pub end_to_end_us: HistogramSnapshot,
}

impl StageBreakdown {
    /// Aggregates a snapshot of spans into per-stage distributions.
    #[must_use]
    pub fn of(spans: &[SpanRecord]) -> Self {
        let (queue, linger, dispatch, execute, reply, e2e) = (
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
        );
        for s in spans {
            queue.record(s.queue_wait_us());
            linger.record(s.linger_us);
            dispatch.record(s.dispatch_us());
            execute.record(s.execute_us());
            reply.record(s.reply_stage_us());
            e2e.record(s.end_to_end_us());
        }
        StageBreakdown {
            spans: spans.len() as u64,
            queue_us: queue.snapshot(),
            linger_us: linger.snapshot(),
            dispatch_us: dispatch.snapshot(),
            execute_us: execute.snapshot(),
            reply_us: reply.snapshot(),
            end_to_end_us: e2e.snapshot(),
        }
    }

    /// (stage name, distribution) pairs in pipeline order.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, &HistogramSnapshot); 5] {
        [
            ("queue", &self.queue_us),
            ("linger", &self.linger_us),
            ("dispatch", &self.dispatch_us),
            ("execute", &self.execute_us),
            ("reply", &self.reply_us),
        ]
    }
}

impl fmt::Display for StageBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stage attribution over {} spans (us):", self.spans)?;
        for (name, h) in self.stages() {
            writeln!(
                f,
                "  {name:<8} mean={:<8.1} p50~{:<6} p99~{}",
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99)
            )?;
        }
        write!(
            f,
            "  {:<8} mean={:<8.1} p50~{:<6} p99~{}",
            "e2e",
            self.end_to_end_us.mean(),
            self.end_to_end_us.quantile(0.50),
            self.end_to_end_us.quantile(0.99)
        )
    }
}

impl Exportable for StageBreakdown {
    fn export(&self) -> Export {
        let mut metrics = vec![Metric::counter(
            "spans",
            "spans aggregated into this breakdown",
            self.spans,
        )];
        for (name, h) in self.stages() {
            metrics.push(Metric::histogram(
                format!("{name}_us"),
                format!("{name} stage latency in microseconds"),
                h.clone(),
            ));
        }
        metrics.push(Metric::histogram(
            "end_to_end_us",
            "end-to-end request latency in microseconds",
            self.end_to_end_us.clone(),
        ));
        Export {
            subsystem: "trace".into(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> SpanRecord {
        SpanRecord {
            seq,
            enqueue_us: 100 * seq,
            dequeue_us: 100 * seq + 40,
            exec_start_us: 100 * seq + 42,
            exec_end_us: 100 * seq + 90,
            reply_us: 100 * seq + 95,
            linger_us: 30,
            batch: 4,
            retries: 1,
            model: 2,
            priority: 1,
            outcome: SpanOutcome::Ok,
        }
    }

    #[test]
    fn stages_sum_to_end_to_end_exactly() {
        let s = span(3);
        assert!(s.is_monotonic());
        assert_eq!(s.queue_wait_us(), 10);
        assert_eq!(s.dispatch_us(), 2);
        assert_eq!(s.execute_us(), 48);
        assert_eq!(s.reply_stage_us(), 5);
        assert_eq!(s.stage_sum_us(), s.end_to_end_us());
        assert_eq!(s.end_to_end_us(), 95);
    }

    #[test]
    fn pack_round_trips() {
        let s = span(u64::MAX / 200);
        assert_eq!(SpanRecord::unpack(s.pack()), s);
        let extremes = SpanRecord {
            model: u16::MAX,
            priority: 2,
            batch: 0xFFFF,
            retries: 0xFFFF,
            ..span(9)
        };
        assert_eq!(SpanRecord::unpack(extremes.pack()), extremes);
        for outcome in [
            SpanOutcome::Ok,
            SpanOutcome::Failed,
            SpanOutcome::TimedOut,
            SpanOutcome::Quarantined,
            SpanOutcome::Shed,
        ] {
            let s = SpanRecord { outcome, ..span(7) };
            assert_eq!(SpanRecord::unpack(s.pack()).outcome, outcome);
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let ring = TraceRing::new(8);
        for seq in 1..=20 {
            ring.record(&span(seq));
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 8);
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 0);
        // The last 8 written survive, in seq order.
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_ring_snapshot_is_empty() {
        assert!(TraceRing::new(4).snapshot().is_empty());
    }

    #[test]
    fn breakdown_aggregates_every_span() {
        let spans: Vec<SpanRecord> = (1..=50).map(span).collect();
        let b = StageBreakdown::of(&spans);
        assert_eq!(b.spans, 50);
        assert_eq!(b.end_to_end_us.count, 50);
        assert_eq!(b.execute_us.count, 50);
        // Every span has identical stage structure here.
        assert_eq!(b.end_to_end_us.min, 95);
        assert_eq!(b.end_to_end_us.max, 95);
    }

    #[test]
    fn span_display_is_stable() {
        assert_eq!(
            span(3).to_string(),
            "span#3 [ok] e2e=95us queue=10us linger=30us dispatch=2us execute=48us reply=5us batch=4 retries=1 model=2 prio=1"
        );
    }
}
