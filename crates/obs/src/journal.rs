//! The flight recorder: a bounded, lock-cheap journal of causally
//! correlated events.
//!
//! Point-in-time snapshots (histograms, spans) answer *how much*; the
//! [`EventJournal`] answers *what happened, in what order, caused by
//! what*. Every [`Event`] is a typed, timestamped record with a stable
//! code (the J-registry in DESIGN.md §8), a **subject** — the thing the
//! event is about — and a **cause** — the upstream correlation that
//! provoked it. Both are [`CauseId`]s: namespaced 64-bit correlation
//! keys (request seq, model id, device id, wave index, another event's
//! journal seq, …), so one query walks across subsystem boundaries:
//! "why did device 117 roll back" and "what shed this request" are both
//! [`EventJournal::chain`] calls, not simulation re-runs.
//!
//! The storage is the same per-slot seqlock ring the trace ring uses
//! (safe Rust, CAS-claimed slots, word-wise relaxed stores): appending
//! is lock-free and bounded, the only loss mode is a writer lapped by
//! the whole ring mid-write (counted in [`dropped`](EventJournal::dropped)),
//! and a snapshot never contains a torn record. Timestamps are caller
//! supplied — serve stamps microseconds since its trace epoch, fleet
//! stamps simulation ticks — so seeded runs journal deterministically.

use crate::{Export, Exportable, Metric};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Namespaced correlation key. The top byte is the namespace, the low
/// 56 bits the identifier within it; [`CauseId::NONE`] is the absence
/// of a correlation (an event whose `cause` is `NONE` is a **root
/// cause** — a causal chain terminates there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct CauseId(u64);

const NS_SHIFT: u32 = 56;
const NS_REQUEST: u64 = 1;
const NS_MODEL: u64 = 2;
const NS_DEVICE: u64 = 3;
const NS_WAVE: u64 = 4;
const NS_EVENT: u64 = 5;
const NS_RELEASE: u64 = 6;
const NS_SLO: u64 = 7;

impl CauseId {
    /// No correlation. Events caused by `NONE` are root causes.
    pub const NONE: CauseId = CauseId(0);

    fn tagged(ns: u64, id: u64) -> CauseId {
        CauseId((ns << NS_SHIFT) | (id & ((1 << NS_SHIFT) - 1)))
    }

    /// A serve request, keyed by its submission sequence number — the
    /// same `seq` its trace span carries, so journal and trace join.
    #[must_use]
    pub fn request(seq: u64) -> CauseId {
        CauseId::tagged(NS_REQUEST, seq)
    }

    /// A model pool, keyed by its dense gateway id.
    #[must_use]
    pub fn model(id: u64) -> CauseId {
        CauseId::tagged(NS_MODEL, id)
    }

    /// A fleet device, keyed by its device id.
    #[must_use]
    pub fn device(id: u64) -> CauseId {
        CauseId::tagged(NS_DEVICE, id)
    }

    /// A rollout wave, keyed by its index.
    #[must_use]
    pub fn wave(index: u64) -> CauseId {
        CauseId::tagged(NS_WAVE, index)
    }

    /// Another journal event, keyed by its journal sequence number —
    /// how an event cites a previously recorded event as its cause.
    #[must_use]
    pub fn event(seq: u64) -> CauseId {
        CauseId::tagged(NS_EVENT, seq)
    }

    /// A released model version, keyed by its registry index.
    #[must_use]
    pub fn release(version: u64) -> CauseId {
        CauseId::tagged(NS_RELEASE, version)
    }

    /// A declared SLO objective, keyed by its engine index.
    #[must_use]
    pub fn slo(index: u64) -> CauseId {
        CauseId::tagged(NS_SLO, index)
    }

    /// The raw tagged word (for packing).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its raw tagged word.
    #[must_use]
    pub fn from_raw(raw: u64) -> CauseId {
        CauseId(raw)
    }

    /// Whether this is [`CauseId::NONE`].
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The identifier within the namespace.
    #[must_use]
    pub fn id(self) -> u64 {
        self.0 & ((1 << NS_SHIFT) - 1)
    }
}

impl fmt::Display for CauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let id = self.id();
        match self.0 >> NS_SHIFT {
            _ if self.0 == 0 => write!(f, "none"),
            NS_REQUEST => write!(f, "request:{id}"),
            NS_MODEL => write!(f, "model:{id}"),
            NS_DEVICE => write!(f, "device:{id}"),
            NS_WAVE => write!(f, "wave:{id}"),
            NS_EVENT => write!(f, "event:{id}"),
            NS_RELEASE => write!(f, "release:{id}"),
            NS_SLO => write!(f, "slo:{id}"),
            ns => write!(f, "ns{ns}:{id}"),
        }
    }
}

/// Typed event kinds with stable codes. Codes are never renumbered
/// (registry in DESIGN.md §8; `event_codes_are_stable` covenants the
/// exact strings): J0xx are serve-side, J1xx fleet-side, J2xx SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A request passed admission and joined its pool's queue.
    RequestAdmitted,
    /// A request was refused at the door by priority-class admission
    /// (degraded shedding or nothing lower-priority to displace).
    RequestShed,
    /// A queued request was evicted to make room for a strictly
    /// higher-priority arrival; the cause is the displacing request.
    RequestDisplaced,
    /// A batch execution attempt containing this request failed
    /// transiently and will be retried.
    RequestRetried,
    /// Quarantine bisection isolated this request as the deterministic
    /// poison. The poisoned input itself is the root cause.
    RequestQuarantined,
    /// A worker thread died outside the isolation boundary.
    WorkerCrashed,
    /// The supervisor respawned a crashed worker; the cause is the
    /// crash event.
    WorkerRespawned,
    /// A model was loaded into the gateway registry.
    ModelLoaded,
    /// A model was unloaded (drained and retired).
    ModelUnloaded,
    /// Server health entered `Degraded`; admission starts shedding.
    HealthDegraded,
    /// Server health left `Degraded`; the cause is the degradation.
    HealthRecovered,
    /// An OTA rollout began; subject is the target release (root).
    RolloutStarted,
    /// A rollout wave began; the cause is the rollout-start event.
    WaveStarted,
    /// A device changed update phase (detail carries the phase code).
    DevicePhase,
    /// A device reverted to its previous slot.
    DeviceRolledBack,
    /// A device failed attestation and was quarantined before install.
    DeviceQuarantined,
    /// A wave health gate was evaluated (detail: 1 = passed, 0 = failed).
    HealthGate,
    /// A wave was rolled back; the cause is the failed gate event.
    WaveRolledBack,
    /// An SLO burn-rate alert began firing (detail: burn ‰ over the
    /// short window).
    SloAlertFired,
    /// A firing SLO alert cleared; the cause is the firing event.
    SloAlertCleared,
}

impl EventKind {
    /// Every kind, in registry order — the exhaustive-registry test and
    /// the journal exporter iterate this.
    pub const ALL: [EventKind; 20] = [
        EventKind::RequestAdmitted,
        EventKind::RequestShed,
        EventKind::RequestDisplaced,
        EventKind::RequestRetried,
        EventKind::RequestQuarantined,
        EventKind::WorkerCrashed,
        EventKind::WorkerRespawned,
        EventKind::ModelLoaded,
        EventKind::ModelUnloaded,
        EventKind::HealthDegraded,
        EventKind::HealthRecovered,
        EventKind::RolloutStarted,
        EventKind::WaveStarted,
        EventKind::DevicePhase,
        EventKind::DeviceRolledBack,
        EventKind::DeviceQuarantined,
        EventKind::HealthGate,
        EventKind::WaveRolledBack,
        EventKind::SloAlertFired,
        EventKind::SloAlertCleared,
    ];

    /// The stable registry code (DESIGN.md §8), e.g. `"J001"`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            EventKind::RequestAdmitted => "J001",
            EventKind::RequestShed => "J002",
            EventKind::RequestDisplaced => "J003",
            EventKind::RequestRetried => "J004",
            EventKind::RequestQuarantined => "J005",
            EventKind::WorkerCrashed => "J006",
            EventKind::WorkerRespawned => "J007",
            EventKind::ModelLoaded => "J008",
            EventKind::ModelUnloaded => "J009",
            EventKind::HealthDegraded => "J010",
            EventKind::HealthRecovered => "J011",
            EventKind::RolloutStarted => "J100",
            EventKind::WaveStarted => "J101",
            EventKind::DevicePhase => "J102",
            EventKind::DeviceRolledBack => "J103",
            EventKind::DeviceQuarantined => "J104",
            EventKind::HealthGate => "J105",
            EventKind::WaveRolledBack => "J106",
            EventKind::SloAlertFired => "J201",
            EventKind::SloAlertCleared => "J202",
        }
    }

    /// Stable snake-case name (exporter label / display).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestAdmitted => "request_admitted",
            EventKind::RequestShed => "request_shed",
            EventKind::RequestDisplaced => "request_displaced",
            EventKind::RequestRetried => "request_retried",
            EventKind::RequestQuarantined => "request_quarantined",
            EventKind::WorkerCrashed => "worker_crashed",
            EventKind::WorkerRespawned => "worker_respawned",
            EventKind::ModelLoaded => "model_loaded",
            EventKind::ModelUnloaded => "model_unloaded",
            EventKind::HealthDegraded => "health_degraded",
            EventKind::HealthRecovered => "health_recovered",
            EventKind::RolloutStarted => "rollout_started",
            EventKind::WaveStarted => "wave_started",
            EventKind::DevicePhase => "device_phase",
            EventKind::DeviceRolledBack => "device_rolled_back",
            EventKind::DeviceQuarantined => "device_quarantined",
            EventKind::HealthGate => "health_gate",
            EventKind::WaveRolledBack => "wave_rolled_back",
            EventKind::SloAlertFired => "slo_alert_fired",
            EventKind::SloAlertCleared => "slo_alert_cleared",
        }
    }

    fn wire(self) -> u64 {
        match self {
            EventKind::RequestAdmitted => 1,
            EventKind::RequestShed => 2,
            EventKind::RequestDisplaced => 3,
            EventKind::RequestRetried => 4,
            EventKind::RequestQuarantined => 5,
            EventKind::WorkerCrashed => 6,
            EventKind::WorkerRespawned => 7,
            EventKind::ModelLoaded => 8,
            EventKind::ModelUnloaded => 9,
            EventKind::HealthDegraded => 10,
            EventKind::HealthRecovered => 11,
            EventKind::RolloutStarted => 100,
            EventKind::WaveStarted => 101,
            EventKind::DevicePhase => 102,
            EventKind::DeviceRolledBack => 103,
            EventKind::DeviceQuarantined => 104,
            EventKind::HealthGate => 105,
            EventKind::WaveRolledBack => 106,
            EventKind::SloAlertFired => 201,
            EventKind::SloAlertCleared => 202,
        }
    }

    fn from_wire(wire: u64) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.wire() == wire)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Journal sequence number (1-based, assigned at append). An event
    /// is cited as a cause via [`CauseId::event`]`(seq)`.
    pub seq: u64,
    /// Caller-supplied timestamp: µs since the serve trace epoch, or
    /// the fleet simulation tick — whatever clock the emitter journals
    /// in. Seeded runs produce identical timestamps.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
    /// What the event is about.
    pub subject: CauseId,
    /// What provoked it; [`CauseId::NONE`] marks a root cause.
    pub cause: CauseId,
    /// Kind-specific payload (priority index, phase code, burn ‰, …).
    pub detail: u64,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<5} t={:<8} {} subject={} cause={} detail={}",
            self.seq, self.at, self.kind, self.subject, self.cause, self.detail
        )
    }
}

/// Packed words per ring slot: seq, at, kind, subject, cause, detail.
const WORDS: usize = 6;

impl Event {
    fn pack(&self) -> [u64; WORDS] {
        [
            self.seq,
            self.at,
            self.kind.wire(),
            self.subject.raw(),
            self.cause.raw(),
            self.detail,
        ]
    }

    fn unpack(words: [u64; WORDS]) -> Option<Event> {
        Some(Event {
            seq: words[0],
            at: words[1],
            kind: EventKind::from_wire(words[2])?,
            subject: CauseId::from_raw(words[3]),
            cause: CauseId::from_raw(words[4]),
            detail: words[5],
        })
    }
}

/// One seqlock-versioned slot (same protocol as the trace ring:
/// version even = stable, odd = writer active, 0 = never written).
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// Bounded, lock-free flight recorder holding the most recent
/// `capacity` events.
pub struct EventJournal {
    slots: Vec<Slot>,
    head: AtomicU64,
    next_seq: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventJournal {
    /// A journal retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "journal needs at least one slot");
        EventJournal {
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events successfully recorded (including those since overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped because a concurrent writer held the claimed slot.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one event and returns its journal sequence number (which
    /// callers cite as [`CauseId::event`] in downstream events). The
    /// seq is assigned even if the slot write loses a lap race, so
    /// cause references stay unambiguous.
    pub fn append(
        &self,
        at: u64,
        kind: EventKind,
        subject: CauseId,
        cause: CauseId,
        detail: u64,
    ) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Event {
            seq,
            at,
            kind,
            subject,
            cause,
            detail,
        };
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len() as u64) as usize;
        let slot = &self.slots[idx];
        let version = slot.version.load(Ordering::Acquire);
        if version & 1 == 1
            || slot
                .version
                .compare_exchange(version, version + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return seq;
        }
        for (word, value) in slot.words.iter().zip(event.pack()) {
            word.store(value, Ordering::Relaxed);
        }
        slot.version.store(version + 2, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        seq
    }

    /// Reads every stable event currently retained, ordered by seq.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.slots.iter().filter_map(read_slot).collect();
        events.sort_unstable_by_key(|e| e.seq);
        events
    }

    /// The causal chain of `id`: every retained event *about* `id`
    /// (subject match, or the event `id` names directly), plus —
    /// transitively — every event those cite as a cause. The walk goes
    /// *upward* only (toward root causes), so a chain ends at events
    /// whose `cause` is [`CauseId::NONE`]. Returned in seq order.
    #[must_use]
    pub fn chain(&self, id: CauseId) -> Vec<Event> {
        chain_of(&self.snapshot(), id)
    }
}

/// [`EventJournal::chain`] over an already-taken snapshot (replay over
/// exported/stored event lists).
#[must_use]
pub fn chain_of(events: &[Event], id: CauseId) -> Vec<Event> {
    if id.is_none() {
        return Vec::new();
    }
    let mut want = std::collections::HashSet::new();
    want.insert(id);
    let mut marked = vec![false; events.len()];
    loop {
        let mut changed = false;
        for (i, e) in events.iter().enumerate() {
            if marked[i] {
                continue;
            }
            if want.contains(&e.subject) || want.contains(&CauseId::event(e.seq)) {
                marked[i] = true;
                changed = true;
                if !e.cause.is_none() {
                    want.insert(e.cause);
                }
            }
        }
        if !changed {
            return events
                .iter()
                .zip(&marked)
                .filter_map(|(e, &m)| m.then_some(*e))
                .collect();
        }
    }
}

fn read_slot(slot: &Slot) -> Option<Event> {
    for _ in 0..16 {
        let before = slot.version.load(Ordering::Acquire);
        if before == 0 {
            return None; // never written
        }
        if before & 1 == 1 {
            std::hint::spin_loop();
            continue; // writer active
        }
        let mut words = [0u64; WORDS];
        for (out, word) in words.iter_mut().zip(&slot.words) {
            *out = word.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) == before {
            return Event::unpack(words);
        }
    }
    None
}

impl Exportable for EventJournal {
    /// Subsystem `journal`: append/drop counters plus one labelled
    /// counter per event kind currently retained (code + name labels),
    /// so scrapers see the event mix without parsing records.
    fn export(&self) -> Export {
        let events = self.snapshot();
        let mut metrics = vec![
            Metric::counter(
                "events_recorded",
                "events appended to the journal (including overwritten)",
                self.recorded(),
            ),
            Metric::counter(
                "events_dropped",
                "events lost to a writer lapped mid-append",
                self.dropped(),
            ),
        ];
        for kind in EventKind::ALL {
            let count = events.iter().filter(|e| e.kind == kind).count() as u64;
            metrics.push(
                Metric::counter("events", "retained events of this kind", count)
                    .with_label("code", kind.code())
                    .with_label("event", kind.name()),
            );
        }
        Export {
            subsystem: "journal".into(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_ids_are_namespaced_and_display_stably() {
        assert_eq!(CauseId::NONE.to_string(), "none");
        assert_eq!(CauseId::request(17).to_string(), "request:17");
        assert_eq!(CauseId::model(2).to_string(), "model:2");
        assert_eq!(CauseId::device(117).to_string(), "device:117");
        assert_eq!(CauseId::wave(3).to_string(), "wave:3");
        assert_eq!(CauseId::event(42).to_string(), "event:42");
        assert_eq!(CauseId::release(1).to_string(), "release:1");
        assert_eq!(CauseId::slo(0).to_string(), "slo:0");
        // Same id, different namespace: distinct keys.
        assert_ne!(CauseId::request(7), CauseId::device(7));
        assert_eq!(CauseId::from_raw(CauseId::wave(9).raw()), CauseId::wave(9));
        assert!(CauseId::NONE.is_none());
        assert!(!CauseId::request(0).is_none(), "request:0 is a real key");
    }

    #[test]
    fn append_assigns_monotonic_seqs_and_snapshot_orders_them() {
        let j = EventJournal::new(64);
        for i in 0..10u64 {
            let seq = j.append(
                i,
                EventKind::RequestAdmitted,
                CauseId::request(i),
                CauseId::NONE,
                0,
            );
            assert_eq!(seq, i + 1);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 10);
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.dropped(), 0);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
            assert_eq!(e.at, i as u64);
        }
    }

    #[test]
    fn bounded_ring_keeps_the_most_recent_events() {
        let j = EventJournal::new(8);
        for i in 0..20u64 {
            j.append(
                i,
                EventKind::DevicePhase,
                CauseId::device(i),
                CauseId::NONE,
                0,
            );
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<_>>());
    }

    #[test]
    fn chain_walks_upward_to_the_root_cause() {
        let j = EventJournal::new(64);
        // rollout (root) -> wave -> device phases -> rollback.
        let root = j.append(
            0,
            EventKind::RolloutStarted,
            CauseId::release(2),
            CauseId::NONE,
            2,
        );
        let wave = j.append(
            1,
            EventKind::WaveStarted,
            CauseId::wave(0),
            CauseId::event(root),
            24,
        );
        j.append(
            2,
            EventKind::DevicePhase,
            CauseId::device(117),
            CauseId::event(wave),
            1,
        );
        let gate = j.append(
            9,
            EventKind::HealthGate,
            CauseId::wave(0),
            CauseId::event(wave),
            0,
        );
        let wrb = j.append(
            9,
            EventKind::WaveRolledBack,
            CauseId::wave(0),
            CauseId::event(gate),
            0,
        );
        j.append(
            9,
            EventKind::DeviceRolledBack,
            CauseId::device(117),
            CauseId::event(wrb),
            0,
        );
        // Unrelated noise that must stay out of the chain.
        j.append(
            3,
            EventKind::DevicePhase,
            CauseId::device(5),
            CauseId::event(wave),
            1,
        );

        let chain = j.chain(CauseId::device(117));
        let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::DeviceRolledBack));
        assert!(kinds.contains(&EventKind::DevicePhase));
        assert!(kinds.contains(&EventKind::WaveRolledBack));
        assert!(kinds.contains(&EventKind::HealthGate));
        assert!(kinds.contains(&EventKind::WaveStarted));
        assert!(kinds.contains(&EventKind::RolloutStarted), "root reached");
        // The sibling device's phase event is not about device 117.
        assert!(!chain.iter().any(|e| e.subject == CauseId::device(5)));
        // Chains terminate at a root cause.
        assert!(chain.iter().any(|e| e.cause.is_none()));
        // Seq order.
        let seqs: Vec<u64> = chain.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn chain_joins_serve_requests_through_displacement() {
        let j = EventJournal::new(64);
        let adm = j.append(
            10,
            EventKind::RequestAdmitted,
            CauseId::request(9),
            CauseId::NONE,
            0,
        );
        assert!(adm > 0);
        j.append(
            10,
            EventKind::RequestDisplaced,
            CauseId::request(4),
            CauseId::request(9),
            2,
        );
        let chain = j.chain(CauseId::request(4));
        assert_eq!(
            chain.len(),
            2,
            "victim event plus the displacer's admission"
        );
        assert!(chain.iter().any(|e| e.kind == EventKind::RequestAdmitted));
        assert!(chain.iter().any(|e| e.cause.is_none()), "root recorded");
        assert!(j.chain(CauseId::NONE).is_empty());
        assert!(j.chain(CauseId::request(99)).is_empty());
    }

    #[test]
    fn concurrent_appends_lose_nothing_on_an_unlapped_ring() {
        let j = std::sync::Arc::new(EventJournal::new(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = std::sync::Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        j.append(
                            i,
                            EventKind::RequestAdmitted,
                            CauseId::request(t * 1000 + i),
                            CauseId::NONE,
                            t,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.recorded() + j.dropped(), 4000);
        let events = j.snapshot();
        assert_eq!(events.len() as u64, j.recorded());
        // Seqs are unique even across racing appenders.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), events.len());
    }

    #[test]
    fn display_is_stable() {
        let e = Event {
            seq: 3,
            at: 120,
            kind: EventKind::RequestShed,
            subject: CauseId::request(7),
            cause: CauseId::event(1),
            detail: 2,
        };
        assert_eq!(
            e.to_string(),
            "#3     t=120      J002 request_shed subject=request:7 cause=event:1 detail=2"
        );
    }

    #[test]
    fn export_counts_retained_events_per_kind() {
        let j = EventJournal::new(16);
        j.append(
            0,
            EventKind::RequestAdmitted,
            CauseId::request(1),
            CauseId::NONE,
            0,
        );
        j.append(
            1,
            EventKind::RequestAdmitted,
            CauseId::request(2),
            CauseId::NONE,
            0,
        );
        j.append(
            2,
            EventKind::RequestShed,
            CauseId::request(3),
            CauseId::NONE,
            1,
        );
        let export = j.export();
        assert_eq!(export.subsystem, "journal");
        let admitted = export
            .metrics
            .iter()
            .find(|m| m.labels.iter().any(|(_, v)| v == "request_admitted"))
            .unwrap();
        assert_eq!(admitted.value, crate::MetricValue::Counter(2));
        let json = export.to_json();
        assert_eq!(Export::from_json(&json), Some(export));
    }
}
