//! Wait-free log2-bucketed atomic histograms.
//!
//! A [`Histogram`] holds one atomic counter per power-of-two bucket
//! plus running count/sum/min/max. [`Histogram::record`] is a handful
//! of relaxed atomic RMWs — no lock, no allocation, no contention
//! point beyond cache-line traffic — which is what lets every serving
//! worker record its reply latency on the hot path. A
//! [`HistogramSnapshot`] is the full distribution; quantiles read off
//! it are exact up to bucket resolution (one power of two, i.e. a
//! relative error below 2×), which is plenty to attribute a p99.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: index 0 holds the value 0, index `i ≥ 1` holds
/// `[2^(i-1), 2^i - 1]`, up to index 64 covering the top of `u64`.
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` bounds of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// Lock-free log2 histogram. All methods take `&self`; share it behind
/// an `Arc` (or plain borrow) across recording threads.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free: five relaxed atomic RMWs.
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reads the current distribution. Concurrent `record`s may or may
    /// not be included; every bucket that is included is consistent.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`] — the full distribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]); always
    /// [`BUCKETS`] entries.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values (wrapping beyond `u64::MAX`).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (what `Histogram::new().snapshot()` returns).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Folds another snapshot into this one: bucket counts add
    /// elementwise, totals add, and min/max widen. The result is
    /// exactly the snapshot one histogram would hold had it recorded
    /// both sample streams — what the multi-tenant gateway uses to
    /// aggregate per-model latency distributions into a fleet view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`), estimated to bucket resolution.
    ///
    /// Rank convention: the estimate lands in the same bucket as entry
    /// `ceil(q·n) - 1` of the sorted sample list, and is clamped to the
    /// observed `[min, max]`, so it is within one bucket's width (a
    /// factor of two) of the exact sample quantile — property-tested in
    /// `tests/proptests.rs`. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram(count={}, sum={}, min={}, max={}, p50~{}, p99~{})",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.quantile(0.50),
            self.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn record_updates_all_aggregates() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 21);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 6);
        assert!((s.mean() - 3.5).abs() < 1e-12);
        // 1 → bucket 1; 2,3 → bucket 2; 4,5,6 → bucket 3.
        assert_eq!(&s.counts[..4], &[0, 1, 2, 3]);
    }

    #[test]
    fn quantile_lands_in_the_exact_values_bucket() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Exact p50 (rank-50 sample) is 50 → bucket [32, 63].
        let p50 = s.quantile(0.50);
        assert_eq!(bucket_of(p50), bucket_of(50), "p50 estimate {p50}");
        // Exact p99 (rank-99 sample) is 99 → bucket [64, 127]; the
        // estimate is clamped to max = 100.
        let p99 = s.quantile(0.99);
        assert_eq!(bucket_of(p99), bucket_of(99), "p99 estimate {p99}");
        assert!(p99 <= 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 40_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 39_999);
    }

    #[test]
    fn merge_matches_single_histogram_of_both_streams() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 3, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        // Merging an empty snapshot is the identity in both directions.
        let mut e = HistogramSnapshot::empty();
        e.merge(&both.snapshot());
        assert_eq!(e, both.snapshot());
        let mut m = both.snapshot();
        m.merge(&HistogramSnapshot::empty());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn display_is_stable() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6] {
            h.record(v);
        }
        // p50: rank 3 → bucket [2,3], midpoint 2; p99: rank 6 →
        // bucket [4,7], midpoint 5 (both inside the exact value's
        // bucket — the resolution contract).
        assert_eq!(
            h.snapshot().to_string(),
            "histogram(count=6, sum=21, min=1, max=6, p50~2, p99~5)"
        );
    }
}
